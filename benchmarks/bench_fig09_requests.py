"""Figure 9: metrics versus the number of requests (10K to 250K, scaled)."""

from __future__ import annotations

from repro.experiments import figures

from _common import CORE_ALGORITHMS, make_runner, save_figure

REQUEST_VALUES = (10_000, 100_000, 250_000)


def test_figure9_request_volume_sweep(benchmark):
    runner = make_runner(CORE_ALGORITHMS)

    def run():
        return figures.figure9(
            values=REQUEST_VALUES, presets=("chd", "nyc"),
            algorithms=CORE_ALGORITHMS, runner=runner,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure("figure09_requests", figure)
    rows = figure.all_rows()
    assert len(rows) == len(REQUEST_VALUES) * len(CORE_ALGORITHMS) * 2
    # Unified cost grows with the number of requests for every algorithm
    # (more demand means more travel and more penalties), as in the paper.
    for sweep in figure.sweeps.values():
        for algorithm, series in sweep.series("unified_cost").items():
            assert series[-1][1] >= series[0][1]
