"""Figure 10: metrics versus the deadline parameter gamma (1.2 to 2.0)."""

from __future__ import annotations

from repro.experiments import figures

from _common import ALL_ALGORITHMS, make_runner, save_figure

GAMMA_VALUES = (1.2, 1.5, 2.0)


def test_figure10_deadline_sweep(benchmark):
    runner = make_runner(ALL_ALGORITHMS)

    def run():
        return figures.figure10(
            values=GAMMA_VALUES, presets=("chd", "nyc"),
            algorithms=ALL_ALGORITHMS, runner=runner,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure("figure10_deadline", figure)
    # Looser deadlines raise the service rate of the batch methods, the
    # trend the paper highlights (SARD above 90% at gamma = 1.8).
    for sweep in figure.sweeps.values():
        sard = dict(sweep.series("service_rate"))["SARD"]
        assert sard[-1][1] >= sard[0][1] - 0.05
