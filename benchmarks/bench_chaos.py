"""Benchmark of the resilience layer under injected faults.

Runs the ``stadium_surge`` and ``bridge_closure`` scenario presets on the
preprocessed routing backends (``ch``, ``hub_label``) under all four
refresh policies with the ``flaky_oracle`` / ``oracle_meltdown`` chaos
presets, and reports what the resilience machinery did: faults injected,
refresh retries, breaker trips, batches run on the degraded dispatcher,
invariant-probe failures with their self-healing rebuilds, and the recovery
latency (wall-clock spent inside failure handling).

Every cell goes through the harness front door
(:func:`repro.experiments.harness.run` with ``mode="chaos"`` specs -- one
code path for experiments, this benchmark and CI).  Every run verifies
each accepted assignment's leg costs against a fresh Dijkstra over the
mutated network, so a row in the table is also a proof that the run stayed
parity-exact under its fault sequence.

Run directly (``python benchmarks/bench_chaos.py``) for the full table,
``--smoke`` for the short CI grid (with a markdown copy for the CI job
summary), or through pytest like the other benchmark modules.
"""

from __future__ import annotations

import sys

from repro.experiments.harness import (
    RunSpec,
    deterministic_summary,
    run,
    run_grid,
)

from _common import RESULTS_DIR, save_text

BACKENDS = ("ch", "hub_label")
POLICIES = ("eager", "deferred", "coalesce", "repair")
SCENARIOS = ("stadium_surge", "bridge_closure")
CHAOS = ("flaky_oracle", "oracle_meltdown")
#: Workload scale of the full benchmark (the smoke run shrinks it further).
SCALE = 0.08
CITY_SCALE = 0.4
ALGORITHM = "pruneGDP"

#: Grid columns: row key -> (printed label, value format).
COLUMNS: dict[str, tuple[str, str]] = {
    "chaos": ("chaos", "s"),
    "scenario": ("scenario", "s"),
    "backend": ("backend", "s"),
    "policy": ("policy", "s"),
    "faults": ("faults", "d"),
    "retries": ("retries", "d"),
    "breaker_trips": ("trips", "d"),
    "degraded": ("degraded", "d"),
    "overruns": ("overrun", "d"),
    "probe_failures": ("probe fail", "d"),
    "self_heals": ("heals", "d"),
    "recovery_ms": ("recovery ms", ".1f"),
    "rebuilds": ("rebuilds", "d"),
    "fallback_q": ("fallback q", "d"),
    "service_rate": ("svc rate", ".3f"),
    "unified_cost": ("unified", ".0f"),
}
VERIFY_NOTE = (
    "Every accepted assignment's leg costs were verified against fresh "
    "Dijkstra over the mutated network; a row in this table implies the run "
    "completed and stayed parity-exact under its injected fault sequence."
)


def _cells(row: dict) -> list[str]:
    return [
        f"{row[key]:{fmt}}" if fmt != "s" else str(row[key])
        for key, (_, fmt) in COLUMNS.items()
    ]


def format_table(rows: list[dict], *, title: str) -> str:
    labels = [label for label, _ in COLUMNS.values()]
    table = [labels] + [_cells(row) for row in rows]
    widths = [max(len(line[i]) for line in table) for i in range(len(labels))]
    lines = [title]
    for line in table:
        padded = [
            cell.ljust(width) if j < 4 else cell.rjust(width)
            for j, (cell, width) in enumerate(zip(line, widths))
        ]
        lines.append(" ".join(padded).rstrip())
    lines += ["", VERIFY_NOTE]
    return "\n".join(lines)


def format_markdown(rows: list[dict], *, title: str) -> str:
    """The same grid as a GitHub-flavoured markdown table (CI job summary)."""
    labels = [label for label, _ in COLUMNS.values()]
    lines = [
        f"### {title}",
        "",
        "| " + " | ".join(labels) + " |",
        "|" + "|".join("---" for _ in labels) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cells(row)) + " |")
    lines += ["", VERIFY_NOTE]
    return "\n".join(lines)


def _case(scenario: str, backend: str, policy: str, **kwargs) -> dict:
    row = run(RunSpec(
        mode="chaos", scenario=scenario, backend=backend,
        refresh_policy=policy, **kwargs,
    )).row
    assert row is not None
    return row


def _grid(chaos_names, *, scale: float) -> list[dict]:
    rows = []
    for chaos in chaos_names:
        specs = RunSpec.grid(
            scenarios=SCENARIOS, backends=BACKENDS, policies=POLICIES,
            mode="chaos", chaos=chaos, scale=scale, city_scale=CITY_SCALE,
            algorithm=ALGORITHM,
        )
        for outcome in run_grid(specs):
            assert outcome.row is not None
            rows.append({"chaos": chaos, **outcome.row})
    return rows


def full_rows() -> list[dict]:
    return _grid(CHAOS, scale=SCALE)


def smoke_rows() -> list[dict]:
    """The CI grid: ``flaky_oracle`` on both backends x all four policies."""
    return _grid(("flaky_oracle",), scale=0.04)


def _save_grid(rows: list[dict], name: str, title: str) -> None:
    save_text(name, format_table(rows, title=title))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.md").write_text(
        format_markdown(rows, title=title) + "\n"
    )


# ---------------------------------------------------------------------- #
# pytest entry points (mirroring the other benchmark modules)
# ---------------------------------------------------------------------- #
def test_chaos_smoke_grid():
    """The CI gate: every cell survives its fault sequence (completing with
    assignment verification on *is* the parity check) and the chaos layer
    actually injected faults."""
    rows = smoke_rows()
    for row in rows:
        assert row["events"] > 0, row
        assert row["faults"] > 0, row
    _save_grid(
        rows, "chaos_smoke",
        "Chaos smoke grid (flaky_oracle, policy x backend, parity-verified)",
    )


def test_meltdown_engages_the_full_ladder():
    """Under ``oracle_meltdown`` every refresh policy must exercise the whole
    degradation ladder on stadium_surge: breaker trips, degraded-dispatcher
    batches and probe-triggered self-heals all nonzero."""
    for policy in POLICIES:
        row = _case(
            "stadium_surge", "ch", policy,
            chaos="oracle_meltdown", scale=0.05, city_scale=0.35,
        )
        assert row["breaker_trips"] > 0, (policy, row)
        assert row["degraded"] > 0, (policy, row)
        assert row["self_heals"] > 0, (policy, row)
        assert row["recovery_ms"] > 0.0, (policy, row)


def test_chaos_runs_are_reproducible():
    """Same seed, same fault sequence, same non-timing metrics."""
    kwargs = dict(chaos="flaky_oracle", scale=0.05, city_scale=0.35)
    first = _case("stadium_surge", "ch", "coalesce", **kwargs)
    second = _case("stadium_surge", "ch", "coalesce", **kwargs)
    assert deterministic_summary(first) == deterministic_summary(second)


def test_degraded_batches_cost_less_dispatch_time():
    """The degradation trade: under meltdown spikes the degraded dispatcher
    keeps serving (service rate stays positive) while the overrun accounting
    shows the budget pressure that tripped it."""
    row = _case(
        "stadium_surge", "ch", "eager",
        chaos="oracle_meltdown", scale=0.05, city_scale=0.35,
    )
    assert row["overruns"] >= row["breaker_trips"] // 2
    assert row["degraded"] > 0
    assert row["service_rate"] > 0.5


def main() -> None:
    if "--smoke" in sys.argv:
        _save_grid(
            smoke_rows(), "chaos_smoke",
            "Chaos smoke grid (flaky_oracle, policy x backend, parity-verified)",
        )
        return
    _save_grid(
        full_rows(), "chaos",
        (
            "Resilience under fault injection: recovery overhead per chaos "
            f"preset and refresh policy (NYC scale {CITY_SCALE}, {ALGORITHM}, "
            f"request scale {SCALE})"
        ),
    )


if __name__ == "__main__":
    main()
