"""Headline comparison: all six algorithms on the default CHD / NYC settings.

This is the "Summary of the experimental study" reproduction: batch methods
(RTV, GAS, SARD) versus online methods (pruneGDP, TicketAssign+, DARM+DPRS)
under the default parameters, with SARD expected to be the fastest batch
method and to match or beat every method on unified cost.
"""

from __future__ import annotations

from repro.experiments import figures

from _common import ALL_ALGORITHMS, make_runner, save_figure


def test_headline_default_parameters(benchmark):
    runner = make_runner(ALL_ALGORITHMS)

    def run():
        # A single sweep point at the paper's default penalty reproduces the
        # default-parameter columns of Figures 8-12.
        return figures.figure12(
            values=(10,), presets=("chd", "nyc"),
            algorithms=ALL_ALGORITHMS, runner=runner,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure("headline_default_comparison", figure)
    for preset, sweep in figure.sweeps.items():
        rows = {row.algorithm: row for row in sweep.rows}
        batch_cost = min(rows[name].unified_cost for name in ("RTV", "GAS", "SARD"))
        online_cost = min(
            rows[name].unified_cost
            for name in ("pruneGDP", "TicketAssign+", "DARM+DPRS")
        )
        # Batch methods achieve a unified cost at least as good as online
        # methods (within 5% slack for the small scaled instances).
        assert batch_cost <= online_cost * 1.05
        # SARD is the fastest batch-based method.
        assert rows["SARD"].running_time <= rows["RTV"].running_time
        assert rows["SARD"].running_time <= rows["GAS"].running_time
        # ... and its unified cost is within a whisker of the best algorithm.
        best_cost = min(row.unified_cost for row in rows.values())
        assert rows["SARD"].unified_cost <= best_cost * 1.10
