"""Figure 11: metrics versus vehicle capacity (2 to 6 seats)."""

from __future__ import annotations

from repro.experiments import figures

from _common import CORE_ALGORITHMS, make_runner, save_figure

CAPACITY_VALUES = (2, 3, 6)


def test_figure11_capacity_sweep(benchmark):
    runner = make_runner(CORE_ALGORITHMS)

    def run():
        return figures.figure11(
            values=CAPACITY_VALUES, presets=("chd", "nyc"),
            algorithms=CORE_ALGORITHMS, runner=runner,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure("figure11_capacity", figure)
    rows = figure.all_rows()
    assert len(rows) == len(CAPACITY_VALUES) * len(CORE_ALGORITHMS) * 2
    for row in rows:
        assert 0.0 <= row.service_rate <= 1.0
