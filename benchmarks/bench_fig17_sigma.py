"""Figure 17: capacity-variance sweep on the CHD and NYC presets."""

from __future__ import annotations

from repro.experiments import figures

from _common import CORE_ALGORITHMS, make_runner, save_figure

SIGMA_VALUES = (0.0, 1.0, 2.0)


def test_figure17_capacity_variance_sweep(benchmark):
    runner = make_runner(CORE_ALGORITHMS)

    def run():
        return figures.figure17(
            values=SIGMA_VALUES, presets=("chd", "nyc"),
            algorithms=CORE_ALGORITHMS, runner=runner,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure("figure17_sigma", figure)
    # The paper finds the vehicle-capacity distribution has a negligible
    # impact on ridesharing quality: every algorithm's curve stays flat.
    for sweep in figure.sweeps.values():
        for algorithm, series in sweep.series("service_rate").items():
            rates = [value for _, value in series]
            assert max(rates) - min(rates) <= 0.25
