"""Microbenchmark of the pluggable routing backends.

Times every backend of :class:`repro.network.shortest_path.DistanceOracle`
(``dijkstra`` | ``alt`` | ``ch`` | ``hub_label``) on the same batch of
repeated ``cost(u, v)`` queries over the NYC synthetic city at the default
workload scale, with the LRU pair cache disabled so the raw per-query rate of
each backend is what gets measured.  Two invariants are asserted alongside
the timings:

* the preprocessed backends return the same distances as plain Dijkstra
  (within 1e-6), and the ``hub_label`` backend is at least 5x faster on
  repeated cost queries;
* ``path()`` is exact on every backend: the unpacked CH paths sum to the
  reference distance edge by edge;
* every dispatcher produces *identical assignments* across all four backends
  on a fixed-seed scenario, so switching backends is purely a performance
  decision.

The table records preprocessing time (``build ms``) and per-query settled
nodes / scanned label entries (``settled/q``) per backend, so node-ordering
or stall-on-demand regressions in the CH preprocessor are visible in the CI
benchmark artifacts, not just in wall-clock noise.

Run directly (``python benchmarks/bench_oracle_backends.py``) for the full
table, or through pytest like the other benchmarks.
"""

from __future__ import annotations

import math
import random
import time

from repro.dispatch import make_dispatcher
from repro.network.generators import make_city
from repro.network.shortest_path import DistanceOracle
from repro.simulation.engine import Simulator
from repro.simulation.events import EventKind
from repro.workloads.presets import make_workload

from _common import save_json, save_text

#: All routing backends, reference (``dijkstra``) first.
BACKENDS = ("dijkstra", "alt", "ch", "hub_label")
#: The default city scale of :func:`repro.workloads.presets.make_workload`.
CITY_SCALE = 0.7
#: Number of distinct (source, target) pairs and repetitions per backend.
NUM_PAIRS = 300
REPEATS = 3
#: Required speedup of the hub_label backend over plain Dijkstra.
REQUIRED_SPEEDUP = 5.0

#: Recorded history of targeted optimisations, kept in the results file so
#: regeneration does not erase the before/after evidence.
HISTORY = (
    "History (same machine, NYC scale 0.7):",
    "  PR 3: CH upward adjacency flattened (CSR arrays + per-node tuple "
    "views) and query state moved to version-stamped flat arrays: "
    "ch 82.9 -> 67.6 us/query (settled/q unchanged at 48.5).",
    "  PR 5: CH build records repair-support effects (shortcuts, reductions, "
    "witness sets) for incremental repair: ch build 59.9 -> 63.3 ms, query "
    "us unchanged; this table is now the CI regression-gate baseline "
    "(check_regression.py, >30% us/query fails).",
    "  PR 8: observability: sampled query tracing sits behind a single "
    "falsy-int guard in the oracle hot path; us/query unchanged on every "
    "backend with tracing off.  Results are also written to "
    "oracle_backends.json, which the regression gate prefers over this "
    "text table.",
)

#: Fixed-seed scenario used by the cross-backend assignment check.
SCENARIO = {"num_requests": 150, "num_vehicles": 24}
ALGORITHMS = ("pruneGDP", "TicketAssign+", "DARM+DPRS", "RTV", "GAS", "SARD")


def measure_backends() -> list[dict]:
    """Time every backend on the same query batch; returns one row each."""
    rng = random.Random(7)
    nodes = list(make_city("nyc", scale=CITY_SCALE).nodes())
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(NUM_PAIRS)]
    rows: list[dict] = []
    reference: dict[tuple[int, int], float] = {}
    for name in BACKENDS:
        # A fresh (identical) city per backend so shared preprocessing from a
        # previous backend cannot hide this backend's true build cost.
        city = make_city("nyc", scale=CITY_SCALE)
        build_start = time.perf_counter()
        oracle = DistanceOracle(city, cache_size=0, backend=name)
        oracle.cost(*pairs[0])  # force the lazy preprocessing
        build_seconds = time.perf_counter() - build_start
        costs = {pair: oracle.cost(*pair) for pair in pairs}
        oracle.stats.reset()
        query_start = time.perf_counter()
        for _ in range(REPEATS):
            for u, v in pairs:
                oracle.cost(u, v)
        query_seconds = time.perf_counter() - query_start
        settled_per_query = oracle.stats.settled_nodes / oracle.stats.searches
        if name == "dijkstra":
            reference = costs
        max_error = max(
            abs(costs[pair] - reference[pair])
            for pair in pairs
            if math.isfinite(reference[pair])
        )
        # path() must be exact on every backend (unpacked CH paths included).
        for u, v in pairs[:25]:
            if not math.isfinite(reference[(u, v)]):
                continue
            path = oracle.path(u, v)
            total = sum(city.edge_cost(a, b) for a, b in zip(path, path[1:]))
            assert abs(total - reference[(u, v)]) < 1e-6, (name, u, v)
        rows.append(
            {
                "backend": name,
                "build_ms": build_seconds * 1e3,
                "query_us": query_seconds / (REPEATS * NUM_PAIRS) * 1e6,
                "queries_per_s": REPEATS * NUM_PAIRS / query_seconds,
                "settled_per_query": settled_per_query,
                "max_error": max_error,
            }
        )
    baseline = rows[0]["query_us"]
    for row in rows:
        row["speedup"] = baseline / row["query_us"]
    return rows


def results_payload(rows: list[dict]) -> dict:
    """Machine-readable twin of the text table (``oracle_backends.json``).

    ``query_us`` is the per-backend map the regression gate consumes; the
    full rows ride along for ad-hoc analysis.
    """
    return {
        "benchmark": "oracle_backends",
        "city_scale": CITY_SCALE,
        "num_pairs": NUM_PAIRS,
        "repeats": REPEATS,
        "query_us": {row["backend"]: row["query_us"] for row in rows},
        "rows": rows,
    }


def format_table(rows: list[dict]) -> str:
    lines = [
        "Routing backend microbenchmark "
        f"(NYC city at scale {CITY_SCALE}, {NUM_PAIRS} pairs x {REPEATS}, cache off)",
        f"{'backend':12s} {'build ms':>9s} {'query us':>9s} {'queries/s':>10s} "
        f"{'speedup':>8s} {'settled/q':>10s} {'max |err|':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row['backend']:12s} {row['build_ms']:9.1f} {row['query_us']:9.1f} "
            f"{row['queries_per_s']:10.0f} {row['speedup']:7.1f}x "
            f"{row['settled_per_query']:10.1f} {row['max_error']:10.2e}"
        )
    lines.append("")
    lines.extend(HISTORY)
    return "\n".join(lines)


def _assignments(workload, algorithm: str, backend: str) -> list[tuple[int, int]]:
    """Sorted (request, vehicle) assignment pairs of one fixed-seed run."""
    simulator = Simulator(
        network=workload.network,
        oracle=workload.fresh_oracle(backend=backend),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=make_dispatcher(algorithm),
        config=workload.simulation_config,
        record_events=True,
    )
    result = simulator.run()
    return sorted(
        (event.subject, event.other)
        for event in result.events.of_kind(EventKind.REQUEST_ASSIGNED)
    )


def verify_identical_assignments() -> dict[str, int]:
    """Assert every dispatcher assigns identically under all backends."""
    workload = make_workload(
        "nyc", city_scale=CITY_SCALE, workload_overrides=dict(SCENARIO)
    )
    assigned_counts: dict[str, int] = {}
    for algorithm in ALGORITHMS:
        reference = _assignments(workload, algorithm, BACKENDS[0])
        for backend in BACKENDS[1:]:
            assignments = _assignments(workload, algorithm, backend)
            assert assignments == reference, (
                f"{algorithm}: backend {backend!r} diverged from "
                f"{BACKENDS[0]!r} ({len(assignments)} vs {len(reference)} pairs)"
            )
        assigned_counts[algorithm] = len(reference)
    return assigned_counts


# ---------------------------------------------------------------------- #
# pytest entry points (mirroring the other benchmark modules)
# ---------------------------------------------------------------------- #
def test_backend_speedup():
    rows = measure_backends()
    by_name = {row["backend"]: row for row in rows}
    assert all(row["max_error"] < 1e-6 for row in rows)
    assert by_name["hub_label"]["speedup"] >= REQUIRED_SPEEDUP, (
        f"hub_label only {by_name['hub_label']['speedup']:.1f}x faster "
        f"than dijkstra (need {REQUIRED_SPEEDUP}x)"
    )
    # Node-ordering / stall-on-demand regression gate: the pruned
    # bidirectional CH query must do a small fraction of Dijkstra's work
    # (measured ~48 vs ~160 settled per query at city scale 0.7).
    assert (
        by_name["ch"]["settled_per_query"]
        < by_name["dijkstra"]["settled_per_query"] / 2
    ), by_name["ch"]["settled_per_query"]
    save_text("oracle_backends", format_table(rows))
    save_json("oracle_backends", results_payload(rows))


def test_identical_assignments_across_backends():
    counts = verify_identical_assignments()
    # The scenario must actually exercise the dispatchers.
    assert all(count > 0 for count in counts.values())


def main() -> None:
    rows = measure_backends()
    table = format_table(rows)
    counts = verify_identical_assignments()
    lines = [table, "", "Cross-backend assignment check (fixed-seed NYC scenario):"]
    for algorithm, count in counts.items():
        lines.append(
            f"  {algorithm:14s} {count:4d} assignments -- identical on "
            + ", ".join(BACKENDS)
        )
    save_text("oracle_backends", "\n".join(lines))
    save_json("oracle_backends", results_payload(rows))


if __name__ == "__main__":
    main()
