"""Figure 12: metrics versus the penalty coefficient pr (2 to 30)."""

from __future__ import annotations

from repro.experiments import figures

from _common import CORE_ALGORITHMS, make_runner, save_figure

PENALTY_VALUES = (2, 10, 30)


def test_figure12_penalty_sweep(benchmark):
    runner = make_runner(CORE_ALGORITHMS)

    def run():
        return figures.figure12(
            values=PENALTY_VALUES, presets=("chd", "nyc"),
            algorithms=CORE_ALGORITHMS, runner=runner,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure("figure12_penalty", figure)
    for sweep in figure.sweeps.values():
        for algorithm, series in sweep.series("unified_cost").items():
            # The unified cost is proportional to the penalty coefficient for
            # every greedy method (the paper's observation): larger pr means
            # larger cost on the same trace.
            assert series[-1][1] >= series[0][1]
        for algorithm, series in sweep.series("service_rate").items():
            # Service rates of the greedy methods are unaffected by pr.
            rates = [value for _, value in series]
            assert max(rates) - min(rates) <= 0.15
