"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark module regenerates one artefact of the paper's evaluation at
laptop scale: it runs the corresponding experiment through
:mod:`repro.experiments.figures`, times it with ``pytest-benchmark`` and
writes the resulting rows (the same columns the paper plots) both to stdout
and to ``benchmarks/results/<name>.txt``.

Absolute values are not comparable to the paper (Python simulator, synthetic
workloads, compressed time scale); the *shape* -- which algorithm wins, how
the curves move with each parameter -- is what the benchmarks reproduce.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.figures import FigureResult
from repro.experiments.harness import ExperimentRunner
from repro.experiments.reporting import format_rows, rows_to_csv

#: Output directory for the regenerated tables.
RESULTS_DIR = Path(__file__).parent / "results"

#: Laptop-scale fractions of the paper's instance sizes used by every figure
#: benchmark: 100K requests -> 80, 3K vehicles -> 60.
BENCH_REQUEST_FRACTION = 0.0008
BENCH_VEHICLE_FRACTION = 0.02
BENCH_CITY_SCALE = 0.35

#: The full algorithm line-up of the paper's main figures.
ALL_ALGORITHMS = ("pruneGDP", "TicketAssign+", "DARM+DPRS", "RTV", "GAS", "SARD")
#: Reduced line-up for the heaviest sweeps.
CORE_ALGORITHMS = ("pruneGDP", "RTV", "GAS", "SARD")


#: Routing backend used by the figure benchmarks.  ``hub_label`` reproduces
#: the paper's oracle (and is the fastest; see bench_oracle_backends.py);
#: pass ``routing_backend="dijkstra"`` to make_runner for the legacy search.
BENCH_ROUTING_BACKEND = "hub_label"


def make_runner(algorithms=ALL_ALGORITHMS, **overrides) -> ExperimentRunner:
    """The benchmark-sized experiment runner."""
    params = {
        "algorithms": algorithms,
        "request_fraction": BENCH_REQUEST_FRACTION,
        "vehicle_fraction": BENCH_VEHICLE_FRACTION,
        "city_scale": BENCH_CITY_SCALE,
        "routing_backend": BENCH_ROUTING_BACKEND,
    }
    params.update(overrides)
    return ExperimentRunner(**params)


def save_figure(name: str, figure: FigureResult) -> str:
    """Persist and return the text table of a figure result."""
    rows = figure.all_rows()
    text = format_rows(rows, title=f"{figure.figure} -- parameter: {figure.parameter}")
    _write(name, text, rows)
    return text


def save_rows(name: str, title: str, rows) -> str:
    """Persist and return the text table for a plain list of result rows."""
    text = format_rows(rows, title=title)
    _write(name, text, rows)
    return text


def save_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result next to the text table.

    The JSON twin is what downstream tooling (``check_regression.py``, CI
    summaries) should parse; the ``.txt`` table remains the human copy.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def save_text(name: str, text: str) -> str:
    """Persist free-form text output (used by the ablation tables)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(text)
    return text


def _write(name: str, text: str, rows) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    rows_to_csv(rows, RESULTS_DIR / f"{name}.csv")
    print(text)
