"""Tables V and VI: the angle-pruning ablation (SARD versus SARD-O).

The paper reports that angle pruning removes up to 42% of the shortest-path
queries on Cainiao (Table V) and ~7% on CHD/NYC (Table VI) with almost no
change in unified cost or service rate.
"""

from __future__ import annotations

from repro.experiments import figures

from _common import BENCH_REQUEST_FRACTION, BENCH_VEHICLE_FRACTION, save_text


def _format(rows) -> str:
    header = f"{'dataset':10s} {'method':8s} {'unified_cost':>14s} {'service_rate':>13s} {'#SP queries':>12s} {'time (s)':>9s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.dataset:10s} {row.method:8s} {row.unified_cost:14.1f} "
            f"{row.service_rate:13.3f} {row.shortest_path_queries:12d} {row.running_time:9.3f}"
        )
    return "\n".join(lines)


def test_table5_cainiao_angle_pruning(benchmark):
    rows = benchmark.pedantic(
        lambda: figures.table5_angle_pruning(request_fraction=BENCH_REQUEST_FRACTION),
        rounds=1, iterations=1,
    )
    save_text("table5_angle_pruning_cainiao", _format(rows))
    by_method = {row.method: row for row in rows}
    # SARD-O never issues more shortest-path queries than plain SARD and its
    # service rate stays within a few points.
    assert by_method["SARD-O"].shortest_path_queries <= by_method["SARD"].shortest_path_queries
    assert by_method["SARD-O"].service_rate >= by_method["SARD"].service_rate - 0.1


def test_table6_chd_nyc_angle_pruning(benchmark):
    rows = benchmark.pedantic(
        lambda: figures.table6_angle_pruning(request_fraction=BENCH_REQUEST_FRACTION),
        rounds=1, iterations=1,
    )
    save_text("table6_angle_pruning_chd_nyc", _format(rows))
    for dataset in sorted({row.dataset for row in rows}):
        subset = {row.method: row for row in rows if row.dataset == dataset}
        assert subset["SARD-O"].shortest_path_queries <= subset["SARD"].shortest_path_queries
        assert subset["SARD-O"].service_rate >= subset["SARD"].service_rate - 0.1
