"""Figure 8: unified cost, service rate and running time versus fleet size.

The paper sweeps |W| from 1K to 5K vehicles on the CHD and NYC datasets; this
benchmark sweeps the scaled-down equivalents and regenerates the same three
metric series for every algorithm.
"""

from __future__ import annotations

from repro.experiments import figures

from _common import ALL_ALGORITHMS, make_runner, save_figure

#: Scaled sweep: the paper's 1K / 3K / 5K fleet sizes.
VEHICLE_VALUES = (1_000, 3_000, 5_000)


def test_figure8_fleet_size_sweep(benchmark):
    runner = make_runner(ALL_ALGORITHMS)

    def run():
        return figures.figure8(
            values=VEHICLE_VALUES, presets=("chd", "nyc"),
            algorithms=ALL_ALGORITHMS, runner=runner,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure("figure08_vehicles", figure)
    rows = figure.all_rows()
    assert len(rows) == len(VEHICLE_VALUES) * len(ALL_ALGORITHMS) * 2
    # More vehicles never lowers SARD's service rate on the same trace.
    for sweep in figure.sweeps.values():
        series = dict(sweep.series("service_rate"))["SARD"]
        assert series[-1][1] >= series[0][1] - 0.05
