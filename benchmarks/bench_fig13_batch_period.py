"""Figure 13: the batch-mode methods versus the batching period Delta."""

from __future__ import annotations

from repro.experiments import figures
from repro.experiments.figures import BATCH_ALGORITHMS

from _common import make_runner, save_figure

BATCH_PERIODS = (1, 3, 9)


def test_figure13_batch_period_sweep(benchmark):
    runner = make_runner(BATCH_ALGORITHMS)

    def run():
        return figures.figure13(
            values=BATCH_PERIODS, presets=("chd", "nyc"),
            algorithms=BATCH_ALGORITHMS, runner=runner,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure("figure13_batch_period", figure)
    rows = figure.all_rows()
    assert {row.algorithm for row in rows} == set(BATCH_ALGORITHMS)
    assert len(rows) == len(BATCH_PERIODS) * len(BATCH_ALGORITHMS) * 2
