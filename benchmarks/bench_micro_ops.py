"""Micro-benchmarks of the core operators.

These complement the figure reproductions: they time the individual building
blocks (shortest-path queries, grid-index lookups, linear insertion, pairwise
shareability tests, shareability-graph construction, shareability loss and
group enumeration) so regressions in any substrate show up directly.
"""

from __future__ import annotations

import random

import pytest

from repro.config import SimulationConfig
from repro.grouping.additive_tree import build_groups
from repro.insertion.linear_insertion import best_insertion
from repro.insertion.pair_schedules import are_shareable
from repro.model.request import Request
from repro.model.schedule import Schedule
from repro.model.vehicle import RouteState
from repro.network.generators import grid_city
from repro.network.grid_index import GridIndex
from repro.network.shortest_path import DistanceOracle
from repro.shareability.builder import DynamicShareabilityGraphBuilder
from repro.shareability.loss import residual_shareability_loss, shareability_loss


@pytest.fixture(scope="module")
def city():
    return grid_city(14, 14, block_length=150.0, perturbation=0.2, seed=21)


@pytest.fixture(scope="module")
def oracle(city):
    return DistanceOracle(city)


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(max_wait=150.0)


@pytest.fixture(scope="module")
def requests(city, oracle, config):
    rng = random.Random(5)
    nodes = list(city.nodes())
    result = []
    for rid in range(120):
        source, destination = rng.sample(nodes, 2)
        result.append(
            Request.create(
                request_id=rid, source=source, destination=destination,
                release_time=rng.uniform(0, 60), direct_cost=oracle.cost(source, destination),
                gamma=config.gamma, max_wait=config.max_wait,
            )
        )
    return result


def test_shortest_path_query(benchmark, city, oracle):
    rng = random.Random(1)
    nodes = list(city.nodes())
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(200)]

    def run():
        return sum(oracle.cost(u, v) for u, v in pairs)

    assert benchmark(run) > 0


def test_grid_index_radius_query(benchmark, city):
    index = GridIndex.for_network(city, cells_per_axis=24)
    rng = random.Random(2)
    for node in city.nodes():
        x, y = city.position(node)
        index.insert(node, x, y)
    queries = [(rng.uniform(0, 1800), rng.uniform(0, 1800), 400.0) for _ in range(200)]

    def run():
        return sum(len(index.query_radius(x, y, r)) for x, y, r in queries)

    benchmark(run)


def test_linear_insertion(benchmark, oracle, requests):
    base = RouteState(vehicle_id=0, origin=requests[0].source, departure_time=0.0,
                      schedule=Schedule.direct(requests[0]), capacity=4, onboard=0)

    def run():
        feasible = 0
        for request in requests[1:40]:
            if best_insertion(base, request, oracle).feasible:
                feasible += 1
        return feasible

    benchmark(run)


def test_pairwise_shareability(benchmark, oracle, requests, config):
    pairs = list(zip(requests[:40], requests[40:80]))

    def run():
        return sum(
            are_shareable(a, b, oracle, capacity=config.capacity) for a, b in pairs
        )

    benchmark(run)


def test_shareability_graph_build(benchmark, city, oracle, config, requests):
    def run():
        builder = DynamicShareabilityGraphBuilder(
            network=city, oracle=oracle, config=config,
        )
        builder.update(requests[:80])
        return builder.graph.num_edges

    benchmark(run)


def test_shareability_loss_evaluation(benchmark, city, oracle, config, requests):
    builder = DynamicShareabilityGraphBuilder(network=city, oracle=oracle, config=config)
    builder.update(requests[:80])
    graph = builder.graph
    rng = random.Random(3)
    nodes = [rid for rid in graph.request_ids() if graph.degree(rid) > 0]
    groups = []
    for _ in range(100):
        seed = rng.choice(nodes)
        neighbour = rng.choice(sorted(graph.neighbors(seed)))
        groups.append([seed, neighbour])

    def run():
        total = 0.0
        for group in groups:
            total += shareability_loss(graph, group)
            total += residual_shareability_loss(graph, group)
        return total

    benchmark(run)


def test_group_enumeration(benchmark, city, oracle, config, requests):
    builder = DynamicShareabilityGraphBuilder(network=city, oracle=oracle, config=config)
    builder.update(requests[:60])
    graph = builder.graph
    route = RouteState(vehicle_id=0, origin=0, departure_time=0.0,
                       schedule=Schedule.empty(), capacity=3, onboard=0)

    def run():
        groups = build_groups(requests[:60], graph, route, oracle, max_group_size=3)
        return len(groups)

    benchmark(run)
