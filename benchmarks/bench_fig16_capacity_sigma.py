"""Figure 16: capacity and capacity-variance sweeps on the Cainiao preset."""

from __future__ import annotations

from repro.experiments import figures

from _common import make_runner, save_figure

CAINIAO_ALGORITHMS = ("pruneGDP", "RTV", "GAS", "SARD")


def test_figure16_capacity_and_sigma(benchmark):
    runner = make_runner(CAINIAO_ALGORITHMS)

    def run():
        return figures.figure16(
            capacity_values=(2, 4, 6),
            sigma_values=(0.0, 1.0, 2.0),
            algorithms=CAINIAO_ALGORITHMS,
            runner=runner,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure("figure16_capacity", results["capacity"])
    save_figure("figure16_capacity_sigma", results["capacity_sigma"])
    # Appendix C: the capacity-variance sigma has a negligible effect on the
    # quality metrics -- the curves stay flat.
    sigma_sweep = results["capacity_sigma"].sweeps["cainiao"]
    for algorithm, series in sigma_sweep.series("service_rate").items():
        rates = [value for _, value in series]
        assert max(rates) - min(rates) <= 0.25
