"""Figure 14 / Appendix A: estimated memory consumption per algorithm."""

from __future__ import annotations

from repro.experiments import figures

from _common import ALL_ALGORITHMS, make_runner, save_figure


def test_figure14_memory_consumption(benchmark):
    runner = make_runner(ALL_ALGORITHMS)

    def run():
        return figures.figure14_memory(
            presets=("chd", "nyc"), algorithms=ALL_ALGORITHMS, runner=runner,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure("figure14_memory", figure)
    for sweep in figure.sweeps.values():
        by_algorithm = {row.algorithm: row.peak_memory_bytes for row in sweep.rows}
        # Batch methods need extra storage for their per-batch structures and
        # RTV's ILP makes it the heaviest, as in the paper's appendix.
        assert by_algorithm["RTV"] >= by_algorithm["pruneGDP"]
        assert by_algorithm["RTV"] >= by_algorithm["TicketAssign+"]
