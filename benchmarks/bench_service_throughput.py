"""Throughput benchmark of the dispatch service front door.

Pushes the NYC synthetic workload through :class:`repro.service.DispatchService`
(typed ingestion -> bounded queue -> virtual-clock batch tick -> streamed
assignment events) on both preprocessed routing backends (``ch`` |
``hub_label``) and reports the sustained ingest-to-assignment rate in
requests/s.  The number is only meaningful *at the service-rate SLO*
(:class:`repro.config.ServiceConfig.slo_service_rate`): throughput with
unbounded rejections is free, so every row asserts the SLO was met before
its requests/s figure counts.

Two invariants are asserted alongside the timings:

* **SLO**: every measured run assigns at least ``slo_service_rate`` of the
  accepted requests (the paper-level service-rate objective);
* **parity**: the service-mode run produces exactly the same assignments
  (request, vehicle) as one batch :meth:`repro.simulation.Simulator.run`
  over the same workload -- the service layer adds an API, not a behaviour.

Results land in ``benchmarks/results/service_throughput.txt`` with a JSON
twin that ``check_regression.py`` consumes (``query_us`` holds the
per-request microseconds per backend, same shape as the oracle benchmark,
so the existing gate machinery applies unchanged).

Run directly (``python benchmarks/bench_service_throughput.py``) for the
full table, ``--smoke`` for the faster CI variant, or through pytest like
the other benchmark modules.
"""

from __future__ import annotations

import sys
import time

from repro.config import ServiceConfig
from repro.dispatch import make_dispatcher
from repro.service import DispatchService, RideRequest
from repro.simulation.engine import Simulator
from repro.simulation.events import EventKind
from repro.workloads.presets import make_workload

from _common import save_json, save_text

BACKENDS = ("ch", "hub_label")
#: Workload scale of the full benchmark (the smoke run shrinks it).
SCALE = 0.08
CITY_SCALE = 0.4
ALGORITHM = "SARD"
REPEATS = 3
#: Queue sized for the full trace so admission control never intrudes on
#: the throughput number (overload behaviour has its own tests).
SERVICE = ServiceConfig(queue_capacity=4096)


def _assignment_pairs(events) -> list[tuple[int, int]]:
    """Sorted (request, vehicle) pairs of a run's accepted assignments."""
    return sorted(
        (event.subject, event.other)
        for event in events.of_kind(EventKind.REQUEST_ASSIGNED)
    )


def measure_backend(
    backend: str, *, scale: float = SCALE, repeats: int = REPEATS
) -> dict:
    """Time the service loop on one routing backend; returns one table row.

    The oracle is preprocessed *before* the clock starts (build time is the
    oracle benchmark's story, reported here only for context), each repeat
    runs the whole trace through a fresh service on fresh vehicles, and the
    best repeat is the sustained rate -- matching how the other
    microbenchmarks report.
    """
    workload = make_workload("nyc", scale=scale, city_scale=CITY_SCALE)
    requests = [RideRequest.from_request(r) for r in workload.requests]
    build_start = time.perf_counter()
    oracle = workload.fresh_oracle(backend=backend)
    first = workload.requests[0]
    oracle.cost(first.source, first.destination)  # force the lazy preprocessing
    build_ms = (time.perf_counter() - build_start) * 1e3
    best_seconds = float("inf")
    outcome = None
    for _ in range(repeats):
        service = DispatchService(
            network=workload.network,
            oracle=oracle,
            vehicles=workload.fresh_vehicles(),
            dispatcher=make_dispatcher(ALGORITHM),
            config=workload.simulation_config,
            service_config=SERVICE,
        )
        start = time.perf_counter()
        outcome = service.serve(requests)
        best_seconds = min(best_seconds, time.perf_counter() - start)
    assert outcome is not None
    stats = outcome.stats
    assert stats.rejected in (None, {}) or not any(stats.rejected.values()), (
        f"{backend}: admission control intruded on the throughput run: "
        f"{stats.rejected}"
    )
    assert outcome.slo_met, (
        f"{backend}: service rate {outcome.service_rate:.3f} below the "
        f"SLO {outcome.slo_service_rate:.2f}; requests/s would be meaningless"
    )
    # Parity: the service run must equal one batch Simulator.run().
    batch = Simulator(
        network=workload.network,
        oracle=oracle,
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=make_dispatcher(ALGORITHM),
        config=workload.simulation_config,
        record_events=True,
    ).run()
    assert _assignment_pairs(outcome.simulation.events) == _assignment_pairs(
        batch.events
    ), f"{backend}: service-mode assignments diverged from the batch run"
    return {
        "backend": backend,
        "requests": stats.received,
        "assigned": stats.assigned,
        "batches": stats.batches,
        "service_rate": outcome.service_rate,
        "slo": outcome.slo_service_rate,
        "build_ms": build_ms,
        "rps": stats.received / best_seconds,
        "us_per_request": best_seconds / stats.received * 1e6,
    }


def measure_all(*, scale: float = SCALE, repeats: int = REPEATS) -> list[dict]:
    return [
        measure_backend(backend, scale=scale, repeats=repeats)
        for backend in BACKENDS
    ]


def results_payload(rows: list[dict], *, scale: float) -> dict:
    """Machine-readable twin (``service_throughput.json``).

    ``query_us`` maps backend -> per-request microseconds -- the same shape
    as ``oracle_backends.json``, so :mod:`repro.experiments.regression`
    loads and gates it without a second parser.
    """
    return {
        "benchmark": "service_throughput",
        "scale": scale,
        "city_scale": CITY_SCALE,
        "algorithm": ALGORITHM,
        "slo_service_rate": SERVICE.slo_service_rate,
        "query_us": {row["backend"]: row["us_per_request"] for row in rows},
        "rps": {row["backend"]: row["rps"] for row in rows},
        "rows": rows,
    }


def format_table(rows: list[dict], *, scale: float) -> str:
    lines = [
        "Dispatch service throughput: sustained requests/s at the "
        f"service-rate SLO >= {SERVICE.slo_service_rate:.2f} "
        f"(NYC scale {CITY_SCALE}, {ALGORITHM}, request scale {scale}, "
        f"best of {REPEATS}, parity-checked against one batch run)",
        f"{'backend':12s} {'requests':>8s} {'assigned':>8s} {'batches':>7s} "
        f"{'svc rate':>8s} {'build ms':>9s} {'req/s':>8s} {'us/req':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row['backend']:12s} {row['requests']:8d} {row['assigned']:8d} "
            f"{row['batches']:7d} {row['service_rate']:8.3f} "
            f"{row['build_ms']:9.1f} {row['rps']:8.0f} "
            f"{row['us_per_request']:8.1f}"
        )
    lines += [
        "",
        "Every row met the SLO and reproduced the batch harness' assignments "
        "exactly (the service layer adds an API, not a behaviour).",
    ]
    return "\n".join(lines)


def _save(rows: list[dict], *, scale: float) -> None:
    save_text("service_throughput", format_table(rows, scale=scale))
    save_json("service_throughput", results_payload(rows, scale=scale))


# ---------------------------------------------------------------------- #
# pytest entry points (mirroring the other benchmark modules)
# ---------------------------------------------------------------------- #
def test_service_throughput_smoke():
    """The CI gate: both backends sustain the SLO, stay parity-exact with
    the batch harness and report a positive requests/s figure.

    The smoke run keeps the full request scale (so its us/request rows
    compare like-for-like with the committed baseline in the regression
    gate) and only drops the repeat count.
    """
    rows = measure_all(scale=SCALE, repeats=1)
    for row in rows:
        assert row["rps"] > 0, row
        assert row["service_rate"] >= row["slo"], row
    _save(rows, scale=SCALE)


def main() -> None:
    if "--smoke" in sys.argv:
        _save(measure_all(scale=SCALE, repeats=1), scale=SCALE)
        return
    _save(measure_all(), scale=SCALE)


if __name__ == "__main__":
    main()
