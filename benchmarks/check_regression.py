"""CI gate: fail when a routing backend's us/query regressed vs a baseline.

Thin CLI over :mod:`repro.experiments.regression`.  Typical CI usage::

    python benchmarks/check_regression.py \\
        --baseline /tmp/bench-baseline/oracle_backends.txt \\
        --fresh benchmarks/results/oracle_backends.txt \\
        --threshold 0.30 --summary "$GITHUB_STEP_SUMMARY"

With ``--normalize dijkstra`` the comparison uses per-backend times divided
by the reference backend's time from the same table -- required when the
baseline was timed on different hardware (the committed results file).

Exit status: 0 when the gate passes, 1 when any backend regressed beyond
the threshold (or vanished from the fresh table), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.experiments.regression import (
    DEFAULT_THRESHOLD,
    compare_backend_tables,
    format_markdown,
    load_backend_table,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, type=Path,
        help="benchmark table to compare against",
    )
    parser.add_argument(
        "--fresh", required=True, type=Path,
        help="freshly generated benchmark table",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative slowdown that fails the gate (default 0.30 = +30%%)",
    )
    parser.add_argument(
        "--normalize", default=None, metavar="BACKEND",
        help="divide every time by this backend's time from the same table "
        "(use for cross-machine baselines, e.g. 'dijkstra')",
    )
    parser.add_argument(
        "--summary", type=Path, default=None,
        help="append the markdown report to this file (CI job summary)",
    )
    parser.add_argument(
        "--metric", default="us/query",
        help="label of the compared quantity in the report "
        "(e.g. 'us/request' for the service-throughput gate)",
    )
    parser.add_argument(
        "--title", default="Oracle-backend benchmark regression gate",
        help="report title (names the gate in the CI job summary)",
    )
    args = parser.parse_args(argv)
    try:
        # A sibling .json with the same stem wins over the text table (see
        # load_backend_table), so passing the .txt path keeps working.
        baseline = load_backend_table(args.baseline)
        fresh = load_backend_table(args.fresh)
        deltas = compare_backend_tables(
            baseline, fresh, threshold=args.threshold, normalize=args.normalize
        )
    except (OSError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = format_markdown(
        deltas, threshold=args.threshold, normalize=args.normalize,
        metric=args.metric, title=args.title,
    )
    print(report)
    if args.summary is not None:
        with args.summary.open("a") as handle:
            handle.write(report + "\n")
    return 1 if any(d.regressed for d in deltas) else 0


if __name__ == "__main__":
    sys.exit(main())
