"""Section IV-A study: shareability-ordered insertion versus release order.

The paper reports that inserting requests in ascending order of shareability
raises the probability that linear insertion reaches the optimal
(kinetic-tree) schedule from 89%/85% to 91%/90% for the third and fourth
request.  This benchmark reproduces the study on the synthetic NYC preset and
also reproduces the Section III-B expected-sharing-probability computation.
"""

from __future__ import annotations

import math

from repro.experiments import figures

from _common import save_text


def test_insertion_order_study(benchmark):
    rows = benchmark.pedantic(
        lambda: figures.insertion_order_study(
            num_requests=180, group_sizes=(3, 4), samples_per_size=20, seed=9,
        ),
        rounds=1, iterations=1,
    )
    lines = [
        f"{'dataset':8s} {'group size':>10s} {'samples':>8s} {'release order opt.':>19s} {'shareability order opt.':>24s}"
    ]
    for row in rows:
        lines.append(
            f"{row.dataset:8s} {row.group_size:10d} {row.samples:8d} "
            f"{row.release_order_optimal:19.2f} {row.shareability_order_optimal:24.2f}"
        )
    save_text("insertion_order_study", "\n".join(lines))
    assert rows
    for row in rows:
        # Both orderings reach the optimum for a large share of the sampled
        # groups, and reordering by shareability does not hurt.
        assert row.shareability_order_optimal >= row.release_order_optimal - 0.2
        assert row.release_order_optimal >= 0.4


def test_angle_expectation_study(benchmark):
    study = benchmark.pedantic(
        lambda: figures.angle_expectation_study(num_requests=300),
        rounds=1, iterations=1,
    )
    save_text(
        "angle_expectation_study",
        "\n".join(f"{key}: {value}" for key, value in study.items()),
    )
    # The paper reports E(theta >= pi/2) ~ 41% for gamma = 1.5; the synthetic
    # trip-length distribution lands in the same ballpark.
    assert study["theta"] == math.pi / 2
    assert 0.15 <= study["expected_probability"] <= 0.7
