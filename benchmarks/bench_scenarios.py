"""Benchmark of the dynamic-world scenario engine and oracle refresh policies.

Runs the ``bridge_closure`` and ``rush_hour`` scenario presets on the
preprocessed routing backends (``ch``, ``hub_label``) under all three
refresh policies and reports the refresh overhead per policy: backend
rebuilds and their wall-clock cost, queries served by the exact Dijkstra
fallback while the structures were dirty, and the stale-window time.

Two invariants are asserted while the simulations run (via the timeline's
``on_applied`` probe, i.e. *after every world event burst*):

* cost parity: the scenario oracle agrees with a fresh Dijkstra over the
  mutated network on a sample of random pairs, and
* zero closed edges: every returned path uses only edges that currently
  exist in the network.

Run directly (``python benchmarks/bench_scenarios.py``) for the full table,
``--smoke`` for the short CI job (rush_hour on both backends, one policy),
or through pytest like the other benchmarks.
"""

from __future__ import annotations

import math
import random
import sys

from repro.dispatch import make_dispatcher
from repro.network.shortest_path import DistanceOracle
from repro.scenarios import make_scenario_workload
from repro.simulation.engine import Simulator

from _common import save_text

BACKENDS = ("ch", "hub_label")
POLICIES = ("eager", "deferred", "coalesce")
SCENARIOS = ("bridge_closure", "rush_hour")
#: Workload scale of the full benchmark (the smoke run shrinks it further).
SCALE = 0.08
CITY_SCALE = 0.4
ALGORITHM = "SARD"
#: Random pairs checked for parity after every event burst.
PARITY_PAIRS = 20


def run_scenario(
    scenario_name: str,
    backend: str,
    policy: str,
    *,
    scale: float = SCALE,
    algorithm: str = ALGORITHM,
) -> dict:
    """One simulated run; returns the refresh-overhead row.

    The parity probe runs after every event burst (once the refresh policy
    has made the oracle consistent again) and raises on any divergence from
    a fresh Dijkstra or any path through a closed edge.
    """
    workload, scenario = make_scenario_workload(
        "nyc",
        scenario_name,
        scale=scale,
        city_scale=CITY_SCALE,
        simulation_overrides={"routing_backend": backend},
    )
    rng = random.Random(99)
    bursts = {"count": 0}

    def probe(world) -> None:
        bursts["count"] += 1
        network = world.network
        nodes = list(network.nodes())
        reference = DistanceOracle(network, cache_size=0, backend="dijkstra")
        for _ in range(PARITY_PAIRS):
            u, v = rng.sample(nodes, 2)
            want = reference.cost(u, v)
            got = world.oracle.cost(u, v)
            if math.isinf(want):
                assert math.isinf(got), (scenario_name, backend, policy, u, v)
                continue
            assert abs(got - want) < 1e-6, (scenario_name, backend, policy, u, v)
            path = world.oracle.path(u, v)
            assert all(
                network.has_edge(a, b) for a, b in zip(path, path[1:])
            ), (scenario_name, backend, policy, u, v)

    simulator = Simulator(
        network=workload.network,
        oracle=workload.fresh_oracle(),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=make_dispatcher(algorithm),
        config=workload.simulation_config,
        record_events=False,
        timeline=scenario.make_timeline(on_applied=probe),
        refresh_policy=policy,
    )
    result = simulator.run()
    metrics = result.metrics
    assert bursts["count"] > 0, "scenario applied no events"
    return {
        "scenario": scenario_name,
        "backend": backend,
        "policy": policy,
        "events": metrics.scenario_events,
        "rebuilds": metrics.oracle_rebuilds,
        "rebuild_ms": metrics.oracle_rebuild_seconds * 1e3,
        "fallback_q": metrics.oracle_fallback_queries,
        "stale_ms": metrics.oracle_stale_seconds * 1e3,
        "service_rate": metrics.service_rate,
        "unified_cost": metrics.unified_cost,
        "dispatch_s": metrics.dispatch_seconds,
    }


def format_table(rows: list[dict], *, title: str) -> str:
    lines = [
        title,
        f"{'scenario':16s} {'backend':10s} {'policy':9s} {'events':>6s} "
        f"{'rebuilds':>8s} {'rebuild ms':>10s} {'fallback q':>10s} "
        f"{'stale ms':>9s} {'svc rate':>8s} {'unified':>9s}",
    ]
    for row in rows:
        lines.append(
            f"{row['scenario']:16s} {row['backend']:10s} {row['policy']:9s} "
            f"{row['events']:6d} {row['rebuilds']:8d} {row['rebuild_ms']:10.1f} "
            f"{row['fallback_q']:10d} {row['stale_ms']:9.1f} "
            f"{row['service_rate']:8.3f} {row['unified_cost']:9.0f}"
        )
    lines.append("")
    lines.append(
        "Parity checked after every event burst: scenario oracle == fresh "
        "Dijkstra on the mutated network; all returned paths avoid closed edges."
    )
    return "\n".join(lines)


def full_rows() -> list[dict]:
    return [
        run_scenario(scenario, backend, policy)
        for scenario in SCENARIOS
        for backend in BACKENDS
        for policy in POLICIES
    ]


def smoke_rows() -> list[dict]:
    """The CI smoke job: a short rush_hour run on both backends."""
    return [
        run_scenario("rush_hour", backend, "coalesce", scale=0.04, algorithm="pruneGDP")
        for backend in BACKENDS
    ]


# ---------------------------------------------------------------------- #
# pytest entry points (mirroring the other benchmark modules)
# ---------------------------------------------------------------------- #
def test_scenario_refresh_overhead_smoke():
    rows = smoke_rows()
    for row in rows:
        assert row["events"] > 0
        assert row["rebuilds"] >= 1
    save_text(
        "scenarios_smoke",
        format_table(rows, title="Scenario smoke run (rush_hour, coalesce policy)"),
    )


def test_policies_trade_rebuilds_for_fallback():
    """Deferred/coalesce must actually serve fallback queries where eager
    never does, on the same bridge_closure scenario."""
    eager = run_scenario("bridge_closure", "ch", "eager", scale=0.05)
    coalesce = run_scenario("bridge_closure", "ch", "coalesce", scale=0.05)
    assert eager["fallback_q"] == 0
    assert coalesce["fallback_q"] > 0
    assert coalesce["stale_ms"] > 0.0


def main() -> None:
    if "--smoke" in sys.argv:
        rows = smoke_rows()
        save_text(
            "scenarios_smoke",
            format_table(rows, title="Scenario smoke run (rush_hour, coalesce policy)"),
        )
        return
    rows = full_rows()
    save_text(
        "scenarios",
        format_table(
            rows,
            title=(
                "Dynamic-world scenario engine: oracle refresh overhead per "
                f"policy (NYC scale {CITY_SCALE}, {ALGORITHM}, "
                f"request scale {SCALE})"
            ),
        ),
    )


if __name__ == "__main__":
    main()
