"""Benchmark of the dynamic-world scenario engine and oracle refresh policies.

Runs the ``bridge_closure`` and ``rush_hour`` scenario presets on the
preprocessed routing backends (``ch``, ``hub_label``) under all four
refresh policies -- ``eager`` | ``deferred`` | ``coalesce`` | ``repair`` --
and reports the refresh overhead per policy: backend rebuilds and their
wall-clock cost, incremental repairs (nodes re-contracted, snapshot hits),
queries served by the exact Dijkstra fallback while the structures were
dirty, and the stale-window time.

Every cell goes through the harness front door
(:func:`repro.experiments.harness.run` with ``mode="scenario"`` specs --
one code path for experiments, this benchmark and CI); every run here
enables the harness parity probe, i.e. *after every world event burst* the
scenario oracle is checked against a fresh Dijkstra over the mutated network
and every returned path is checked to avoid closed edges.

Run directly (``python benchmarks/bench_scenarios.py``) for the full table,
``--smoke`` for the short CI grid (both scenarios x both backends x all
policies at a smaller scale, with a markdown copy for the CI job summary),
``--trace`` for one traced run that writes the observability artifacts
(JSONL span trace, Prometheus snapshot, markdown report) into the results
directory, or through pytest like the other benchmarks.
"""

from __future__ import annotations

import sys

from repro.experiments.harness import RunSpec, run, run_grid

from _common import RESULTS_DIR, save_json, save_text

BACKENDS = ("ch", "hub_label")
POLICIES = ("eager", "deferred", "coalesce", "repair")
SCENARIOS = ("bridge_closure", "rush_hour")
#: Workload scale of the full benchmark (the smoke run shrinks it further).
SCALE = 0.08
CITY_SCALE = 0.4
ALGORITHM = "SARD"
#: Random pairs checked for parity after every event burst.
PARITY_PAIRS = 20

#: Grid columns: row key -> (printed label, value format).
COLUMNS: dict[str, tuple[str, str]] = {
    "scenario": ("scenario", "s"),
    "backend": ("backend", "s"),
    "policy": ("policy", "s"),
    "events": ("events", "d"),
    "rebuilds": ("rebuilds", "d"),
    "rebuild_ms": ("rebuild ms", ".1f"),
    "repairs": ("repairs", "d"),
    "repair_ms": ("repair ms", ".1f"),
    "snapshot_hits": ("snap", "d"),
    "recontracted": ("recon", "d"),
    "fallback_q": ("fallback q", "d"),
    "stale_ms": ("stale ms", ".1f"),
    "service_rate": ("svc rate", ".3f"),
    "unified_cost": ("unified", ".0f"),
}
PARITY_NOTE = (
    "Parity checked after every event burst: scenario oracle == fresh "
    "Dijkstra on the mutated network; all returned paths avoid closed edges."
)


def _cells(row: dict) -> list[str]:
    return [
        f"{row[key]:{fmt}}" if fmt != "s" else str(row[key])
        for key, (_, fmt) in COLUMNS.items()
    ]


def format_table(rows: list[dict], *, title: str) -> str:
    labels = [label for label, _ in COLUMNS.values()]
    table = [labels] + [_cells(row) for row in rows]
    widths = [max(len(line[i]) for line in table) for i in range(len(labels))]
    lines = [title]
    for line in table:
        padded = [
            cell.ljust(width) if j < 3 else cell.rjust(width)
            for j, (cell, width) in enumerate(zip(line, widths))
        ]
        lines.append(" ".join(padded).rstrip())
    lines += ["", PARITY_NOTE]
    return "\n".join(lines)


def format_markdown(rows: list[dict], *, title: str) -> str:
    """The same grid as a GitHub-flavoured markdown table (CI job summary)."""
    labels = [label for label, _ in COLUMNS.values()]
    lines = [
        f"### {title}",
        "",
        "| " + " | ".join(labels) + " |",
        "|" + "|".join("---" for _ in labels) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cells(row)) + " |")
    lines += ["", PARITY_NOTE]
    return "\n".join(lines)


def _grid_rows(**common) -> list[dict]:
    specs = RunSpec.grid(
        scenarios=SCENARIOS, backends=BACKENDS, policies=POLICIES,
        mode="scenario", **common,
    )
    return [outcome.row for outcome in run_grid(specs) if outcome.row]


def _case(scenario: str, backend: str, policy: str, **kwargs) -> dict:
    row = run(RunSpec(
        mode="scenario", scenario=scenario, backend=backend,
        refresh_policy=policy, **kwargs,
    )).row
    assert row is not None
    return row


def full_rows() -> list[dict]:
    return _grid_rows(
        scale=SCALE, city_scale=CITY_SCALE,
        algorithm=ALGORITHM, parity_pairs=PARITY_PAIRS,
    )


def smoke_rows() -> list[dict]:
    """The CI grid: both scenarios x both backends x all four policies."""
    return _grid_rows(
        scale=0.04, city_scale=CITY_SCALE,
        algorithm="pruneGDP", parity_pairs=12,
    )


def _save_grid(rows: list[dict], name: str, title: str) -> None:
    save_text(name, format_table(rows, title=title))
    save_json(name, {"benchmark": name, "title": title, "rows": rows})
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.md").write_text(
        format_markdown(rows, title=title) + "\n"
    )


# ---------------------------------------------------------------------- #
# pytest entry points (mirroring the other benchmark modules)
# ---------------------------------------------------------------------- #
def test_scenario_refresh_overhead_smoke():
    rows = smoke_rows()
    for row in rows:
        assert row["events"] > 0
        assert row["rebuilds"] + row["repairs"] >= 1
    _save_grid(
        rows, "scenarios_smoke",
        "Scenario smoke grid (policy x backend, parity-gated)",
    )


def test_policies_trade_rebuilds_for_fallback():
    """Deferred/coalesce must actually serve fallback queries where eager
    never does, on the same bridge_closure scenario."""
    eager = _case("bridge_closure", "ch", "eager", scale=0.05)
    coalesce = _case("bridge_closure", "ch", "coalesce", scale=0.05)
    assert eager["fallback_q"] == 0
    assert coalesce["fallback_q"] > 0
    assert coalesce["stale_ms"] > 0.0


def test_repair_beats_eager_rebuild():
    """The acceptance gate of the repair policy: on both presets, at city
    scale, repair absorbs every burst exactly (the parity probe runs in both
    cells) while spending less total refresh wall-clock than eager's
    rebuild-per-burst -- and any incremental re-contraction stays under 20%
    of the nodes per burst (the policy's fraction cap guarantees it)."""
    for scenario in SCENARIOS:
        eager = _case(
            scenario, "ch", "eager",
            scale=SCALE, city_scale=CITY_SCALE, parity_pairs=PARITY_PAIRS,
        )
        repair = _case(
            scenario, "ch", "repair",
            scale=SCALE, city_scale=CITY_SCALE, parity_pairs=PARITY_PAIRS,
        )
        assert repair["repairs"] >= 1, (scenario, repair)
        assert repair["refresh_ms"] < eager["refresh_ms"], (scenario, repair, eager)


def main() -> None:
    if "--trace" in sys.argv:
        # Observability artifacts for the CI job: one traced SARD run whose
        # span trace, Prometheus snapshot and markdown report land next to
        # the benchmark tables (uploaded as CI artifacts / job summary).
        outcome = run(RunSpec(
            mode="traced", out_dir=RESULTS_DIR, name="traced_run",
        ))
        assert outcome.artifacts is not None
        for kind, path in sorted(outcome.artifacts.items()):
            print(f"{kind}: {path}")
        return
    if "--smoke" in sys.argv:
        _save_grid(
            smoke_rows(), "scenarios_smoke",
            "Scenario smoke grid (policy x backend, parity-gated)",
        )
        return
    _save_grid(
        full_rows(), "scenarios",
        (
            "Dynamic-world scenario engine: oracle refresh overhead per "
            f"policy (NYC scale {CITY_SCALE}, {ALGORITHM}, "
            f"request scale {SCALE})"
        ),
    )


if __name__ == "__main__":
    main()
