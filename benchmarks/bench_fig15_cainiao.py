"""Figure 15: the five Cainiao (delivery) sweeps.

The paper repeats the vehicle, request, deadline, penalty and batch-period
sweeps on the Cainiao delivery dataset (Appendix B).  This benchmark runs the
scaled-down equivalents on the ``cainiao`` synthetic preset.
"""

from __future__ import annotations

from repro.experiments import figures

from _common import make_runner, save_figure

#: The paper omits DARM+DPRS on Cainiao (insufficient training data).
CAINIAO_ALGORITHMS = ("pruneGDP", "TicketAssign+", "RTV", "GAS", "SARD")


def test_figure15_cainiao_sweeps(benchmark):
    runner = make_runner(CAINIAO_ALGORITHMS)

    def run():
        return figures.figure15(
            algorithms=CAINIAO_ALGORITHMS, runner=runner, quick=True,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert set(results) == {
        "num_vehicles", "num_requests", "gamma", "penalty_coefficient", "batch_period",
    }
    for parameter, figure in results.items():
        save_figure(f"figure15_cainiao_{parameter}", figure)
        for row in figure.all_rows():
            assert row.dataset == "Cainiao"
            assert 0.0 <= row.service_rate <= 1.0
