"""Tests for the shareability graph data structure."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import ReproError
from repro.model.request import Request
from repro.shareability.graph import ShareabilityGraph


def _request(rid: int) -> Request:
    return Request(release_time=0.0, request_id=rid, source=0, destination=1,
                   deadline=100.0, direct_cost=10.0)


@pytest.fixture()
def paper_graph() -> ShareabilityGraph:
    """The shareability graph of Figure 1(b): triangle r1-r2-r3 plus r2-r4."""
    graph = ShareabilityGraph()
    for rid in (1, 2, 3, 4):
        graph.add_request(_request(rid))
    graph.add_edge(1, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 3)
    graph.add_edge(2, 4)
    return graph


class TestStructure:
    def test_counts(self, paper_graph: ShareabilityGraph):
        assert paper_graph.num_nodes == 4
        assert paper_graph.num_edges == 4
        assert len(paper_graph) == 4

    def test_degrees_are_shareability(self, paper_graph: ShareabilityGraph):
        assert paper_graph.degree(2) == 3
        assert paper_graph.degree(4) == 1
        assert paper_graph.degrees() == {1: 2, 2: 3, 3: 2, 4: 1}

    def test_add_request_idempotent(self, paper_graph: ShareabilityGraph):
        paper_graph.add_request(_request(1))
        assert paper_graph.num_nodes == 4
        assert paper_graph.degree(1) == 2

    def test_duplicate_edge_not_double_counted(self, paper_graph: ShareabilityGraph):
        paper_graph.add_edge(1, 2)
        assert paper_graph.num_edges == 4

    def test_self_edge_rejected(self, paper_graph: ShareabilityGraph):
        with pytest.raises(ReproError):
            paper_graph.add_edge(1, 1)

    def test_edge_requires_existing_nodes(self, paper_graph: ShareabilityGraph):
        with pytest.raises(ReproError):
            paper_graph.add_edge(1, 99)

    def test_remove_request(self, paper_graph: ShareabilityGraph):
        paper_graph.remove_request(2)
        assert paper_graph.num_nodes == 3
        assert paper_graph.num_edges == 1
        assert paper_graph.degree(4) == 0
        paper_graph.remove_request(2)  # idempotent

    def test_unknown_node_queries_raise(self, paper_graph: ShareabilityGraph):
        with pytest.raises(ReproError):
            paper_graph.degree(99)
        with pytest.raises(ReproError):
            paper_graph.neighbors(99)
        with pytest.raises(ReproError):
            paper_graph.request(99)


class TestQueries:
    def test_neighbors_and_has_edge(self, paper_graph: ShareabilityGraph):
        assert paper_graph.neighbors(2) == {1, 3, 4}
        assert paper_graph.has_edge(1, 3)
        assert not paper_graph.has_edge(1, 4)

    def test_is_clique(self, paper_graph: ShareabilityGraph):
        assert paper_graph.is_clique({1, 2, 3})
        assert paper_graph.is_clique({2, 4})
        assert not paper_graph.is_clique({1, 2, 4})
        assert paper_graph.is_clique({1})
        assert paper_graph.is_clique(set())

    def test_common_neighbors(self, paper_graph: ShareabilityGraph):
        assert paper_graph.common_neighbors({1, 3}) == {2}
        assert paper_graph.common_neighbors({1, 4}) == {2}
        assert paper_graph.common_neighbors({1, 2, 3}) == set()

    def test_edges_listed_once(self, paper_graph: ShareabilityGraph):
        edges = list(paper_graph.edges())
        assert len(edges) == 4
        assert all(u < v for u, v in edges)

    def test_degree_sum_equals_twice_edges(self, paper_graph: ShareabilityGraph):
        assert sum(paper_graph.degrees().values()) == 2 * paper_graph.num_edges

    def test_subgraph(self, paper_graph: ShareabilityGraph):
        sub = paper_graph.subgraph({1, 2, 4})
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert sub.has_edge(1, 2) and sub.has_edge(2, 4)
        # The original graph is untouched.
        assert paper_graph.num_edges == 4

    def test_copy_is_independent(self, paper_graph: ShareabilityGraph):
        clone = paper_graph.copy()
        clone.remove_request(2)
        assert paper_graph.num_nodes == 4
        assert clone.num_nodes == 3

    def test_connected_components(self, paper_graph: ShareabilityGraph):
        assert paper_graph.connected_components() == [{1, 2, 3, 4}]
        paper_graph.add_request(_request(9))
        components = paper_graph.connected_components()
        assert {9} in components
        assert len(components) == 2

    def test_networkx_export(self, paper_graph: ShareabilityGraph):
        graph = paper_graph.to_networkx()
        assert isinstance(graph, nx.Graph)
        assert graph.number_of_edges() == 4
        assert nx.is_connected(graph)

    def test_memory_estimate_grows_with_edges(self):
        small = ShareabilityGraph()
        small.add_request(_request(1))
        large = ShareabilityGraph()
        for rid in range(10):
            large.add_request(_request(rid))
        for rid in range(1, 10):
            large.add_edge(0, rid)
        assert large.estimated_memory_bytes() > small.estimated_memory_bytes()
