"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.insertion.linear_insertion import best_insertion
from repro.model.request import Request
from repro.model.schedule import Schedule
from repro.model.vehicle import RouteState
from repro.network.generators import grid_city
from repro.network.grid_index import GridIndex
from repro.network.shortest_path import DistanceOracle
from repro.shareability.cliques import clique_partition_upper_bound, greedy_clique_partition
from repro.shareability.graph import ShareabilityGraph
from repro.shareability.loss import residual_shareability_loss, shareability_loss

# A single deterministic city shared by every property test (module scope keeps
# hypothesis example generation fast).
_CITY = grid_city(6, 6, block_length=100.0, speed=10.0, perturbation=0.0, seed=0)
_ORACLE = DistanceOracle(_CITY)
_NODES = list(_CITY.nodes())

node_ids = st.sampled_from(_NODES)


def _request(rid: int, source: int, destination: int, release: float, gamma: float) -> Request:
    return Request.create(
        request_id=rid, source=source, destination=destination,
        release_time=release, direct_cost=_ORACLE.cost(source, destination),
        gamma=gamma, max_wait=180.0,
    )


request_strategy = st.builds(
    _request,
    rid=st.integers(min_value=1, max_value=10_000),
    source=node_ids,
    destination=node_ids,
    release=st.floats(min_value=0.0, max_value=60.0),
    gamma=st.floats(min_value=1.1, max_value=2.5),
).filter(lambda r: r.source != r.destination)


class TestShortestPathProperties:
    @given(source=node_ids, middle=node_ids, target=node_ids)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, source, middle, target):
        direct = _ORACLE.cost(source, target)
        detour = _ORACLE.cost(source, middle) + _ORACLE.cost(middle, target)
        assert direct <= detour + 1e-9

    @given(source=node_ids, target=node_ids)
    @settings(max_examples=40, deadline=None)
    def test_cost_non_negative_and_zero_on_diagonal(self, source, target):
        cost = _ORACLE.cost(source, target)
        assert cost >= 0.0
        if source == target:
            assert cost == 0.0


class TestScheduleProperties:
    @given(request=request_strategy, origin=node_ids)
    @settings(max_examples=60, deadline=None)
    def test_direct_schedule_costs_deadhead_plus_trip(self, request, origin):
        schedule = Schedule.direct(request)
        cost = schedule.travel_cost(_ORACLE, origin)
        expected = _ORACLE.cost(origin, request.source) + request.direct_cost
        assert cost == pytest.approx(expected)

    @given(request=request_strategy)
    @settings(max_examples=60, deadline=None)
    def test_feasible_evaluation_has_monotone_arrivals(self, request):
        schedule = Schedule.direct(request)
        evaluation = schedule.evaluate(
            _ORACLE, request.source, request.release_time, capacity=4
        )
        if evaluation.feasible:
            arrivals = evaluation.arrival_times
            assert all(a <= b + 1e-9 for a, b in zip(arrivals, arrivals[1:]))
            assert arrivals[-1] <= request.deadline + 1e-6

    @given(first=request_strategy, second=request_strategy)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_insertion_preserves_structure(self, first, second):
        if first.request_id == second.request_id:
            return
        route = RouteState(
            vehicle_id=0, origin=first.source, departure_time=first.release_time,
            schedule=Schedule.direct(first), capacity=4, onboard=0,
        )
        outcome = best_insertion(route, second, _ORACLE)
        if not outcome.feasible:
            return
        schedule = outcome.schedule
        assert schedule.satisfies_order()
        assert schedule.request_ids() == {first.request_id, second.request_id}
        evaluation = schedule.evaluate(
            _ORACLE, route.origin, route.departure_time, capacity=4
        )
        assert evaluation.feasible
        assert outcome.delta_cost >= -1e-9


class TestGridIndexProperties:
    @given(
        points=st.lists(
            st.tuples(st.floats(min_value=0, max_value=500),
                      st.floats(min_value=0, max_value=500)),
            min_size=1, max_size=60,
        ),
        query=st.tuples(st.floats(min_value=0, max_value=500),
                        st.floats(min_value=0, max_value=500),
                        st.floats(min_value=0, max_value=300)),
    )
    @settings(max_examples=50, deadline=None)
    def test_radius_query_equals_brute_force(self, points, query):
        index = GridIndex((0, 0, 500, 500), cells_per_axis=7)
        for key, (x, y) in enumerate(points):
            index.insert(key, x, y)
        qx, qy, radius = query
        # Compare with the same squared-distance predicate the index documents
        # (avoids spurious mismatches from subnormal-float underflow).
        expected = {
            key for key, (x, y) in enumerate(points)
            if (x - qx) ** 2 + (y - qy) ** 2 <= radius * radius
        }
        assert set(index.query_radius(qx, qy, radius)) == expected


def _graph_from_edge_bools(num_nodes: int, edge_bits: list[bool]) -> ShareabilityGraph:
    graph = ShareabilityGraph()
    for rid in range(num_nodes):
        graph.add_request(Request(release_time=0.0, request_id=rid, source=0,
                                  destination=1, deadline=10.0, direct_cost=1.0))
    index = 0
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if index < len(edge_bits) and edge_bits[index]:
                graph.add_edge(u, v)
            index += 1
    return graph


graph_strategy = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(st.booleans(), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2),
    )
).map(lambda pair: _graph_from_edge_bools(*pair))


class TestShareabilityGraphProperties:
    @given(graph=graph_strategy)
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edge_count(self, graph):
        assert sum(graph.degrees().values()) == 2 * graph.num_edges

    @given(graph=graph_strategy)
    @settings(max_examples=60, deadline=None)
    def test_greedy_partition_is_a_partition_of_cliques(self, graph):
        partition = greedy_clique_partition(graph, max_clique_size=3)
        covered = sorted(rid for clique in partition for rid in clique)
        assert covered == sorted(graph.request_ids())
        assert all(graph.is_clique(clique) for clique in partition)
        assert all(1 <= len(clique) <= 3 for clique in partition)

    @given(graph=graph_strategy)
    @settings(max_examples=60, deadline=None)
    def test_equation6_bound_is_at_most_n(self, graph):
        bound = clique_partition_upper_bound(graph.num_nodes, graph.num_edges)
        assert 0 <= bound <= graph.num_nodes

    @given(graph=graph_strategy, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_loss_bounds(self, graph, data):
        nodes = sorted(graph.request_ids())
        group = data.draw(st.lists(st.sampled_from(nodes), min_size=1,
                                   max_size=min(3, len(nodes)), unique=True))
        if len(group) > 1 and not graph.is_clique(group):
            return
        full = shareability_loss(graph, group)
        residual = residual_shareability_loss(graph, group)
        assert residual <= full + 1e-9
        assert full <= graph.num_nodes
        assert residual >= -1.0
