"""Tests for vehicle state, movement and schedule assignment."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ScheduleError
from repro.model.schedule import Schedule
from repro.model.vehicle import Vehicle


class TestRouteState:
    def test_idle_route_state(self):
        vehicle = Vehicle(vehicle_id=1, location=3, capacity=4)
        state = vehicle.route_state(current_time=25.0)
        assert state.origin == 3
        assert state.departure_time == 25.0
        assert state.capacity == 4
        assert state.onboard == 0
        assert state.min_insert_position == 0
        assert state.free_seats == 4

    def test_in_transit_route_state_commits_first_stop(self, make_line_request, line_oracle):
        vehicle = Vehicle(vehicle_id=1, location=0, capacity=3)
        request = make_line_request(1, 2, 4)
        vehicle.assign_schedule(Schedule.direct(request), [request], current_time=0.0)
        # Start driving toward the pick-up but do not reach it yet.
        vehicle.advance_to(5.0, line_oracle)
        state = vehicle.route_state(current_time=5.0)
        assert state.min_insert_position == 1
        assert state.origin == 0
        assert len(state.schedule) == 2


class TestAssignment:
    def test_assign_registers_requests(self, make_line_request):
        vehicle = Vehicle(vehicle_id=1, location=0)
        request = make_line_request(1, 1, 3)
        vehicle.assign_schedule(Schedule.direct(request), [request], current_time=2.0)
        assert vehicle.assigned_request_ids == {1}
        assert not vehicle.is_idle

    def test_assign_must_cover_new_requests(self, make_line_request):
        vehicle = Vehicle(vehicle_id=1, location=0)
        request = make_line_request(1, 1, 3)
        with pytest.raises(ScheduleError):
            vehicle.assign_schedule(Schedule.empty(), [request], current_time=0.0)

    def test_assign_cannot_drop_committed_stop_mid_leg(self, make_line_request, line_oracle):
        vehicle = Vehicle(vehicle_id=1, location=0)
        first = make_line_request(1, 2, 4)
        vehicle.assign_schedule(Schedule.direct(first), [first], current_time=0.0)
        vehicle.advance_to(5.0, line_oracle)
        second = make_line_request(2, 1, 3)
        reordered = Schedule.direct(second).with_insertion(first, 1, 2)
        with pytest.raises(ScheduleError):
            vehicle.assign_schedule(reordered, [second], current_time=5.0)


class TestMovement:
    def test_advance_completes_trip(self, make_line_request, line_oracle):
        vehicle = Vehicle(vehicle_id=1, location=0, capacity=3)
        request = make_line_request(1, 1, 3, release_time=0.0)
        vehicle.assign_schedule(Schedule.direct(request), [request], current_time=0.0)
        completed = vehicle.advance_to(100.0, line_oracle)
        assert [r.request_id for r, _ in completed] == [1]
        assert vehicle.is_idle
        assert vehicle.location == 3
        assert vehicle.onboard == 0
        # 10 s to reach node 1 plus 20 s to node 3.
        assert vehicle.total_travel_time == pytest.approx(30.0)

    def test_partial_advance_keeps_leg_in_progress(self, make_line_request, line_oracle):
        vehicle = Vehicle(vehicle_id=1, location=0, capacity=3)
        request = make_line_request(1, 3, 4)
        vehicle.assign_schedule(Schedule.direct(request), [request], current_time=0.0)
        completed = vehicle.advance_to(10.0, line_oracle)
        assert completed == []
        assert vehicle.location == 0
        assert not vehicle.is_idle
        # Finishing later processes the pick-up and drop-off.
        vehicle.advance_to(200.0, line_oracle)
        assert vehicle.location == 4
        assert vehicle.is_idle

    def test_pickup_increases_onboard(self, make_line_request, line_oracle):
        vehicle = Vehicle(vehicle_id=1, location=0, capacity=3)
        request = make_line_request(1, 0, 4, riders=2)
        vehicle.assign_schedule(Schedule.direct(request), [request], current_time=0.0)
        vehicle.advance_to(5.0, line_oracle)
        assert vehicle.onboard == 2
        vehicle.advance_to(100.0, line_oracle)
        assert vehicle.onboard == 0

    def test_waits_for_release_before_pickup(self, make_line_request, line_oracle):
        vehicle = Vehicle(vehicle_id=1, location=0, capacity=3)
        request = make_line_request(1, 1, 2, release_time=60.0)
        vehicle.assign_schedule(Schedule.direct(request), [request], current_time=0.0)
        vehicle.advance_to(30.0, line_oracle)
        # Vehicle has reached neither stop because the pick-up waits for t=60.
        assert vehicle.onboard == 0
        completed = vehicle.advance_to(100.0, line_oracle)
        assert completed and completed[0][1] == pytest.approx(70.0)

    def test_next_event_time(self, make_line_request, line_oracle):
        vehicle = Vehicle(vehicle_id=1, location=0, capacity=3)
        assert math.isinf(vehicle.next_event_time(line_oracle))
        request = make_line_request(1, 2, 3)
        vehicle.assign_schedule(Schedule.direct(request), [request], current_time=0.0)
        assert vehicle.next_event_time(line_oracle) == pytest.approx(20.0)

    def test_advance_is_idempotent_when_idle(self, line_oracle):
        vehicle = Vehicle(vehicle_id=1, location=2)
        vehicle.advance_to(50.0, line_oracle)
        vehicle.advance_to(100.0, line_oracle)
        assert vehicle.total_travel_time == 0.0
        assert vehicle.location == 2

    def test_memory_estimate_positive(self, make_line_request):
        vehicle = Vehicle(vehicle_id=1, location=0)
        assert vehicle.estimated_memory_bytes() > 0
