"""Tests for the synthetic road-network generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import WorkloadError
from repro.network.generators import (
    CITY_PRESETS,
    grid_city,
    make_city,
    ring_radial_city,
)


class TestGridCity:
    def test_size_and_positions(self):
        city = grid_city(4, 5, block_length=100.0, perturbation=0.0, seed=0)
        assert city.num_nodes == 20
        assert city.position(0) == (0.0, 0.0)
        assert city.position(19) == (4 * 100.0, 3 * 100.0)

    def test_strongly_connected(self):
        city = grid_city(6, 6, perturbation=0.2, seed=3)
        graph = city.to_networkx()
        assert nx.is_strongly_connected(graph)

    def test_edge_costs_positive(self):
        city = grid_city(5, 5, perturbation=0.4, seed=7)
        assert all(cost > 0 for _, _, cost in city.edges())

    def test_no_perturbation_gives_uniform_costs(self):
        city = grid_city(4, 4, block_length=200.0, speed=10.0, perturbation=0.0, seed=0)
        costs = {round(cost, 6) for _, _, cost in city.edges()}
        assert costs == {20.0}

    def test_expressways_add_edges(self):
        base = grid_city(10, 10, perturbation=0.0, seed=5, express_fraction=0.0)
        express = grid_city(10, 10, perturbation=0.0, seed=5, express_fraction=0.2)
        assert express.num_edges > base.num_edges

    def test_deterministic_for_seed(self):
        first = grid_city(5, 5, perturbation=0.3, seed=11)
        second = grid_city(5, 5, perturbation=0.3, seed=11)
        assert sorted(first.edges()) == sorted(second.edges())

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            grid_city(1, 5)
        with pytest.raises(WorkloadError):
            grid_city(5, 5, perturbation=1.5)
        with pytest.raises(WorkloadError):
            grid_city(5, 5, speed=0.0)


class TestRingRadialCity:
    def test_node_count(self):
        city = ring_radial_city(3, 8)
        assert city.num_nodes == 1 + 3 * 8

    def test_strongly_connected(self):
        city = ring_radial_city(2, 6, seed=2)
        assert nx.is_strongly_connected(city.to_networkx())

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ring_radial_city(0, 6)
        with pytest.raises(WorkloadError):
            ring_radial_city(3, 2)


class TestMakeCity:
    def test_presets_exist(self):
        assert {"chd", "nyc", "cainiao", "tiny"} <= set(CITY_PRESETS)

    def test_nyc_smaller_than_chd(self):
        nyc = make_city("nyc", scale=0.5)
        chd = make_city("chd", scale=0.5)
        assert nyc.num_nodes < chd.num_nodes

    def test_scale_changes_size(self):
        small = make_city("tiny", scale=1.0)
        large = make_city("tiny", scale=2.0)
        assert large.num_nodes > small.num_nodes

    def test_unknown_preset(self):
        with pytest.raises(WorkloadError):
            make_city("atlantis")

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            make_city("nyc", scale=0.0)

    def test_accepts_preset_object(self):
        preset = CITY_PRESETS["tiny"]
        city = make_city(preset)
        assert city.num_nodes == preset.rows * preset.cols
