"""Mid-simulation network mutation: every backend stays exact.

The dynamic-world scenario engine reweights and removes edges while oracles
hold preprocessed structures.  The load-bearing properties:

* after every mutation burst, a rebuilt (or fallback-serving) oracle of any
  backend agrees with a fresh Dijkstra over the mutated network, and
* closed edges never appear in returned paths.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import UnreachableError
from repro.network.generators import grid_city
from repro.network.shortest_path import DistanceOracle

ALL_BACKENDS = ("dijkstra", "alt", "ch", "hub_label")


def _city(seed: int = 3):
    return grid_city(
        7, 7, block_length=150.0, perturbation=0.2, express_fraction=0.04, seed=seed
    )


def _reference_costs(network, pairs):
    reference = DistanceOracle(network, cache_size=0, backend="dijkstra")
    return {pair: reference.cost(*pair) for pair in pairs}


def _assert_parity(oracle, network, pairs):
    expected = _reference_costs(network, pairs)
    for (u, v), want in expected.items():
        got = oracle.cost(u, v)
        if math.isinf(want):
            assert math.isinf(got), (u, v)
        else:
            assert got == pytest.approx(want, abs=1e-6), (u, v)


def _mutation_bursts(network, rng):
    """Three bursts: reweight, close, reopen -- returns closed-edge sets."""
    edges = sorted(network.edges())
    # Burst 1: slow a random edge subset down 3x.
    reweighted = rng.sample(edges, 12)
    for u, v, cost in reweighted:
        network.add_edge(u, v, cost * 3.0)
    yield set()
    # Burst 2: close a handful of safe edges (keep degrees positive).
    closed: set[tuple[int, int]] = set()
    for u, v, cost in rng.sample(edges, 20):
        if len(closed) == 6:
            break
        if not network.has_edge(u, v):
            continue
        if network.out_degree(u) <= 1 or sum(1 for _ in network.predecessors(v)) <= 1:
            continue
        network.remove_edge(u, v)
        closed.add((u, v))
    assert closed
    yield closed
    # Burst 3: reopen everything at the original cost.
    for u, v in sorted(closed):
        original = next(c for (a, b, c) in edges if (a, b) == (u, v))
        network.add_edge(u, v, original)
    yield set()


class TestMutationParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_rebuild_matches_fresh_dijkstra_after_each_burst(self, backend):
        network = _city()
        rng = random.Random(11)
        nodes = list(network.nodes())
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(60)]
        oracle = DistanceOracle(network, backend=backend)
        _assert_parity(oracle, network, pairs)
        for closed in _mutation_bursts(network, rng):
            assert oracle.is_stale
            oracle.rebuild()
            assert not oracle.is_stale and not oracle.serving_fallback
            _assert_parity(oracle, network, pairs)
            for u, v in pairs[:20]:
                try:
                    path = oracle.path(u, v)
                except UnreachableError:
                    continue
                legs = list(zip(path, path[1:]))
                assert all(network.has_edge(a, b) for a, b in legs)
                assert not closed.intersection(legs)

    @pytest.mark.parametrize("backend", ("ch", "hub_label"))
    def test_fallback_is_exact_without_rebuild(self, backend):
        """The Dijkstra fallback serves the dirty window exactly while the
        preprocessed structures are stale."""
        network = _city(seed=9)
        rng = random.Random(4)
        nodes = list(network.nodes())
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(40)]
        oracle = DistanceOracle(network, backend=backend)
        for (u, v) in pairs[:5]:
            oracle.cost(u, v)  # force preprocessing on the pristine network
        for closed in _mutation_bursts(network, rng):
            oracle.enable_fallback()
            assert oracle.serving_fallback and not oracle.is_stale
            _assert_parity(oracle, network, pairs)
            for u, v in pairs[:10]:
                try:
                    path = oracle.path(u, v)
                except UnreachableError:
                    continue
                legs = list(zip(path, path[1:]))
                assert all(network.has_edge(a, b) for a, b in legs)
                assert not closed.intersection(legs)
        assert oracle.stats.fallback_queries > 0
        oracle.rebuild()
        assert not oracle.serving_fallback
        _assert_parity(oracle, network, pairs)

    def test_stale_oracle_detects_mutation(self):
        network = _city(seed=5)
        oracle = DistanceOracle(network, backend="ch")
        assert not oracle.is_stale
        u, v, cost = next(iter(network.edges()))
        network.add_edge(u, v, cost * 2.0)
        assert oracle.is_stale

    def test_rebuild_reports_wall_clock(self):
        network = _city(seed=6)
        oracle = DistanceOracle(network, backend="hub_label")
        oracle.cost(0, 5)
        u, v, cost = next(iter(network.edges()))
        network.add_edge(u, v, cost * 2.0)
        seconds = oracle.rebuild()
        assert seconds > 0.0
