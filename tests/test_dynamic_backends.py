"""Mid-simulation network mutation: every backend stays exact.

The dynamic-world scenario engine reweights and removes edges while oracles
hold preprocessed structures.  The load-bearing properties:

* after every mutation burst, a rebuilt (or fallback-serving) oracle of any
  backend agrees with a fresh Dijkstra over the mutated network, and
* closed edges never appear in returned paths.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import UnreachableError
from repro.network.generators import grid_city
from repro.network.shortest_path import DistanceOracle

ALL_BACKENDS = ("dijkstra", "alt", "ch", "hub_label")


def _city(seed: int = 3):
    return grid_city(
        7, 7, block_length=150.0, perturbation=0.2, express_fraction=0.04, seed=seed
    )


def _reference_costs(network, pairs):
    reference = DistanceOracle(network, cache_size=0, backend="dijkstra")
    return {pair: reference.cost(*pair) for pair in pairs}


def _assert_parity(oracle, network, pairs):
    expected = _reference_costs(network, pairs)
    for (u, v), want in expected.items():
        got = oracle.cost(u, v)
        if math.isinf(want):
            assert math.isinf(got), (u, v)
        else:
            assert got == pytest.approx(want, abs=1e-6), (u, v)


def _mutation_bursts(network, rng):
    """Three bursts: reweight, close, reopen -- returns closed-edge sets."""
    edges = sorted(network.edges())
    # Burst 1: slow a random edge subset down 3x.
    reweighted = rng.sample(edges, 12)
    for u, v, cost in reweighted:
        network.add_edge(u, v, cost * 3.0)
    yield set()
    # Burst 2: close a handful of safe edges (keep degrees positive).
    closed: set[tuple[int, int]] = set()
    for u, v, cost in rng.sample(edges, 20):
        if len(closed) == 6:
            break
        if not network.has_edge(u, v):
            continue
        if network.out_degree(u) <= 1 or sum(1 for _ in network.predecessors(v)) <= 1:
            continue
        network.remove_edge(u, v)
        closed.add((u, v))
    assert closed
    yield closed
    # Burst 3: reopen everything at the original cost.
    for u, v in sorted(closed):
        original = next(c for (a, b, c) in edges if (a, b) == (u, v))
        network.add_edge(u, v, original)
    yield set()


class TestMutationParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_rebuild_matches_fresh_dijkstra_after_each_burst(self, backend):
        network = _city()
        rng = random.Random(11)
        nodes = list(network.nodes())
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(60)]
        oracle = DistanceOracle(network, backend=backend)
        _assert_parity(oracle, network, pairs)
        for closed in _mutation_bursts(network, rng):
            assert oracle.is_stale
            oracle.rebuild()
            assert not oracle.is_stale and not oracle.serving_fallback
            _assert_parity(oracle, network, pairs)
            for u, v in pairs[:20]:
                try:
                    path = oracle.path(u, v)
                except UnreachableError:
                    continue
                legs = list(zip(path, path[1:]))
                assert all(network.has_edge(a, b) for a, b in legs)
                assert not closed.intersection(legs)

    @pytest.mark.parametrize("backend", ("ch", "hub_label"))
    def test_fallback_is_exact_without_rebuild(self, backend):
        """The Dijkstra fallback serves the dirty window exactly while the
        preprocessed structures are stale."""
        network = _city(seed=9)
        rng = random.Random(4)
        nodes = list(network.nodes())
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(40)]
        oracle = DistanceOracle(network, backend=backend)
        for (u, v) in pairs[:5]:
            oracle.cost(u, v)  # force preprocessing on the pristine network
        for closed in _mutation_bursts(network, rng):
            oracle.enable_fallback()
            assert oracle.serving_fallback and not oracle.is_stale
            _assert_parity(oracle, network, pairs)
            for u, v in pairs[:10]:
                try:
                    path = oracle.path(u, v)
                except UnreachableError:
                    continue
                legs = list(zip(path, path[1:]))
                assert all(network.has_edge(a, b) for a, b in legs)
                assert not closed.intersection(legs)
        assert oracle.stats.fallback_queries > 0
        oracle.rebuild()
        assert not oracle.serving_fallback
        _assert_parity(oracle, network, pairs)

    def test_stale_oracle_detects_mutation(self):
        network = _city(seed=5)
        oracle = DistanceOracle(network, backend="ch")
        assert not oracle.is_stale
        u, v, cost = next(iter(network.edges()))
        network.add_edge(u, v, cost * 2.0)
        assert oracle.is_stale

    def test_rebuild_reports_wall_clock(self):
        network = _city(seed=6)
        oracle = DistanceOracle(network, backend="hub_label")
        oracle.cost(0, 5)
        u, v, cost = next(iter(network.edges()))
        network.add_edge(u, v, cost * 2.0)
        seconds = oracle.rebuild()
        assert seconds > 0.0


class TestIncrementalRepair:
    """DistanceOracle.repair: exact parity with fresh builds, cheaper."""

    @pytest.mark.parametrize("backend", ("ch", "hub_label"))
    def test_repair_matches_fresh_build_after_each_burst(self, backend):
        """Acceptance: after every mutation burst the repaired oracle agrees
        with a *freshly built* oracle of the same backend on every sampled
        pair, and its paths avoid closed edges."""
        network = _city()
        rng = random.Random(11)
        nodes = list(network.nodes())
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(60)]
        oracle = DistanceOracle(network, backend=backend)
        _assert_parity(oracle, network, pairs)
        for closed in _mutation_bursts(network, rng):
            assert oracle.is_stale
            report = oracle.repair()
            assert report.mode == "repaired"
            assert not oracle.is_stale and not oracle.serving_fallback
            fresh = DistanceOracle(network, cache_size=0, backend=backend)
            for u, v in pairs:
                got = oracle.cost(u, v)
                want = fresh.cost(u, v)
                if math.isinf(want):
                    assert math.isinf(got), (u, v)
                else:
                    assert got == pytest.approx(want, abs=1e-9), (u, v)
            for u, v in pairs[:20]:
                try:
                    path = oracle.path(u, v)
                except UnreachableError:
                    continue
                legs = list(zip(path, path[1:]))
                assert all(network.has_edge(a, b) for a, b in legs)
                assert not closed.intersection(legs)

    def test_repair_recontracts_a_fraction_of_nodes(self):
        """Repairs are local: a weight *decrease* tightens no recorded
        witness, so only the mutated edge's endpoints (plus the cascade of
        their changed shortcuts) re-contract -- a handful of nodes, not the
        hierarchy.  An *increase* additionally re-contracts the recorded
        witness dependents, still a strict subset of the nodes."""
        network = _city(seed=21)
        oracle = DistanceOracle(network, backend="ch")
        oracle.cost(0, 5)
        edges = sorted(network.edges())
        u, v, cost = edges[7]
        network.add_edge(u, v, cost * 0.5)
        report = oracle.repair()
        assert report.mode == "repaired"
        assert 0 < report.nodes_recontracted <= 8
        network.add_edge(u, v, cost * 4.0)
        report = oracle.repair()
        assert report.mode == "repaired"
        assert report.nodes_recontracted < network.num_nodes

    def test_repair_fraction_cap_falls_back_to_rebuild(self):
        network = _city(seed=12)
        oracle = DistanceOracle(network, backend="ch")
        oracle.cost(0, 5)
        for u, v, cost in sorted(network.edges())[:30]:
            network.add_edge(u, v, cost * 2.0)
        report = oracle.repair(max_affected_fraction=0.02)
        assert report.mode == "rebuilt" and report.full_rebuild
        assert not oracle.is_stale

    def test_repair_snapshot_swap_on_exact_reversion(self):
        """A burst that exceeds the cap rebuilds but keeps the pre-burst
        state; reverting the mutation then swaps it back without any
        preprocessing."""
        network = _city(seed=13)
        rng = random.Random(3)
        nodes = list(network.nodes())
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(30)]
        oracle = DistanceOracle(network, backend="ch")
        before = {pair: oracle.cost(*pair) for pair in pairs}
        scaled = sorted(network.edges())[:40]
        for u, v, cost in scaled:
            network.add_edge(u, v, cost * 3.0)
        assert oracle.repair(max_affected_fraction=0.05).mode == "rebuilt"
        for u, v, cost in scaled:
            network.add_edge(u, v, cost)
        report = oracle.repair()
        assert report.mode == "snapshot"
        assert report.nodes_recontracted == 0
        for pair, want in before.items():
            assert oracle.cost(*pair) == want

    def test_repair_noop_when_nothing_changed(self):
        network = _city(seed=14)
        oracle = DistanceOracle(network, backend="ch")
        oracle.cost(0, 5)
        assert oracle.repair().mode == "noop"

    def test_repair_rebuilds_when_journal_does_not_cover(self):
        """Node mutations invalidate the edge journal: repair must detect
        the uncovered history and rebuild."""
        network = _city(seed=15)
        oracle = DistanceOracle(network, backend="ch")
        oracle.cost(0, 5)
        u, v, cost = next(iter(network.edges()))
        network.add_edge(u, v, cost * 2.0)
        x, y = network.position(u)
        network.add_node(u, x, y)  # node move: journal reset
        report = oracle.repair()
        assert report.mode == "rebuilt"
        assert not oracle.is_stale

    def test_repair_on_graph_search_backend_rebuilds(self):
        """dijkstra/alt hold no hierarchy; repair degenerates to the (cheap)
        CSR rebuild."""
        network = _city(seed=16)
        oracle = DistanceOracle(network, backend="dijkstra")
        oracle.cost(0, 5)
        u, v, cost = next(iter(network.edges()))
        network.add_edge(u, v, cost * 2.0)
        report = oracle.repair()
        assert report.mode == "rebuilt"
        assert not oracle.is_stale

    def test_repair_with_explicit_edge_list(self):
        network = _city(seed=17)
        oracle = DistanceOracle(network, backend="ch")
        oracle.cost(0, 5)
        u, v, cost = next(iter(network.edges()))
        network.add_edge(u, v, cost * 2.0)
        report = oracle.repair([(u, v)])
        assert report.mode == "repaired"
        want = DistanceOracle(network, cache_size=0).cost(u, v)
        assert oracle.cost(u, v) == pytest.approx(want, abs=1e-9)

    def test_repair_decrease_below_recorded_shortcut(self):
        """Regression: a base edge dropping below a recorded parallel
        shortcut must not be clobbered by the shortcut's clean replay (the
        decrease-pruned seeding deliberately leaves the shortcut's owner
        clean; the replayed assignment is weight-guarded instead)."""
        from repro.network.road_network import RoadNetwork

        network = RoadNetwork()
        for node in range(8):
            network.add_node(node, float(node), 0.0)
        # 0 -> 1 -> 2 costs 8; the direct edge 0 -> 2 costs 10, so node 1
        # (cheap, degree 2) contracts first and records the shortcut
        # (0, 2, 8.0); the high-degree endpoints contract last.
        network.add_edge(0, 1, 4.0, bidirectional=True)
        network.add_edge(1, 2, 4.0, bidirectional=True)
        network.add_edge(0, 2, 10.0, bidirectional=True)
        for extra in range(3, 8):
            network.add_edge(0, extra, 20.0 + extra, bidirectional=True)
            network.add_edge(2, extra, 30.0 + extra, bidirectional=True)
        oracle = DistanceOracle(network, cache_size=0, backend="ch")
        assert oracle.cost(0, 2) == 8.0
        network.add_edge(0, 2, 4.0)  # below the recorded shortcut weight
        report = oracle.repair()
        assert report.mode == "repaired"
        assert oracle.cost(0, 2) == 4.0

    def test_repair_node_addition_never_swaps_a_snapshot(self):
        """Regression: the snapshot signature covers the node set, so adding
        a node (edge content unchanged) must rebuild, not swap in routing
        data for the wrong node set."""
        network = _city(seed=22)
        oracle = DistanceOracle(network, backend="ch")
        oracle.cost(0, 5)
        scaled = sorted(network.edges())[:40]
        for u, v, cost in scaled:
            network.add_edge(u, v, cost * 3.0)
        assert oracle.repair(max_affected_fraction=0.05).mode == "rebuilt"
        for u, v, cost in scaled:
            network.add_edge(u, v, cost)  # content now matches a snapshot...
        new_node = max(network.nodes()) + 1
        network.add_node(new_node, 0.0, 0.0)  # ...but the node set does not
        report = oracle.repair()
        assert report.mode == "rebuilt"
        assert not oracle.is_stale
        assert oracle.cost(0, 5) > 0.0
        assert oracle.cost(new_node, new_node) == 0.0

    def test_journal_reports_edge_mutations(self):
        network = _city(seed=18)
        mark = network.mutation_count
        u, v, cost = next(iter(network.edges()))
        network.add_edge(u, v, cost * 2.0)
        network.remove_edge(u, v)
        network.add_edge(u, v, cost)
        assert network.edge_mutations_since(mark) == [(u, v)] * 3
        assert network.edge_mutations_since(mark + 2) == [(u, v)]
        assert network.edge_mutations_since(network.mutation_count) == []
        assert network.edge_mutations_since(network.mutation_count + 1) is None
        x, y = network.position(u)
        network.add_node(u, x, y)
        assert network.edge_mutations_since(mark) is None
        assert network.edge_mutations_since(network.mutation_count) == []
