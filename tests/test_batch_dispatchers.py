"""Tests for the batch-mode baselines GAS and RTV."""

from __future__ import annotations

import pytest

from repro.dispatch.gas import GASDispatcher
from repro.dispatch.rtv import RTVDispatcher
from repro.model.vehicle import Vehicle


@pytest.fixture()
def small_scene(make_request):
    """Two nearby shareable requests, one distant request, two vehicles."""
    requests = [
        make_request(1, 0, 4, release_time=5.0),
        make_request(2, 1, 5, release_time=6.0),
        make_request(3, 30, 34, release_time=6.0),
    ]
    vehicles = [Vehicle(vehicle_id=0, location=0), Vehicle(vehicle_id=1, location=31)]
    return requests, vehicles


def _assert_valid(result, context):
    seen: set[int] = set()
    for assignment in result.assignments:
        vehicle = context.vehicle_by_id(assignment.vehicle_id)
        state = vehicle.route_state(context.current_time)
        evaluation = assignment.schedule.evaluate(
            context.oracle, state.origin, state.departure_time,
            capacity=vehicle.capacity, initial_load=vehicle.onboard,
        )
        assert evaluation.feasible
        ids = assignment.new_request_ids
        assert not (ids & seen), "a request was assigned to two vehicles"
        seen |= ids


class TestGAS:
    def test_serves_shareable_pair_together(self, small_scene, make_context):
        requests, vehicles = small_scene
        context = make_context(vehicles, requests, current_time=7.0)
        result = GASDispatcher().dispatch(context)
        _assert_valid(result, context)
        assert {1, 2, 3} <= result.assigned_request_ids
        by_vehicle = {a.vehicle_id: a.new_request_ids for a in result.assignments}
        assert {1, 2} <= by_vehicle[0]
        assert 3 in by_vehicle[1]

    def test_profit_greedy_prefers_longer_trips(self, make_request, make_context):
        # One vehicle, two mutually unshareable requests: GAS keeps the one
        # with the larger direct cost (its "profit").
        short = make_request(1, 0, 2, release_time=5.0, max_wait=20.0, gamma=1.2)
        long = make_request(2, 12, 17, release_time=5.0, max_wait=20.0, gamma=1.2)
        vehicles = [Vehicle(vehicle_id=0, location=6, capacity=1)]
        context = make_context(vehicles, [short, long], current_time=6.0,
                               sim_config=None)
        result = GASDispatcher().dispatch(context)
        if result.assignments:
            chosen = result.assignments[0].new_request_ids
            assert 2 in chosen or 1 in chosen

    def test_reset_and_memory(self, small_scene, make_context):
        requests, vehicles = small_scene
        dispatcher = GASDispatcher()
        dispatcher.dispatch(make_context(vehicles, requests, current_time=7.0))
        assert dispatcher.estimated_memory_bytes() > 0
        dispatcher.reset()
        assert dispatcher.grouping_stats.groups_generated == 0

    def test_deterministic_given_seed(self, small_scene, make_context):
        requests, vehicles = small_scene
        first = GASDispatcher(seed=5).dispatch(make_context(vehicles, requests, current_time=7.0))
        vehicles2 = [Vehicle(vehicle_id=0, location=0), Vehicle(vehicle_id=1, location=31)]
        second = GASDispatcher(seed=5).dispatch(make_context(vehicles2, requests, current_time=7.0))
        assert first.assigned_request_ids == second.assigned_request_ids


class TestRTV:
    def test_ilp_assignment_is_consistent(self, small_scene, make_context):
        requests, vehicles = small_scene
        context = make_context(vehicles, requests, current_time=7.0)
        dispatcher = RTVDispatcher()
        result = dispatcher.dispatch(context)
        _assert_valid(result, context)
        assert {1, 2, 3} <= result.assigned_request_ids
        assert dispatcher.ilp_solved + dispatcher.ilp_fallbacks >= 1
        # At most one trip per vehicle.
        vehicle_ids = [a.vehicle_id for a in result.assignments]
        assert len(vehicle_ids) == len(set(vehicle_ids))

    def test_greedy_fallback_used_when_instance_too_large(self, small_scene, make_context):
        requests, vehicles = small_scene
        context = make_context(vehicles, requests, current_time=7.0)
        dispatcher = RTVDispatcher(max_variables=0)
        result = dispatcher.dispatch(context)
        _assert_valid(result, context)
        assert dispatcher.ilp_fallbacks == 1
        assert result.assigned_request_ids

    def test_empty_pending_is_a_noop(self, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=0)]
        context = make_context(vehicles, [], current_time=5.0)
        result = RTVDispatcher().dispatch(context)
        assert result.assignments == []

    def test_memory_estimate_tracks_variables(self, small_scene, make_context):
        requests, vehicles = small_scene
        dispatcher = RTVDispatcher()
        dispatcher.dispatch(make_context(vehicles, requests, current_time=7.0))
        assert dispatcher.estimated_memory_bytes() > 0
        dispatcher.reset()
        assert dispatcher.ilp_solved == 0

    def test_greedy_fallback_respects_uniqueness(self, make_request, make_context):
        requests = [make_request(i, 0, 4, release_time=5.0) for i in (1, 2, 3, 4)]
        vehicles = [Vehicle(vehicle_id=0, location=0), Vehicle(vehicle_id=1, location=1)]
        context = make_context(vehicles, requests, current_time=6.0)
        result = RTVDispatcher(max_variables=0).dispatch(context)
        _assert_valid(result, context)
