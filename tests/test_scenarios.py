"""Tests for the dynamic-world scenario engine.

Covers the event vocabulary, the timeline, the refresh policies, the
generator's surge modulation, the scenario presets and the full simulator
integration (including the acceptance property: cost parity with a fresh
Dijkstra and zero closed edges in paths after every event of a
``bridge_closure`` run on the preprocessed backends).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.config import DemandSurge, ScenarioConfig, SimulationConfig, WorkloadConfig
from repro.dispatch import make_dispatcher
from repro.exceptions import ConfigurationError, ScenarioError
from repro.model.request import Request
from repro.model.vehicle import Vehicle
from repro.network.generators import grid_city
from repro.network.grid_index import GridIndex
from repro.network.shortest_path import DistanceOracle
from repro.scenarios import (
    CancelRequests,
    CloseEdges,
    ReopenEdges,
    RestoreEdges,
    ScaleEdges,
    ScenarioTimeline,
    VehicleShiftEnd,
    VehicleShiftStart,
    WorldView,
    corridor_edges,
    make_refresh_policy,
    make_scenario,
    make_scenario_workload,
    traffic_wave,
    zone_edges,
)
from repro.simulation.engine import Simulator
from repro.simulation.events import EventKind
from repro.simulation.metrics import MetricsCollector
from repro.workloads.presets import make_workload
from repro.workloads.requests_gen import RequestGenerator


@pytest.fixture()
def city():
    return grid_city(
        6, 6, block_length=150.0, perturbation=0.15, express_fraction=0.03, seed=2
    )


def _world(network, **overrides) -> WorldView:
    defaults = dict(
        now=10.0,
        network=network,
        oracle=None,
        vehicles=[],
        vehicles_by_id={},
        pending={},
        vehicle_index=GridIndex.for_network(network),
        metrics=MetricsCollector(),
    )
    defaults.update(overrides)
    return WorldView(**defaults)


class TestWorldEvents:
    def test_scale_edges_multiplies_costs(self, city):
        (u, v, cost) = next(iter(city.edges()))
        world = _world(city)
        mutations = ScaleEdges(5.0, [(u, v)], 2.5, bidirectional=False).apply(world)
        assert mutations == 1
        assert city.edge_cost(u, v) == pytest.approx(cost * 2.5)

    def test_traffic_wave_restores_free_flow_exactly(self, city):
        edges = zone_edges(city, *city.position(0), 400.0)
        before = {e: city.edge_cost(*e) for e in edges}
        slowdown, recovery = traffic_wave(edges, 1.8, 10.0, 50.0)
        world = _world(city)
        slowdown.apply(world)
        assert city.edge_cost(*edges[0]) == pytest.approx(before[edges[0]] * 1.8)
        recovery.apply(world)
        # Exact bit-for-bit restore (the recovery replays the remembered
        # costs; an inverse multiplication would leave ulp drift on the
        # shared network run after run).
        for e, cost in before.items():
            assert city.edge_cost(*e) == cost

    def test_close_and_reopen_round_trips(self, city):
        corridor = corridor_edges(city)
        costs = {e: city.edge_cost(*e) for e in corridor}
        closure = CloseEdges(5.0, corridor)
        world = _world(city)
        removed = closure.apply(world)
        assert removed == len(closure.closed) > 0
        for u, v, _ in closure.closed:
            assert not city.has_edge(u, v)
        ReopenEdges(9.0, closure).apply(world)
        for e, cost in costs.items():
            assert city.edge_cost(*e) == pytest.approx(cost)

    def test_duplicate_directed_pairs_scale_once_and_round_trip(self, city):
        """Listing both (u, v) and (v, u) with bidirectional=True must not
        scale an edge twice -- and its restoration must round-trip."""
        u, v = next((u, v) for u, v, _ in city.edges())
        original_uv = city.edge_cost(u, v)
        original_vu = city.edge_cost(v, u)
        scale = ScaleEdges(1.0, [(u, v), (v, u)], 2.0, bidirectional=True)
        world = _world(city)
        scale.apply(world)
        assert city.edge_cost(u, v) == 2.0 * original_uv
        assert city.edge_cost(v, u) == 2.0 * original_vu
        RestoreEdges(2.0, scale).apply(world)
        assert city.edge_cost(u, v) == original_uv
        assert city.edge_cost(v, u) == original_vu

    def test_wave_interleaved_with_closure_round_trips(self, city):
        """A wave that recedes while its edges are closed must not bake the
        slowdown into the reopening: the parked original cost wins over the
        closure-time (scaled) one, so the shared network round-trips."""
        u, v = next((u, v) for u, v, _ in city.edges())
        original = city.edge_cost(u, v)
        scale = ScaleEdges(1.0, [(u, v)], 2.0, bidirectional=False)
        close = CloseEdges(2.0, [(u, v)], bidirectional=False)
        world = _world(city)
        scale.apply(world)
        close.apply(world)
        RestoreEdges(3.0, scale).apply(world)  # edge closed: restoration parks
        assert world.cost_restores == {(u, v): original}
        ReopenEdges(4.0, close).apply(world)
        assert city.edge_cost(u, v) == original
        assert world.cost_restores == {}

    def test_closure_skips_edges_that_would_dead_end(self, city):
        # Close everything around node 0 -- the guard must leave the node
        # with at least one outgoing and one incoming edge.
        neighbors = [v for v, _ in city.neighbors(0)]
        CloseEdges(1.0, [(0, v) for v in neighbors]).apply(_world(city))
        assert city.out_degree(0) >= 1
        assert sum(1 for _ in city.predecessors(0)) >= 1

    def test_invalid_events_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaleEdges(1.0, [], 0.0)
        with pytest.raises(ConfigurationError):
            ScaleEdges(-1.0, [], 2.0)
        with pytest.raises(ConfigurationError):
            ScaleEdges(1.0, [], math.nan)
        with pytest.raises(ConfigurationError):
            ReopenEdges(1.0, None)
        with pytest.raises(ConfigurationError):
            ReopenEdges(1.0, CloseEdges(5.0, []))
        with pytest.raises(ConfigurationError):
            traffic_wave([], 2.0, 30.0, 20.0)

    def test_cancellation_only_touches_pending(self, city):
        pending = {
            7: Request.create(
                request_id=7, source=0, destination=5, release_time=0.0,
                direct_cost=100.0, gamma=1.5, max_wait=300.0,
            )
        }
        metrics = MetricsCollector()
        world = _world(city, pending=pending, metrics=metrics)
        CancelRequests(5.0, [7, 8, 9]).apply(world)
        assert pending == {}
        assert metrics.cancelled_requests == 1

    def test_shift_start_and_end(self, city):
        vehicles: list[Vehicle] = []
        by_id: dict[int, Vehicle] = {}
        index = GridIndex.for_network(city)
        world = _world(city, vehicles=vehicles, vehicles_by_id=by_id,
                       vehicle_index=index, now=42.0)
        VehicleShiftStart(42.0, [(100, 0, 4), (101, 5, 2)]).apply(world)
        assert {v.vehicle_id for v in vehicles} == {100, 101}
        assert by_id[100]._clock == 42.0
        assert 100 in index and 101 in index
        VehicleShiftEnd(60.0, [100, 999]).apply(world)  # unknown id ignored
        assert not by_id[100].on_shift and by_id[101].on_shift
        assert 100 not in index and 101 in index
        with pytest.raises(ScenarioError):
            VehicleShiftStart(61.0, [(101, 0, 4)]).apply(world)

    def test_shift_start_rejects_unknown_node(self, city):
        with pytest.raises(ScenarioError):
            VehicleShiftStart(1.0, [(200, 99_999, 4)]).apply(_world(city))


class TestTimeline:
    def test_orders_and_pops_due_events(self):
        events = [ScaleEdges(30.0, [], 2.0), ScaleEdges(10.0, [], 2.0),
                  ScaleEdges(20.0, [], 2.0)]
        timeline = ScenarioTimeline(events)
        assert len(timeline) == 3
        assert timeline.has_due(10.0)
        due = timeline.pop_due(20.0)
        assert [e.time for e in due] == [10.0, 20.0]
        assert timeline.remaining == 1
        assert not timeline.has_due(25.0)
        assert [e.time for e in timeline.pop_due(math.inf)] == [30.0]

    def test_scenario_builds_fresh_events_per_run(self, city):
        scenario = make_scenario("bridge_closure", city, horizon=100.0)
        first = scenario.make_timeline()
        second = scenario.make_timeline()
        assert first.pop_due(math.inf)[0] is not second.pop_due(math.inf)[0]


class TestRefreshPolicies:
    def _mutated(self, city, backend="ch"):
        oracle = DistanceOracle(city, backend=backend)
        oracle.cost(0, 7)
        u, v, cost = next(iter(city.edges()))
        city.add_edge(u, v, cost * 2.0)
        return oracle

    def test_eager_rebuilds_per_burst(self, city):
        policy = make_refresh_policy("eager")
        oracle = self._mutated(city)
        policy.on_mutations(oracle, 10.0, 1)
        assert policy.stats.rebuilds == 1 and not oracle.is_stale
        assert not oracle.serving_fallback

    def test_deferred_respects_batch_budget(self, city):
        policy = make_refresh_policy(
            "deferred", config=ScenarioConfig(
                refresh_policy="deferred", max_stale_batches=2,
                fallback_query_budget=10_000,
            )
        )
        oracle = self._mutated(city)
        policy.on_mutations(oracle, 10.0, 1)
        assert oracle.serving_fallback and policy.stats.rebuilds == 0
        policy.on_batch_start(oracle, 13.0, False)
        assert policy.stats.rebuilds == 0
        policy.on_batch_start(oracle, 16.0, False)
        assert policy.stats.rebuilds == 1 and not oracle.serving_fallback
        assert policy.stats.stale_batches == 2
        assert policy.stats.stale_seconds > 0.0

    def test_deferred_respects_query_budget(self, city):
        policy = make_refresh_policy(
            "deferred", config=ScenarioConfig(
                refresh_policy="deferred", max_stale_batches=99,
                fallback_query_budget=5,
            )
        )
        oracle = self._mutated(city)
        policy.on_mutations(oracle, 10.0, 1)
        rng = random.Random(0)
        nodes = list(city.nodes())
        for _ in range(10):
            oracle.cost(*rng.sample(nodes, 2))
        policy.on_batch_start(oracle, 13.0, False)
        assert policy.stats.rebuilds == 1

    def test_coalesce_waits_for_quiet_boundary(self, city):
        policy = make_refresh_policy("coalesce")
        oracle = self._mutated(city)
        policy.on_mutations(oracle, 10.0, 1)
        policy.on_batch_start(oracle, 13.0, True)  # more events due: hold
        assert policy.stats.rebuilds == 0 and oracle.serving_fallback
        policy.on_mutations(oracle, 13.0, 1)
        policy.on_batch_start(oracle, 16.0, False)  # quiet: rebuild once
        assert policy.stats.rebuilds == 1 and not oracle.serving_fallback
        assert policy.stats.mutation_bursts == 2

    def test_finalize_clears_any_staleness(self, city):
        policy = make_refresh_policy("coalesce")
        oracle = self._mutated(city)
        policy.on_mutations(oracle, 10.0, 1)
        policy.finalize(oracle)
        assert policy.stats.rebuilds == 1
        assert not oracle.serving_fallback and not oracle.is_stale

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_refresh_policy("sometimes")

    def test_repair_absorbs_burst_without_rebuild(self, city):
        policy = make_refresh_policy("repair")
        oracle = self._mutated(city)
        policy.on_mutations(oracle, 10.0, 1)
        assert policy.stats.repairs == 1 and policy.stats.rebuilds == 0
        assert not oracle.is_stale and not oracle.serving_fallback
        assert policy.stats.nodes_recontracted > 0

    def test_repair_repeated_bursts_on_same_edges(self, city):
        """Bursts that keep toggling the same edges settle into snapshot
        swaps: after the first up/down cycle both network states are cached
        and no further re-contraction happens."""
        policy = make_refresh_policy("repair")
        oracle = DistanceOracle(city, backend="ch")
        oracle.cost(0, 7)
        u, v, cost = next(iter(city.edges()))
        reference_costs = {}
        for round_no in range(3):
            for factor in (2.0, 1.0):
                city.add_edge(u, v, cost * factor)
                policy.on_mutations(oracle, 10.0 * round_no, 1)
                assert not oracle.is_stale
                got = oracle.cost(u, v)
                want = DistanceOracle(city, cache_size=0).cost(u, v)
                assert got == pytest.approx(want, abs=1e-9)
                key = factor
                reference_costs.setdefault(key, got)
                assert got == reference_costs[key]
        assert policy.stats.repairs == 6 and policy.stats.rebuilds == 0
        assert policy.stats.snapshot_hits >= 4

    def test_repair_close_then_reopen_before_any_query(self, city):
        """A burst that closes and reopens an edge before any query leaves
        the content unchanged: the repair recognises the reversion without
        re-contracting anything."""
        policy = make_refresh_policy("repair")
        oracle = DistanceOracle(city, backend="ch")
        oracle.cost(0, 7)
        u, v, cost = next(iter(city.edges()))
        city.remove_edge(u, v)
        city.add_edge(u, v, cost)
        assert oracle.is_stale
        policy.on_mutations(oracle, 10.0, 2)
        assert not oracle.is_stale
        assert policy.stats.repairs == 1
        assert policy.stats.nodes_recontracted == 0
        assert policy.stats.snapshot_hits == 1
        assert oracle.cost(u, v) == pytest.approx(
            DistanceOracle(city, cache_size=0).cost(u, v), abs=1e-9
        )

    def test_repair_falls_back_beyond_fraction_cap(self, city):
        """A burst whose affected set exceeds the configurable fraction cap
        is absorbed by a full rebuild instead."""
        policy = make_refresh_policy(
            "repair", config=ScenarioConfig(
                refresh_policy="repair", repair_max_fraction=0.01,
            )
        )
        oracle = DistanceOracle(city, backend="ch")
        oracle.cost(0, 7)
        for u, v, cost in list(city.edges())[:20]:
            city.add_edge(u, v, cost * 3.0)
        policy.on_mutations(oracle, 10.0, 20)
        assert policy.stats.rebuilds == 1 and policy.stats.repairs == 0
        assert not oracle.is_stale

    def test_repair_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            make_refresh_policy(
                "repair",
                config=ScenarioConfig(refresh_policy="repair", repair_max_fraction=0.0),
            )


class TestSurgeModulation:
    def _generator(self, city, num_requests=400, seed=5):
        workload = WorkloadConfig(
            num_requests=num_requests, num_vehicles=10, horizon=1000.0, seed=seed
        )
        simulation = SimulationConfig()
        oracle = DistanceOracle(city)
        return RequestGenerator(city, oracle, workload, simulation), workload

    def test_surge_concentrates_arrivals(self, city):
        generator, workload = self._generator(city)
        surge = DemandSurge(start=200.0, end=400.0, rate_multiplier=4.0)
        requests = generator.generate(surges=(surge,))
        assert len(requests) == workload.num_requests
        in_window = sum(1 for r in requests if 200.0 <= r.release_time < 400.0)
        # 20% of the horizon at 4x intensity ~ 50% of the mass.
        assert in_window / len(requests) > 0.35

    def test_outbound_surge_anchors_origins(self, city):
        center = 0
        cx, cy = city.position(center)
        generator, _ = self._generator(city)
        surge = DemandSurge(
            start=0.0, end=1000.0, rate_multiplier=1.0, center=center,
            attraction=1.0, direction="outbound",
        )
        anchored = generator.generate(surges=(surge,))
        distances = [
            math.hypot(*(a - b for a, b in zip(city.position(r.source), (cx, cy))))
            for r in anchored
        ]
        baseline_gen, _ = self._generator(city)
        baseline = [
            math.hypot(*(a - b for a, b in zip(city.position(r.source), (cx, cy))))
            for r in baseline_gen.generate()
        ]
        assert sorted(distances)[len(distances) // 2] < sorted(baseline)[len(baseline) // 2]

    def test_surge_validation(self):
        with pytest.raises(ConfigurationError):
            DemandSurge(start=10.0, end=10.0)
        with pytest.raises(ConfigurationError):
            DemandSurge(start=0.0, end=10.0, rate_multiplier=-1.0)
        with pytest.raises(ConfigurationError):
            DemandSurge(start=0.0, end=10.0, attraction=1.5)
        with pytest.raises(ConfigurationError):
            DemandSurge(start=0.0, end=10.0, direction="sideways")

    def test_no_surges_reproduces_baseline(self, city):
        first, _ = self._generator(city, num_requests=60)
        second, _ = self._generator(city, num_requests=60)
        with_empty = first.generate(surges=())
        without = second.generate()
        assert [(r.source, r.destination, r.release_time) for r in with_empty] == [
            (r.source, r.destination, r.release_time) for r in without
        ]


class TestScenarioPresets:
    def test_all_presets_build(self, city):
        for name in ("rush_hour", "bridge_closure", "stadium_surge"):
            scenario = make_scenario(name, city, horizon=600.0, num_requests=100)
            assert scenario.name == name
            timeline = scenario.make_timeline()
            assert len(timeline) > 0
            assert all(0 <= e.time <= 600.0 for e in timeline.pop_due(math.inf))

    def test_unknown_preset_rejected(self, city):
        with pytest.raises(ConfigurationError):
            make_scenario("earthquake", city, horizon=600.0)
        with pytest.raises(ConfigurationError):
            make_scenario("rush_hour", city, horizon=-5.0)

    def test_make_scenario_workload_bundles_surges(self):
        workload, scenario = make_scenario_workload(
            "nyc", "stadium_surge", scale=0.05, city_scale=0.35
        )
        assert scenario.name == "stadium_surge"
        assert scenario.surges
        assert workload.num_requests > 0
        # The surge anchors outbound demand: the workload must have been
        # generated over the same network the scenario derives its zones
        # from.
        assert scenario.surges[0].center in workload.network


class TestSimulatorIntegration:
    def _run(self, scenario_name, backend, policy, on_applied=None, scale=0.06):
        workload, scenario = make_scenario_workload(
            "nyc", scenario_name, scale=scale, city_scale=0.35,
            simulation_overrides={"routing_backend": backend},
        )
        simulator = Simulator(
            network=workload.network,
            oracle=workload.fresh_oracle(),
            vehicles=workload.fresh_vehicles(),
            requests=list(workload.requests),
            dispatcher=make_dispatcher("pruneGDP"),
            config=workload.simulation_config,
            timeline=scenario.make_timeline(on_applied=on_applied),
            refresh_policy=policy,
        )
        return simulator.run()

    @pytest.mark.parametrize("backend", ("ch", "hub_label"))
    @pytest.mark.parametrize("policy", ("eager", "deferred", "coalesce", "repair"))
    def test_bridge_closure_parity_and_no_closed_edges(self, backend, policy):
        """Acceptance: after every event the oracle matches a fresh Dijkstra
        and no returned path crosses a closed (absent) edge."""
        rng = random.Random(13)
        checks = {"bursts": 0}

        def probe(world):
            checks["bursts"] += 1
            network = world.network
            nodes = list(network.nodes())
            pairs = [tuple(rng.sample(nodes, 2)) for _ in range(15)]
            reference = DistanceOracle(network, cache_size=0, backend="dijkstra")
            for u, v in pairs:
                want = reference.cost(u, v)
                got = world.oracle.cost(u, v)
                if math.isinf(want):
                    assert math.isinf(got)
                    continue
                assert got == pytest.approx(want, abs=1e-6)
                path = world.oracle.path(u, v)
                assert all(network.has_edge(a, b) for a, b in zip(path, path[1:]))

        result = self._run("bridge_closure", backend, policy, on_applied=probe)
        assert checks["bursts"] == 2  # closure + reopening
        assert result.metrics.scenario_events == 2
        if policy == "repair":
            # Every burst is absorbed immediately -- incrementally, via a
            # snapshot swap, or (past the fraction cap at this tiny city
            # scale) a rebuild -- so queries never run stale or fall back.
            assert result.metrics.oracle_repairs >= 1
            assert (
                result.metrics.oracle_repairs + result.metrics.oracle_rebuilds == 2
            )
            assert result.metrics.oracle_fallback_queries == 0
            assert result.metrics.oracle_stale_seconds == 0.0
        else:
            assert result.metrics.oracle_rebuilds >= 1
        if policy in ("deferred", "coalesce"):
            assert result.metrics.oracle_fallback_queries > 0
            assert result.metrics.oracle_stale_seconds > 0.0

    def test_stadium_surge_full_machinery(self):
        result = self._run("stadium_surge", "hub_label", "coalesce", scale=0.08)
        events = result.events
        assert events.count(EventKind.VEHICLE_SHIFT_STARTED) == 6
        assert events.count(EventKind.VEHICLE_SHIFT_ENDED) == 6
        assert events.count(EventKind.EDGES_RESCALED) == 2
        assert result.metrics.scenario_events >= 4
        assert result.metrics.oracle_rebuilds >= 1

    def test_off_shift_vehicles_get_no_new_assignments(self):
        """After a shift end, the retired vehicle appears in no further
        assignment events."""
        workload = make_workload(
            "nyc", scale=0.05, city_scale=0.35,
        )
        retired = workload.fresh_vehicles()[0].vehicle_id
        horizon = workload.workload_config.effective_horizon
        timeline = ScenarioTimeline([VehicleShiftEnd(horizon * 0.3, [retired])])
        simulator = Simulator(
            network=workload.network,
            oracle=workload.fresh_oracle(),
            vehicles=workload.fresh_vehicles(),
            requests=list(workload.requests),
            dispatcher=make_dispatcher("pruneGDP"),
            config=workload.simulation_config,
            timeline=timeline,
        )
        result = simulator.run()
        shift_end_time = next(
            e.time for e in result.events
            if e.kind is EventKind.VEHICLE_SHIFT_ENDED
        )
        late_assignments = [
            e for e in result.events
            if e.kind is EventKind.REQUEST_ASSIGNED
            and e.other == retired and e.time > shift_end_time
        ]
        assert late_assignments == []

    def test_network_restored_across_runs(self):
        workload, scenario = make_scenario_workload(
            "nyc", "bridge_closure", scale=0.05, city_scale=0.35,
        )
        edges_before = workload.network.num_edges
        mutations_before = None
        for _ in range(2):
            simulator = Simulator(
                network=workload.network,
                oracle=workload.fresh_oracle(),
                vehicles=workload.fresh_vehicles(),
                requests=list(workload.requests),
                dispatcher=make_dispatcher("pruneGDP"),
                config=workload.simulation_config,
                timeline=scenario.make_timeline(),
            )
            simulator.run()
            assert workload.network.num_edges == edges_before
            if mutations_before is not None:
                assert workload.network.mutation_count > mutations_before
            mutations_before = workload.network.mutation_count
