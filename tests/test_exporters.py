"""Golden-file tests for the observability exporters.

The exporters are pure functions of their inputs, and the tracer accepts an
injected clock, so a fully deterministic trace + registry can be rendered
and compared byte-for-byte against committed golden files.  To regenerate
after an intentional format change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_exporters.py

then review the diff of ``tests/golden/`` like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.observability import (
    TRACE_SCHEMA_VERSION,
    MetricRegistry,
    SpanTracer,
    aggregate_spans,
    markdown_report,
    prometheus_text,
    span_to_dict,
    spans_to_jsonl,
    write_run_artifacts,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


class StepClock:
    """Deterministic clock advancing half a second per call."""

    def __init__(self, step: float = 0.5) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def build_fixture() -> tuple[SpanTracer, MetricRegistry, dict]:
    """One small deterministic run: a traced batch plus a filled registry."""
    tracer = SpanTracer(capacity=16, clock=StepClock())
    tracer.set_sim_time(30.0)
    with tracer.span("dispatch.batch", batch=0, algorithm="SARD") as batch:
        with tracer.span("sard.sync_graph", stale=2):
            pass
        with tracer.span("sard.rounds", rounds=3) as rounds:
            rounds.tag("groups", 5)
        batch.tag("assignments", 4)
    tracer.event("oracle.rebuild", duration=1.5, policy="eager", backend="ch")

    registry = MetricRegistry()
    registry.counter("requests.total", "Requests released").inc(12)
    registry.counter("requests.assigned", "Requests assigned").inc(9)
    registry.gauge("sim.service_rate", "Fraction of requests assigned").set(0.75)
    histogram = registry.histogram(
        "dispatch.batch_seconds",
        "Per-batch dispatch latency",
        buckets=(0.001, 0.01, 0.1),
    )
    for value in (0.0005, 0.004, 0.05, 0.2):
        histogram.observe(value)

    summary = {
        "service_rate": 0.75,
        "unified_cost": 1234.5,
        "total_requests": 12.0,
        "dispatch_seconds": 2.5,
    }
    return tracer, registry, summary


def check_golden(name: str, produced: str) -> None:
    """Compare against (or, with REGEN_GOLDEN=1, rewrite) a golden file."""
    path = GOLDEN_DIR / name
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(produced, encoding="utf-8")
    assert produced == path.read_text(encoding="utf-8"), (
        f"{name} drifted from the golden file; regenerate with REGEN_GOLDEN=1 "
        f"if the change is intentional"
    )


# --------------------------------------------------------------------- #
# golden files
# --------------------------------------------------------------------- #
def test_jsonl_matches_golden():
    tracer, _, _ = build_fixture()
    check_golden("trace.jsonl", spans_to_jsonl(tracer.records))


def test_prometheus_matches_golden():
    _, registry, _ = build_fixture()
    check_golden("metrics.prom", prometheus_text(registry))


def test_markdown_report_matches_golden():
    tracer, registry, summary = build_fixture()
    report = markdown_report(
        "Golden traced run",
        summary=summary,
        tracer=tracer,
        registry=registry,
        highlight_keys=("service_rate", "dispatch_seconds"),
    )
    check_golden("report.md", report)


# --------------------------------------------------------------------- #
# schema / structural properties
# --------------------------------------------------------------------- #
def test_jsonl_lines_are_versioned_objects():
    tracer, _, _ = build_fixture()
    lines = spans_to_jsonl(tracer.records).splitlines()
    assert len(lines) == len(tracer.records)
    for line in lines:
        payload = json.loads(line)
        assert payload["v"] == TRACE_SCHEMA_VERSION
        assert {"span_id", "parent_id", "name", "depth", "start_s", "duration_s"} <= set(payload)


def test_jsonl_empty_trace_is_empty_string():
    assert spans_to_jsonl(()) == ""


def test_span_to_dict_rounds_timings():
    tracer, _, _ = build_fixture()
    record = tracer.records[0]
    payload = span_to_dict(record)
    assert payload["start_s"] == round(record.start, 9)
    assert payload["duration_s"] == round(record.duration, 9)


def test_prometheus_histogram_series_shape():
    _, registry, _ = build_fixture()
    text = prometheus_text(registry)
    assert 'repro_dispatch_batch_seconds_bucket{le="+Inf"} 4' in text
    assert "repro_dispatch_batch_seconds_count 4" in text
    assert "# TYPE repro_requests_total counter" in text
    assert "# TYPE repro_sim_service_rate gauge" in text


def test_prometheus_custom_prefix_and_empty_registry():
    registry = MetricRegistry()
    assert prometheus_text(registry) == ""
    registry.counter("one").inc()
    assert prometheus_text(registry, prefix="custom").startswith("# TYPE custom_one")


def test_aggregate_spans_orders_by_total_duration():
    tracer, _, _ = build_fixture()
    aggregates = aggregate_spans(tracer.records)
    assert [agg.name for agg in aggregates[:2]] == ["dispatch.batch", "oracle.rebuild"]
    by_name = {agg.name: agg for agg in aggregates}
    assert by_name["dispatch.batch"].count == 1
    assert by_name["oracle.rebuild"].total_s == 1.5
    assert by_name["sard.rounds"].mean_s == by_name["sard.rounds"].total_s


def test_write_run_artifacts_emits_all_three_formats(tmp_path):
    tracer, registry, summary = build_fixture()
    paths = write_run_artifacts(
        tmp_path, "run", title="Artifacts", summary=summary,
        tracer=tracer, registry=registry,
    )
    assert set(paths) == {"trace_jsonl", "prometheus", "report_md"}
    for path in paths.values():
        assert path.exists() and path.stat().st_size > 0
    assert paths["trace_jsonl"].name == "run.trace.jsonl"
    assert paths["prometheus"].name == "run.prom"
    assert paths["report_md"].name == "run.report.md"


def test_write_run_artifacts_report_only(tmp_path):
    paths = write_run_artifacts(tmp_path, "bare", summary={"k": 1.0})
    assert set(paths) == {"report_md"}
    assert "| k | 1 |" in paths["report_md"].read_text()


def test_markdown_report_sections_are_optional():
    report = markdown_report("Title only")
    assert report == "# Title only\n"
    with_summary = markdown_report("T", summary={"a": 1.5})
    assert "Full metric summary" in with_summary
    assert "Stage timings" not in with_summary


@pytest.mark.parametrize(
    ("dotted", "expected"),
    [
        ("dispatch.batch_seconds", "dispatch_batch_seconds"),
        ("9lives", "_9lives"),
        ("a-b c", "a_b_c"),
    ],
)
def test_prometheus_name_sanitisation(dotted, expected):
    from repro.observability.export import _prom_name

    assert _prom_name(dotted) == expected
