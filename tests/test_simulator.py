"""End-to-end tests of the batch simulator and its metric accounting."""

from __future__ import annotations

import math

import pytest

from repro.config import SimulationConfig
from repro.dispatch import make_dispatcher
from repro.dispatch.base import DispatchResult, Dispatcher
from repro.exceptions import DispatchError
from repro.model.vehicle import Vehicle
from repro.network.shortest_path import DistanceOracle
from repro.simulation.engine import Simulator
from repro.simulation.events import EventKind
from repro.simulation.metrics import MetricsCollector, unified_cost


class _RejectEverything(Dispatcher):
    name = "reject-all"

    def dispatch(self, context):
        return DispatchResult(rejected=list(context.pending))


@pytest.fixture()
def small_sim_config() -> SimulationConfig:
    return SimulationConfig(gamma=1.6, max_wait=120.0, capacity=3, batch_period=5.0,
                            penalty_coefficient=10.0)


@pytest.fixture()
def small_world(grid_network, small_sim_config, make_request):
    """Six requests in two waves plus three vehicles."""
    requests = [
        make_request(1, 0, 4, release_time=1.0, gamma=1.6),
        make_request(2, 1, 5, release_time=2.0, gamma=1.6),
        make_request(3, 30, 34, release_time=3.0, gamma=1.6),
        make_request(4, 6, 10, release_time=11.0, gamma=1.6),
        make_request(5, 12, 16, release_time=12.0, gamma=1.6),
        make_request(6, 35, 31, release_time=13.0, gamma=1.6),
    ]
    vehicles = [
        Vehicle(vehicle_id=0, location=0),
        Vehicle(vehicle_id=1, location=31),
        Vehicle(vehicle_id=2, location=14),
    ]
    return grid_network, vehicles, requests


def _run(world, dispatcher, config):
    network, vehicles, requests = world
    simulator = Simulator(
        network=network,
        oracle=DistanceOracle(network),
        vehicles=[Vehicle(vehicle_id=v.vehicle_id, location=v.location,
                          capacity=v.capacity) for v in vehicles],
        requests=list(requests),
        dispatcher=dispatcher,
        config=config,
    )
    return simulator.run()


class TestAccounting:
    @pytest.mark.parametrize("algorithm", ["pruneGDP", "SARD", "GAS", "RTV"])
    def test_metrics_are_consistent(self, small_world, small_sim_config, algorithm):
        result = _run(small_world, make_dispatcher(algorithm), small_sim_config)
        metrics = result.metrics
        assert metrics.total_requests == 6
        assert 0 <= metrics.assigned_requests <= 6
        assert metrics.assigned_requests + metrics.expired_requests + \
            metrics.rejected_requests <= 6 + 6  # rejected and expired are disjoint
        assert metrics.completed_requests == metrics.assigned_requests
        assert metrics.unified_cost == pytest.approx(
            metrics.total_travel_time + metrics.penalty
        )
        assert 0.0 <= metrics.service_rate <= 1.0
        assert metrics.dispatch_seconds >= 0.0
        assert metrics.num_batches >= 1

    def test_every_assigned_request_is_completed(self, small_world, small_sim_config):
        result = _run(small_world, make_dispatcher("SARD"), small_sim_config)
        assigned_events = result.events.count(EventKind.REQUEST_ASSIGNED)
        completed_events = result.events.count(EventKind.REQUEST_COMPLETED)
        assert assigned_events == completed_events == result.metrics.assigned_requests

    def test_all_requests_released(self, small_world, small_sim_config):
        result = _run(small_world, make_dispatcher("pruneGDP"), small_sim_config)
        assert result.events.count(EventKind.REQUEST_RELEASED) == 6

    def test_unserved_requests_incur_direct_cost_penalty(self, small_world, small_sim_config):
        network, vehicles, requests = small_world
        result = _run(small_world, _RejectEverything(), small_sim_config)
        expected_penalty = small_sim_config.penalty_coefficient * sum(
            r.direct_cost for r in requests
        )
        assert result.metrics.penalty == pytest.approx(expected_penalty)
        assert result.metrics.service_rate == 0.0
        assert result.metrics.total_travel_time == 0.0

    def test_unified_cost_helper_matches_engine(self, small_world, small_sim_config):
        network, vehicles, requests = small_world
        result = _run(small_world, _RejectEverything(), small_sim_config)
        assert result.unified_cost == pytest.approx(
            unified_cost(0.0, requests, small_sim_config)
        )

    def test_deterministic_across_runs(self, small_world, small_sim_config):
        first = _run(small_world, make_dispatcher("SARD"), small_sim_config)
        second = _run(small_world, make_dispatcher("SARD"), small_sim_config)
        assert first.service_rate == second.service_rate
        assert first.unified_cost == pytest.approx(second.unified_cost)

    def test_duplicate_ids_rejected(self, grid_network, small_sim_config, make_request):
        request = make_request(1, 0, 4)
        with pytest.raises(DispatchError):
            Simulator(
                network=grid_network,
                oracle=DistanceOracle(grid_network),
                vehicles=[Vehicle(vehicle_id=0, location=0), Vehicle(vehicle_id=0, location=1)],
                requests=[request],
                dispatcher=make_dispatcher("pruneGDP"),
                config=small_sim_config,
            )

    def test_summary_round_trip(self, small_world, small_sim_config):
        result = _run(small_world, make_dispatcher("pruneGDP"), small_sim_config)
        summary = result.summary()
        assert summary["total_requests"] == 6.0
        assert summary["service_rate"] == pytest.approx(result.service_rate)
        assert math.isfinite(summary["unified_cost"])


class TestMetricsCollector:
    def test_service_rate_with_no_requests(self):
        assert MetricsCollector().service_rate == 0.0

    def test_observe_memory_keeps_peak(self):
        metrics = MetricsCollector()
        metrics.observe_memory(100)
        metrics.observe_memory(50)
        assert metrics.peak_memory_bytes == 100

    def test_batch_records_accumulate_dispatch_time(self):
        from repro.simulation.metrics import BatchRecord

        metrics = MetricsCollector()
        metrics.record_batch(BatchRecord(0, 0.0, 3.0, 2, 1, 1, 0.5))
        metrics.record_batch(BatchRecord(1, 3.0, 6.0, 0, 0, 1, 0.25))
        assert metrics.num_batches == 2
        assert metrics.dispatch_seconds == pytest.approx(0.75)


class TestEventLog:
    def test_event_cap(self):
        from repro.simulation.events import Event, EventLog

        log = EventLog(max_events=2)
        for i in range(5):
            log.record(Event(float(i), EventKind.REQUEST_RELEASED, i))
        assert len(log) == 2

    def test_of_kind_filter(self):
        from repro.simulation.events import Event, EventLog

        log = EventLog()
        log.record(Event(0.0, EventKind.REQUEST_RELEASED, 1))
        log.record(Event(1.0, EventKind.REQUEST_ASSIGNED, 1, 4))
        assert len(log.of_kind(EventKind.REQUEST_RELEASED)) == 1
        assert log.count(EventKind.REQUEST_ASSIGNED) == 1
