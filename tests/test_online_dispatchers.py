"""Tests for the online baselines: pruneGDP, TicketAssign+ and DARM+DPRS."""

from __future__ import annotations

import pytest

from repro.dispatch.darm import DARMDispatcher
from repro.dispatch.prunegdp import PruneGDPDispatcher
from repro.dispatch.ticket_assign import TicketAssignDispatcher
from repro.model.vehicle import Vehicle


@pytest.fixture()
def corridor_requests(make_request):
    """Two shareable eastbound requests plus one far-away request."""
    return [
        make_request(1, 0, 4, release_time=5.0),
        make_request(2, 1, 5, release_time=6.0),
        make_request(3, 30, 34, release_time=6.0),
    ]


def _check_assignments_feasible(result, context):
    for assignment in result.assignments:
        vehicle = context.vehicle_by_id(assignment.vehicle_id)
        state = vehicle.route_state(context.current_time)
        evaluation = assignment.schedule.evaluate(
            context.oracle, state.origin, state.departure_time,
            capacity=vehicle.capacity, initial_load=vehicle.onboard,
        )
        assert evaluation.feasible


class TestPruneGDP:
    def test_assigns_to_cheapest_vehicle(self, make_request, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=0), Vehicle(vehicle_id=1, location=10)]
        request = make_request(1, 0, 4, release_time=5.0)
        context = make_context(vehicles, [request], current_time=6.0)
        result = PruneGDPDispatcher().dispatch(context)
        assert result.assigned_request_ids == {1}
        assert result.assignments[0].vehicle_id == 0
        _check_assignments_feasible(result, context)

    def test_can_pool_shareable_requests_on_one_vehicle(self, corridor_requests, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=0)]
        context = make_context(vehicles, corridor_requests[:2], current_time=7.0)
        result = PruneGDPDispatcher().dispatch(context)
        assert result.assigned_request_ids == {1, 2}
        assert len(result.assignments) == 1
        _check_assignments_feasible(result, context)

    def test_rejects_unreachable_request(self, make_request, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=35)]
        request = make_request(1, 0, 4, release_time=5.0, max_wait=10.0, gamma=1.2)
        context = make_context(vehicles, [request], current_time=6.0)
        result = PruneGDPDispatcher().dispatch(context)
        assert result.assigned_request_ids == set()
        assert [r.request_id for r in result.rejected] == [1]

    def test_retention_mode_keeps_unassigned(self, make_request, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=35)]
        request = make_request(1, 0, 4, release_time=5.0, max_wait=10.0, gamma=1.2)
        context = make_context(vehicles, [request], current_time=6.0)
        result = PruneGDPDispatcher(reject_unassigned=False).dispatch(context)
        assert result.rejected == []

    def test_memory_estimate(self, corridor_requests, make_context):
        dispatcher = PruneGDPDispatcher()
        vehicles = [Vehicle(vehicle_id=0, location=0)]
        dispatcher.dispatch(make_context(vehicles, corridor_requests, current_time=7.0))
        assert dispatcher.estimated_memory_bytes() >= 0
        dispatcher.reset()


class TestTicketAssign:
    def test_contention_resolved_by_cheapest_bid(self, make_request, make_context):
        # Two requests whose best vehicle is the same one: the closer request
        # wins the ticket in round one, the other retries.
        vehicles = [Vehicle(vehicle_id=0, location=0), Vehicle(vehicle_id=1, location=3)]
        near = make_request(1, 0, 12, release_time=5.0)
        far = make_request(2, 1, 13, release_time=5.0, gamma=2.0)
        context = make_context(vehicles, [near, far], current_time=6.0)
        dispatcher = TicketAssignDispatcher()
        result = dispatcher.dispatch(context)
        assert 1 in result.assigned_request_ids
        by_vehicle = {a.vehicle_id: a.new_request_ids for a in result.assignments}
        assert 1 in by_vehicle.get(0, set())
        _check_assignments_feasible(result, context)

    def test_contention_counter_increases(self, make_request, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=0)]
        requests = [make_request(i, 0, 12, release_time=5.0) for i in (1, 2, 3)]
        context = make_context(vehicles, requests, current_time=6.0)
        dispatcher = TicketAssignDispatcher()
        dispatcher.dispatch(context)
        assert dispatcher.contention_retries >= 1

    def test_unplaceable_requests_rejected(self, make_request, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=35)]
        request = make_request(1, 0, 4, release_time=5.0, max_wait=5.0, gamma=1.2)
        context = make_context(vehicles, [request], current_time=6.0)
        result = TicketAssignDispatcher().dispatch(context)
        assert [r.request_id for r in result.rejected] == [1]


class TestDARM:
    def test_matching_assigns_requests(self, corridor_requests, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=0), Vehicle(vehicle_id=1, location=32)]
        context = make_context(vehicles, corridor_requests, current_time=7.0)
        result = DARMDispatcher().dispatch(context)
        assert {1, 2} <= result.assigned_request_ids
        _check_assignments_feasible(result, context)

    def test_demand_table_updates(self, corridor_requests, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=0)]
        dispatcher = DARMDispatcher()
        context = make_context(vehicles, corridor_requests, current_time=7.0)
        dispatcher.dispatch(context)
        assert dispatcher.estimated_memory_bytes() > 0
        dispatcher.reset()
        assert dispatcher.repositioned == 0

    def test_repositioning_moves_idle_vehicle_and_charges_cost(self, make_request, make_context):
        # One busy area (requests around node 0) and one idle vehicle far away.
        idle = Vehicle(vehicle_id=7, location=35)
        vehicles = [Vehicle(vehicle_id=0, location=0), idle]
        requests = [make_request(i, 0, 4, release_time=5.0) for i in (1, 2, 3, 4)]
        dispatcher = DARMDispatcher(reposition_fraction=1.0, reposition_period=0.0)
        context = make_context(vehicles, requests, current_time=6.0)
        dispatcher.dispatch(context)
        assert dispatcher.repositioned >= 1
        assert idle.total_travel_time > 0
        assert idle.location != 35

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            DARMDispatcher(smoothing=0.0)
