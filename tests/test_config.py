"""Tests for configuration validation and derived properties."""

from __future__ import annotations

import math

import pytest

from repro.config import ExperimentConfig, SimulationConfig, WorkloadConfig
from repro.exceptions import ConfigurationError


class TestSimulationConfig:
    def test_defaults_match_paper_table3(self):
        config = SimulationConfig()
        assert config.gamma == 1.5
        assert config.penalty_coefficient == 10.0
        assert config.batch_period == 3.0
        assert config.capacity == 3
        assert config.alpha == 1.0

    def test_gamma_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(gamma=1.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(gamma=0.9)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(penalty_coefficient=-1.0)

    def test_non_positive_batch_period_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(batch_period=0.0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(capacity=0)

    def test_angle_threshold_bounds(self):
        SimulationConfig(angle_threshold=math.pi)
        SimulationConfig(angle_threshold=None)
        with pytest.raises(ConfigurationError):
            SimulationConfig(angle_threshold=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(angle_threshold=4.0)

    def test_group_size_limit_defaults_to_capacity(self):
        assert SimulationConfig(capacity=4).group_size_limit == 4
        assert SimulationConfig(capacity=4, max_group_size=2).group_size_limit == 2
        assert SimulationConfig(capacity=2, max_group_size=5).group_size_limit == 2

    def test_with_overrides_returns_new_object(self):
        base = SimulationConfig()
        other = base.with_overrides(gamma=2.0)
        assert other.gamma == 2.0
        assert base.gamma == 1.5
        assert other is not base

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig().with_overrides(gamma=0.5)

    def test_nan_and_infinity_rejected(self):
        """NaN passes every comparison-based range check silently; the
        explicit finiteness guard must catch it at construction."""
        for field in ("gamma", "penalty_coefficient", "batch_period", "max_wait"):
            with pytest.raises(ConfigurationError):
                SimulationConfig(**{field: math.nan})
        with pytest.raises(ConfigurationError):
            SimulationConfig(gamma=math.inf)
        with pytest.raises(ConfigurationError):
            SimulationConfig(angle_threshold=math.nan)

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(routing_backend="warp_drive")


class TestWorkloadConfig:
    def test_effective_horizon_from_arrival_rate(self):
        config = WorkloadConfig(num_requests=300, arrival_rate=1.5, horizon=999.0)
        assert config.effective_horizon == pytest.approx(200.0)

    def test_effective_horizon_falls_back_to_horizon(self):
        config = WorkloadConfig(num_requests=300, arrival_rate=0.0, horizon=999.0)
        assert config.effective_horizon == 999.0

    def test_invalid_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_requests=-1)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(horizon=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(hotspot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(mean_riders=0.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(capacity_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(arrival_rate=-1.0)

    def test_zero_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_vehicles=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_vehicles=-3)

    def test_nan_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(arrival_rate=math.nan)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(horizon=math.inf)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_hotspots=-1)

    def test_with_overrides(self):
        base = WorkloadConfig(num_requests=100)
        other = base.with_overrides(num_requests=50, name="X")
        assert other.num_requests == 50
        assert other.name == "X"
        assert base.num_requests == 100


class TestScenarioConfig:
    def test_defaults_valid(self):
        from repro.config import ScenarioConfig

        config = ScenarioConfig()
        assert config.refresh_policy == "coalesce"

    def test_invalid_fields_rejected(self):
        from repro.config import ScenarioConfig

        with pytest.raises(ConfigurationError):
            ScenarioConfig(refresh_policy="maybe")
        with pytest.raises(ConfigurationError):
            ScenarioConfig(max_stale_batches=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(fallback_query_budget=-1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(slowdown_factor=0.0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(surge_multiplier=-0.5)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(closure_start=0.8, closure_end=0.2)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(slowdown_factor=math.nan)

    def test_config_error_alias(self):
        from repro.exceptions import ConfigError

        assert ConfigError is ConfigurationError

    def test_with_overrides(self):
        from repro.config import ScenarioConfig

        base = ScenarioConfig()
        other = base.with_overrides(refresh_policy="eager")
        assert other.refresh_policy == "eager"
        assert base.refresh_policy == "coalesce"


class TestExperimentConfig:
    def test_default_algorithm_lineup(self):
        config = ExperimentConfig()
        assert "SARD" in config.algorithms
        assert "pruneGDP" in config.algorithms
        assert len(config.algorithms) == 6
