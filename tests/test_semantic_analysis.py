"""Tests for the interprocedural semantic analysis (PR 9).

Covers the call-graph builder (method/alias/re-export resolution), the
effect-inference engine (3-hop transitive propagation, seeded leaves), the
ORA/CONC/PUR semantic rules against the fixture pairs in
``tests/lint_fixtures/``, the DET003 rebinding regression, the CLI export
surface, and the live-tree acceptance gate (clean and under the 10 s
budget).
"""

from __future__ import annotations

import ast
import json
import textwrap
import time
from pathlib import Path

import pytest

from repro.analysis.callgraph import module_name_for
from repro.analysis.cli import main as lint_main
from repro.analysis.effects import (
    MUTATES_NETWORK,
    MUTATES_STATE,
    QUERIES_ORACLE,
    classify,
)
from repro.analysis.engine import analyze_project, analyze_source, attach_semantic
from repro.analysis.rules import FileContext
from repro.analysis.semantic_rules import (
    ProjectAnalysis,
    build_project,
    call_graph_dot,
    call_graph_json,
    summary_tables,
)

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).parent / "lint_fixtures"


def _ctx(path: str, source: str) -> FileContext:
    src = textwrap.dedent(source)
    return FileContext(path=path, source=src, tree=ast.parse(src))


def _project(*files: tuple[str, str]) -> ProjectAnalysis:
    project = build_project([_ctx(path, source) for path, source in files])
    assert project is not None
    return project


def _lint_fixture(name: str, virtual_path: str) -> list:
    report = analyze_source(virtual_path, (FIXTURES / name).read_text())
    attach_semantic([report])
    return report.violations


class TestModuleNames:
    def test_plain_module(self) -> None:
        assert module_name_for("src/repro/dispatch/base.py") == "repro.dispatch.base"

    def test_package_init(self) -> None:
        assert module_name_for("src/repro/network/__init__.py") == "repro.network"

    def test_out_of_tree(self) -> None:
        assert module_name_for("tests/test_foo.py") is None


class TestCallGraphResolution:
    def test_method_via_annotated_parameter(self) -> None:
        project = _project(
            (
                "src/repro/fake/mod.py",
                """
                class Helper:
                    def run(self) -> int:
                        return 1


                def caller(helper: Helper) -> int:
                    return helper.run()
                """,
            )
        )
        sites = project.graph.calls["repro.fake.mod.caller"]
        assert any("repro.fake.mod.Helper.run" in site.targets for site in sites)

    def test_self_attribute_alias(self) -> None:
        project = _project(
            (
                "src/repro/fake/pricer.py",
                """
                class Oracle:
                    def cost(self, u: int, v: int) -> float:
                        return 0.0


                class Pricer:
                    def __init__(self, oracle: Oracle) -> None:
                        self.oracle = oracle

                    def price(self) -> float:
                        return self.oracle.cost(0, 1)
                """,
            )
        )
        sites = project.graph.calls["repro.fake.pricer.Pricer.price"]
        assert any("repro.fake.pricer.Oracle.cost" in site.targets for site in sites)

    def test_re_export_chain(self) -> None:
        project = _project(
            (
                "src/repro/fake/a.py",
                """
                def source() -> int:
                    return 1
                """,
            ),
            (
                "src/repro/fake/b.py",
                """
                from repro.fake.a import source

                renamed = source
                """,
            ),
            (
                "src/repro/fake/c.py",
                """
                from repro.fake.b import renamed


                def call() -> int:
                    return renamed()
                """,
            ),
        )
        sites = project.graph.calls["repro.fake.c.call"]
        assert any("repro.fake.a.source" in site.targets for site in sites)

    def test_subclass_override_union(self) -> None:
        project = _project(
            (
                "src/repro/fake/events.py",
                """
                class Base:
                    def handle(self) -> int:
                        return 0


                class Child(Base):
                    def handle(self) -> int:
                        return 1


                def drive(event: Base) -> int:
                    return event.handle()
                """,
            )
        )
        sites = project.graph.calls["repro.fake.events.drive"]
        targets = {target for site in sites for target in site.targets}
        assert "repro.fake.events.Base.handle" in targets
        assert "repro.fake.events.Child.handle" in targets


class TestEffectPropagation:
    def test_transitive_mutator_through_three_hops(self) -> None:
        project = _project(
            (
                "src/repro/fake/hops.py",
                """
                def sink(items: list) -> None:
                    items.append(1)


                def mid(items: list) -> None:
                    sink(items)


                def top(items: list) -> None:
                    mid(items)
                """,
            )
        )
        for name in ("sink", "mid", "top"):
            effects = project.effects[f"repro.fake.hops.{name}"].effects
            assert MUTATES_STATE in effects, name
        assert classify(project.effects["repro.fake.hops.top"].effects) == "mutates-state"

    def test_pure_chain_stays_pure(self) -> None:
        project = _project(
            (
                "src/repro/fake/pure.py",
                """
                def double(x: int) -> int:
                    return x * 2


                def quadruple(x: int) -> int:
                    return double(double(x))
                """,
            )
        )
        assert classify(project.effects["repro.fake.pure.quadruple"].effects) == "pure"

    def test_seeded_signatures_are_leaves(self) -> None:
        # The oracle's internal memoisation must not leak mutates-state
        # into callers: the declared signature wins over the body.
        project = _project(
            (
                "src/repro/fake/oracle.py",
                """
                class DistanceOracle:
                    def cost(self, u: int, v: int) -> float:
                        self.hits = self.hits + 1  # internal cache counter
                        return 0.0


                def price(oracle: DistanceOracle) -> float:
                    return oracle.cost(0, 1)
                """,
            )
        )
        oracle_fx = project.effects["repro.fake.oracle.DistanceOracle.cost"]
        assert oracle_fx.seeded
        assert MUTATES_STATE not in oracle_fx.effects
        caller_fx = project.effects["repro.fake.oracle.price"]
        assert QUERIES_ORACLE in caller_fx.effects
        assert classify(caller_fx.effects) == "reads-state"

    def test_network_mutator_signature_propagates(self) -> None:
        project = _project(
            (
                "src/repro/fake/net.py",
                """
                class RoadNetwork:
                    def add_edge(self, u: int, v: int, cost: float) -> None:
                        pass


                def widen(network: RoadNetwork) -> None:
                    network.add_edge(0, 1, 2.0)
                """,
            )
        )
        assert MUTATES_NETWORK in project.effects["repro.fake.net.widen"].effects


# Fixture name -> (virtual lint path, {code: sorted violation lines}).
SEMANTIC_FIXTURES = {
    "ora001_violating.py": ("src/repro/pricing/fixture.py", {"ORA001": [27, 33, 41]}),
    "ora001_clean.py": ("src/repro/pricing/fixture.py", {}),
    "ora002_violating.py": ("src/repro/scenarios/fixture.py", {"ORA002": [21, 25]}),
    "ora002_clean.py": ("src/repro/scenarios/fixture.py", {}),
    "conc001_violating.py": ("src/repro/dispatch/fixture.py", {"CONC001": [7]}),
    "conc001_clean.py": ("src/repro/dispatch/fixture.py", {}),
    "conc002_violating.py": ("src/repro/simulation/fixture.py", {"CONC002": [14, 21, 26]}),
    "conc002_clean.py": ("src/repro/simulation/fixture.py", {}),
    "pur001_violating.py": ("src/repro/pricing/fixture.py", {"PUR001": [6, 15, 24]}),
    "pur001_clean.py": ("src/repro/pricing/fixture.py", {}),
}


class TestSemanticFixtures:
    @pytest.mark.parametrize("name", sorted(SEMANTIC_FIXTURES))
    def test_fixture(self, name: str) -> None:
        virtual_path, expected = SEMANTIC_FIXTURES[name]
        violations = _lint_fixture(name, virtual_path)
        actual: dict[str, list[int]] = {}
        for violation in violations:
            actual.setdefault(violation.code, []).append(violation.line)
        assert {c: sorted(lines) for c, lines in actual.items()} == expected

    def test_semantic_violation_is_waivable(self) -> None:
        source = (FIXTURES / "conc001_violating.py").read_text()
        marker = "  # line 7: CONC001 (mutated below, read on a dispatch path)"
        assert marker in source
        waived = source.replace(
            marker, "  # repro-lint: disable=CONC001 scratch cache for this fixture"
        )
        report = analyze_source("src/repro/dispatch/fixture.py", waived)
        attach_semantic([report])
        assert report.violations == []

    def test_reasonless_waiver_still_suppresses_but_flags_wvr001(self) -> None:
        source = (FIXTURES / "conc001_violating.py").read_text()
        marker = "  # line 7: CONC001 (mutated below, read on a dispatch path)"
        waived = source.replace(marker, "  # repro-lint: disable=CONC001")
        report = analyze_source("src/repro/dispatch/fixture.py", waived)
        attach_semantic([report])
        assert [v.code for v in report.violations] == ["WVR001"]


class TestDET003RebindRegression:
    PATH = "src/repro/fake/fixture.py"

    def _det003_lines(self, source: str) -> list[int]:
        report = analyze_source(self.PATH, textwrap.dedent(source))
        return [v.line for v in report.violations if v.code == "DET003"]

    def test_frozenset_named_constant_not_flagged(self) -> None:
        assert (
            self._det003_lines(
                """
                KINDS = frozenset({"a", "b"})
                for kind in KINDS:
                    print(kind)
                """
            )
            == []
        )

    def test_rebound_to_sorted_not_flagged(self) -> None:
        assert (
            self._det003_lines(
                """
                def order(items: list) -> list:
                    pending = set(items)
                    pending = sorted(pending)
                    return [x for x in pending]
                """
            )
            == []
        )

    def test_iteration_before_rebind_still_flagged(self) -> None:
        lines = self._det003_lines(
            """
            def order(items: list) -> list:
                pending = set(items)
                out = [x for x in pending]
                pending = sorted(pending)
                return out
            """
        )
        assert lines == [4]

    def test_direct_frozenset_iteration_still_flagged(self) -> None:
        lines = self._det003_lines(
            """
            for kind in frozenset({"a", "b"}):
                print(kind)
            """
        )
        assert lines == [2]

    def test_plain_set_still_flagged(self) -> None:
        lines = self._det003_lines(
            """
            def order(items: list) -> list:
                pending = set(items)
                return [x for x in pending]
            """
        )
        assert lines == [4]


class TestExports:
    def _small_project(self) -> ProjectAnalysis:
        return _project(
            (
                "src/repro/fake/mod.py",
                """
                def leaf() -> int:
                    return 1


                def caller() -> int:
                    return leaf()
                """,
            )
        )

    def test_call_graph_json_shape(self) -> None:
        data = call_graph_json(self._small_project())
        assert data["version"] == 1
        by_name = {fn["qualname"]: fn for fn in data["functions"]}
        leaf = by_name["repro.fake.mod.leaf"]
        assert leaf["classification"] == "pure"
        assert leaf["fan_in"] == 1
        caller = by_name["repro.fake.mod.caller"]
        assert caller["calls"][0]["targets"] == ["repro.fake.mod.leaf"]

    def test_call_graph_dot(self) -> None:
        dot = call_graph_dot(self._small_project())
        assert dot.startswith("digraph callgraph {")
        assert '"fake.mod.caller" -> "fake.mod.leaf";' in dot

    def test_summary_tables(self) -> None:
        text = summary_tables(self._small_project())
        assert "Top fan-in" in text
        assert "Top mutators" in text
        assert "`fake.mod.leaf`" in text

    def test_cli_call_graph_export(self, tmp_path: Path) -> None:
        out = tmp_path / "cg.json"
        code = lint_main(
            [
                str(REPO / "src" / "repro" / "analysis"),
                "--root",
                str(REPO),
                "--no-baseline",
                "--call-graph",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["version"] == 1
        assert data["functions"]

    def test_cli_summary_includes_call_graph_tables(self, tmp_path: Path) -> None:
        out = tmp_path / "summary.md"
        code = lint_main(
            [
                str(REPO / "src" / "repro" / "analysis"),
                "--root",
                str(REPO),
                "--no-baseline",
                "--summary",
                str(out),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "Top fan-in" in text
        assert "Top mutators" in text
        assert "| ORA001 |" in text


class TestLiveTreeAcceptance:
    def test_src_tree_semantically_clean_within_budget(self) -> None:
        started = time.perf_counter()
        reports, project = analyze_project([REPO / "src"], REPO)
        elapsed = time.perf_counter() - started
        assert project is not None
        semantic = [
            violation
            for report in reports
            for violation in report.violations
            if violation.code.startswith(("ORA", "CONC", "PUR"))
        ]
        assert semantic == [], [v.render() for v in semantic]
        assert elapsed < 10.0, f"semantic pass took {elapsed:.1f}s"
