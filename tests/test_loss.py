"""Tests for shareability loss (Definition 6) and supernode substitution."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.model.request import Request
from repro.shareability.graph import ShareabilityGraph
from repro.shareability.loss import (
    residual_shareability_loss,
    shareability_loss,
    sharing_ratio,
    substitute_supernode,
)


def _request(rid: int, direct_cost: float = 10.0) -> Request:
    return Request(release_time=0.0, request_id=rid, source=0, destination=1,
                   deadline=100.0, direct_cost=direct_cost)


def _graph(edges, nodes=None) -> ShareabilityGraph:
    graph = ShareabilityGraph()
    node_ids = set(nodes or [])
    for u, v in edges:
        node_ids.add(u)
        node_ids.add(v)
    for rid in sorted(node_ids):
        graph.add_request(_request(rid))
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


@pytest.fixture()
def example3_graph() -> ShareabilityGraph:
    """Example 3 of the paper: the Figure 1(b) graph with r4 present."""
    return _graph([(1, 2), (1, 3), (2, 3), (2, 4)])


class TestDefinition6:
    def test_singleton_loss_is_degree(self, example3_graph):
        assert shareability_loss(example3_graph, [2]) == 3.0
        assert shareability_loss(example3_graph, [4]) == 1.0

    def test_example3_pair_r1_r3(self, example3_graph):
        """The paper computes SLoss({r1, r3}) = 2."""
        assert shareability_loss(example3_graph, [1, 3]) == 2.0

    def test_example3_pair_r1_r2(self, example3_graph):
        """The paper computes SLoss({r1, r2}) = 3."""
        assert shareability_loss(example3_graph, [1, 2]) == 3.0

    def test_structure_friendliness_ordering(self, example3_graph):
        """Substituting {r1, r3} is more structure-friendly than {r1, r2}."""
        assert shareability_loss(example3_graph, [1, 3]) < shareability_loss(
            example3_graph, [1, 2]
        )

    def test_duplicate_members_are_ignored(self, example3_graph):
        assert shareability_loss(example3_graph, [1, 3, 3]) == shareability_loss(
            example3_graph, [1, 3]
        )

    def test_empty_group_rejected(self, example3_graph):
        with pytest.raises(ReproError):
            shareability_loss(example3_graph, [])

    def test_unknown_member_rejected(self, example3_graph):
        with pytest.raises(ReproError):
            shareability_loss(example3_graph, [1, 99])


class TestResidualVariant:
    def test_singleton_residual_is_outside_degree(self, example3_graph):
        assert residual_shareability_loss(example3_graph, [2]) == 3.0

    def test_cohesive_groups_score_lower(self, example3_graph):
        triangle = residual_shareability_loss(example3_graph, [1, 2, 3])
        pair = residual_shareability_loss(example3_graph, [2, 3])
        singleton = residual_shareability_loss(example3_graph, [2])
        assert triangle <= pair <= singleton

    def test_residual_never_exceeds_full_loss(self, example3_graph):
        for group in ([1, 2], [1, 3], [2, 3], [1, 2, 3], [2, 4]):
            assert residual_shareability_loss(example3_graph, group) <= shareability_loss(
                example3_graph, group
            )


class TestSupernodeSubstitution:
    def test_substitution_keeps_common_neighbours_only(self, example3_graph):
        merged = substitute_supernode(example3_graph, [1, 3])
        # r2 was adjacent to both r1 and r3, so the supernode keeps that edge.
        assert merged.num_nodes == 3
        assert merged.has_edge(1, 2)
        assert not merged.has_edge(1, 4)

    def test_substitution_drops_partial_neighbours(self, example3_graph):
        merged = substitute_supernode(example3_graph, [1, 2])
        # r4 was adjacent to r2 only, so it loses its edge to the supernode.
        assert merged.degree(4) == 0
        assert merged.has_edge(1, 3)

    def test_edge_loss_matches_shareability_loss_spirit(self, example3_graph):
        """Groups with a smaller Definition-6 loss destroy fewer edges."""

        def edges_destroyed(group):
            merged = substitute_supernode(example3_graph, group)
            return example3_graph.num_edges - merged.num_edges

        assert edges_destroyed([1, 3]) < edges_destroyed([1, 2])

    def test_original_graph_untouched(self, example3_graph):
        substitute_supernode(example3_graph, [1, 3])
        assert example3_graph.num_nodes == 4
        assert example3_graph.num_edges == 4

    def test_custom_supernode_request(self, example3_graph):
        merged = substitute_supernode(
            example3_graph, [1, 3], supernode_request=_request(77)
        )
        assert 77 in merged
        assert 1 not in merged and 3 not in merged

    def test_empty_group_rejected(self, example3_graph):
        with pytest.raises(ReproError):
            substitute_supernode(example3_graph, [])


class TestSharingRatio:
    def test_ratio_is_cost_over_direct_sum(self):
        graph = _graph([(1, 2)])
        ratio = sharing_ratio(graph, [1, 2], total_cost=15.0)
        assert ratio == pytest.approx(15.0 / 20.0)

    def test_zero_direct_cost(self):
        graph = ShareabilityGraph()
        graph.add_request(_request(1, direct_cost=0.0))
        assert sharing_ratio(graph, [1], total_cost=5.0) == 0.0
