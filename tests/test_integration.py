"""Integration tests: whole-pipeline runs on small preset workloads."""

from __future__ import annotations

import pytest

from repro import Simulator, make_dispatcher, make_workload
from repro.dispatch.sard import SARDDispatcher


@pytest.fixture(scope="module")
def tiny_workload():
    """A small but non-trivial NYC-style workload shared across this module."""
    return make_workload(
        "nyc",
        city_scale=0.35,
        workload_overrides={"num_requests": 60, "num_vehicles": 25},
    )


def _simulate(workload, dispatcher):
    simulator = Simulator(
        network=workload.network,
        oracle=workload.fresh_oracle(),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=dispatcher,
        config=workload.simulation_config,
    )
    return simulator.run()


class TestFullPipeline:
    @pytest.mark.parametrize(
        "algorithm", ["pruneGDP", "TicketAssign+", "DARM+DPRS", "RTV", "GAS", "SARD"]
    )
    def test_every_algorithm_completes_and_serves_requests(self, tiny_workload, algorithm):
        result = _simulate(tiny_workload, make_dispatcher(algorithm))
        metrics = result.metrics
        assert metrics.total_requests == 60
        assert metrics.assigned_requests > 0
        assert metrics.completed_requests == metrics.assigned_requests
        assert metrics.unified_cost == pytest.approx(
            metrics.total_travel_time + metrics.penalty
        )
        assert metrics.shortest_path_queries > 0

    def test_batch_methods_do_not_lose_to_penalty_only_solution(self, tiny_workload):
        """Serving requests must beat serving nothing under the unified cost."""
        result = _simulate(tiny_workload, make_dispatcher("SARD"))
        do_nothing_cost = tiny_workload.simulation_config.penalty_coefficient * sum(
            r.direct_cost for r in tiny_workload.requests
        )
        assert result.unified_cost < do_nothing_cost

    def test_sard_competitive_with_online_baseline(self, tiny_workload):
        sard = _simulate(tiny_workload, make_dispatcher("SARD"))
        online = _simulate(tiny_workload, make_dispatcher("pruneGDP"))
        # The structure-aware batch method should serve at least as many
        # requests (the paper's headline claim, reproduced at small scale with
        # a little slack for discreteness).
        assert sard.metrics.assigned_requests >= online.metrics.assigned_requests - 2

    def test_angle_pruning_saves_queries_without_hurting_quality(self, tiny_workload):
        plain = _simulate(tiny_workload, SARDDispatcher.without_angle_pruning())
        pruned = _simulate(tiny_workload, SARDDispatcher.with_angle_pruning())
        assert pruned.metrics.shortest_path_queries <= plain.metrics.shortest_path_queries
        assert pruned.metrics.service_rate >= plain.metrics.service_rate - 0.1

    def test_vehicles_end_where_their_last_dropoff_was(self, tiny_workload):
        workload = tiny_workload
        vehicles = workload.fresh_vehicles()
        simulator = Simulator(
            network=workload.network,
            oracle=workload.fresh_oracle(),
            vehicles=vehicles,
            requests=list(workload.requests),
            dispatcher=make_dispatcher("SARD"),
            config=workload.simulation_config,
        )
        simulator.run()
        for vehicle in vehicles:
            assert vehicle.is_idle
            assert vehicle.onboard == 0
            if vehicle.completed:
                last_request, _ = vehicle.completed[-1]
                assert vehicle.location == last_request.destination

    def test_larger_fleet_serves_at_least_as_many(self):
        small = make_workload(
            "nyc", city_scale=0.35,
            workload_overrides={"num_requests": 60, "num_vehicles": 10},
        )
        large = make_workload(
            "nyc", city_scale=0.35,
            workload_overrides={"num_requests": 60, "num_vehicles": 40},
        )
        small_result = _simulate(small, make_dispatcher("SARD"))
        large_result = _simulate(large, make_dispatcher("SARD"))
        assert large_result.metrics.assigned_requests >= small_result.metrics.assigned_requests

    def test_cainiao_preset_with_relaxed_deadlines_serves_most_requests(self):
        workload = make_workload(
            "cainiao", city_scale=0.3,
            workload_overrides={"num_requests": 40, "num_vehicles": 25},
        )
        result = _simulate(workload, make_dispatcher("SARD"))
        assert result.service_rate >= 0.5
