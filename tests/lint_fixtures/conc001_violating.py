"""CONC001 fixture: mutable module global on a dispatch path.

Linted under the virtual path ``src/repro/dispatch/fixture.py``, so every
function here is a dispatch entry point for reachability purposes.
"""

_CACHE: dict[int, float] = {}  # line 7: CONC001 (mutated below, read on a dispatch path)


def lookup(key: int) -> float:
    return _CACHE.get(key, 0.0)


def store(key: int, value: float) -> None:
    _CACHE[key] = value
