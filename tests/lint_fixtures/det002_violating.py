"""Fixture: module-global RNG draws that DET002 must flag."""

import random
from random import shuffle

JITTER = random.random()


def scramble(items: list[int]) -> None:
    shuffle(items)
    random.seed(0)
