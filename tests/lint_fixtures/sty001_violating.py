"""Fixture: broad exception handlers without re-raise (STY001)."""


def swallow(op) -> None:
    try:
        op()
    except Exception:
        pass


def mute(op) -> None:
    try:
        op()
    except:
        pass
