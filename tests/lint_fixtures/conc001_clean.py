"""CONC001 clean fixture: immutable constants and per-instance state only."""

#: Immutable module constant: fine to share across workers.
_LIMITS: tuple[int, ...] = (1, 2, 3)

#: Mutable value but never written after import: read-only config is fine.
_DEFAULTS = {"capacity": 4}


class ZoneCache:
    """State lives on the instance, owned by one run."""

    def __init__(self) -> None:
        self._cache: dict[int, float] = {}

    def lookup(self, key: int) -> float:
        return self._cache.get(key, 0.0)

    def store(self, key: int, value: float) -> None:
        self._cache[key] = value


def capacity_for(zone: int) -> int:
    return _DEFAULTS["capacity"] + _LIMITS[zone % len(_LIMITS)]
