"""Fixture: tolerant cost comparison and infinity sentinels (INV002-clean)."""

INF_COST = float("inf")


def unreachable(cost: float) -> bool:
    return cost == INF_COST


def same_cost(cost_a: float, cost_b: float) -> bool:
    from repro.numeric import costs_equal

    return costs_equal(cost_a, cost_b)
