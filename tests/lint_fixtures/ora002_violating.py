"""ORA002 fixture: oracle query inside a ``WorldEvent.apply`` override.

Also exercises ``self.oracle`` alias tracking: the oracle reaches the
event through an annotated constructor parameter.
"""


class DistanceOracle:
    def cost(self, u: int, v: int) -> float: ...


class WorldEvent:
    def apply(self, world: object) -> None:
        raise NotImplementedError


class RepriceEvent(WorldEvent):
    def __init__(self, oracle: DistanceOracle) -> None:
        self.oracle = oracle

    def apply(self, world: object) -> None:  # line 21: ORA002
        self.oracle.cost(1, 2)


def on_applied(event: WorldEvent, oracle: DistanceOracle) -> float:  # line 25: ORA002
    return oracle.cost(3, 4)
