"""Fixture: sorted iteration and order-insensitive consumers (DET003-clean)."""


def collect() -> list[str]:
    tags = {"b", "a", "c"}
    total = sum(len(t) for t in tags)
    if all(t.islower() for t in tags):
        return [t for t in sorted(tags)]
    return [str(total)]
