"""Fixture: duration measurement stays DET001-clean.

``time.perf_counter`` only measures durations for reporting and never
feeds simulation logic, so it is not on the banned list.
"""

import time


def measure() -> float:
    start = time.perf_counter()
    return time.perf_counter() - start
