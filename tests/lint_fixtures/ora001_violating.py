"""ORA001 fixture: network mutation followed by an un-refreshed oracle query.

Linted under the virtual path ``src/repro/pricing/fixture.py`` so the
semantic pass indexes it; the stub classes below match the seeded effect
signatures by qualname suffix (``...RoadNetwork.remove_edge`` etc.).
"""


class RoadNetwork:
    def add_edge(self, u: int, v: int, cost: float) -> None: ...

    def remove_edge(self, u: int, v: int) -> None: ...


class DistanceOracle:
    def cost(self, u: int, v: int) -> float: ...

    def rebuild(self) -> None: ...


def close_road(network: RoadNetwork) -> None:
    network.remove_edge(1, 2)


def price_after_closure(network: RoadNetwork, oracle: DistanceOracle) -> float:
    close_road(network)  # transitively mutates the network
    return oracle.cost(0, 1)  # line 27: ORA001 (no refresh since line 26)


def loop_requery(network: RoadNetwork, oracle: DistanceOracle) -> float:
    total = 0.0
    for step in range(3):
        total += oracle.cost(0, step)  # line 33: ORA001 on the loop back edge
        network.add_edge(step, step + 1, 1.0)
    return total


def branch_dirty(network: RoadNetwork, oracle: DistanceOracle, flag: bool) -> float:
    if flag:
        network.remove_edge(3, 4)  # only one branch mutates...
    return oracle.cost(3, 4)  # line 41: ORA001 (branches join pessimistically)
