"""ORA002 clean fixture: events mutate the world but never price on it."""


class RoadNetwork:
    def remove_edge(self, u: int, v: int) -> None: ...


class World:
    def __init__(self, network: RoadNetwork) -> None:
        self.network = network


class WorldEvent:
    def apply(self, world: World) -> None:
        raise NotImplementedError


class ClosureEvent(WorldEvent):
    def apply(self, world: World) -> None:
        world.network.remove_edge(1, 2)  # mutation is the event's job


class NoteEvent(WorldEvent):
    def __init__(self) -> None:
        self.note = ""

    def apply(self, world: World) -> None:
        self.note = "applied"  # self-mutation only; no oracle involved
