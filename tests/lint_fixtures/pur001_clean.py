"""PUR001 clean fixture: honest purity claims and exempt private helpers."""


def compute_fare(distance: float) -> float:
    return distance * 2.0


def score_route(stops: tuple) -> float:
    """Pure stdlib arithmetic over the stop sequence."""  # "pure stdlib" exempt
    return float(len(stops))


def _compute_running_total(log: list, value: float) -> float:
    # Private helper: statefulness is the enclosing seam's business.
    log.append(value)
    return sum(log)


def estimate_wait(queue_depth: int, service_rate: float) -> float:
    return queue_depth / service_rate if service_rate else 0.0
