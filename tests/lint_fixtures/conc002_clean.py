"""CONC002 clean fixture: immutable snapshots across executor seams."""


class Executor:
    def submit(self, fn: object) -> None: ...


def schedule_snapshot(executor: Executor) -> None:
    pending = (1, 2, 3)  # immutable snapshot: safe to capture
    executor.submit(lambda: sum(pending))


def schedule_pure(executor: Executor) -> None:
    def worker(count: int = 0) -> int:
        return count * 2

    executor.submit(worker)


def local_callback_is_fine() -> None:
    pending = [1, 2, 3]
    handler = lambda: pending.pop()  # noqa: E731 -- never leaves this frame
    handler()
