"""Fixture: order-sensitive iteration over bare sets (DET003)."""


def collect() -> list[str]:
    tags = {"b", "a", "c"}
    out = []
    for tag in tags:
        out.append(tag)
    picked = [t for t in {"x", "y"}]
    flat = list(tags - {"c"})
    return out + picked + flat
