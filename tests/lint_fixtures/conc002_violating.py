"""CONC002 fixture: mutable captures handed across executor seams."""


class Executor:
    def submit(self, fn: object) -> None: ...


class Thread:
    def __init__(self, target: object = None) -> None: ...


def schedule_batch(executor: Executor) -> None:
    pending = [1, 2, 3]
    executor.submit(lambda: pending.pop())  # line 14: CONC002 (captures `pending`)


def schedule_with_default(executor: Executor) -> None:
    def worker(batch: list = []) -> None:  # mutable default shared across tasks
        batch.append(1)

    executor.submit(worker)  # line 21: CONC002 (worker's mutable default)


class Manager:
    def spawn(self) -> None:
        Thread(target=lambda: self.tick())  # line 26: CONC002 (captures `self`)

    def tick(self) -> None: ...
