"""Fixture: typed handling and re-raise keep STY001 quiet."""


def wrap(op) -> None:
    try:
        op()
    except Exception as exc:
        raise RuntimeError("fixture") from exc


def narrow(op) -> None:
    try:
        op()
    except ValueError:
        pass
