"""Fixture: CSR array mutations outside network/routing/ (INV001)."""


def corrupt(csr) -> None:
    csr.weights[0] = 0.0
    csr.indices.append(7)
    del csr.indptr[0]
    csr.weights = []
