"""Fixture: exact float equality on costs (INV002)."""


def same_cost(cost_a: float, cost_b: float) -> bool:
    return cost_a == cost_b


def changed(old_weight: float, new_weight: float) -> bool:
    return old_weight != new_weight
