"""Fixture: wall-clock calls that DET001 must flag inside src/repro/."""

import time
from datetime import datetime
from time import sleep


def stamp() -> float:
    return time.time()


def nap() -> None:
    sleep(0.1)


def label() -> str:
    return datetime.now().isoformat()
