"""ORA001 clean fixture: every mutate-then-query path refreshes in between."""


class RoadNetwork:
    def add_edge(self, u: int, v: int, cost: float) -> None: ...

    def remove_edge(self, u: int, v: int) -> None: ...


class DistanceOracle:
    def cost(self, u: int, v: int) -> float: ...

    def rebuild(self) -> None: ...

    def repair(self, changes: int) -> None: ...


def reroute(network: RoadNetwork, oracle: DistanceOracle) -> float:
    network.remove_edge(1, 2)
    oracle.rebuild()  # refresh clears the dirty window
    return oracle.cost(0, 1)


def branch_refreshed(network: RoadNetwork, oracle: DistanceOracle, flag: bool) -> float:
    if flag:
        network.remove_edge(3, 4)
        oracle.repair(1)  # the mutating branch refreshes before joining
    return oracle.cost(3, 4)


def query_then_mutate(network: RoadNetwork, oracle: DistanceOracle) -> float:
    before = oracle.cost(0, 1)  # straight-line query-before-mutate is fine
    network.add_edge(0, 1, before)
    return before
