"""Fixture: reading CSR arrays is always fine (INV001-clean)."""


def total_weight(csr) -> float:
    return sum(csr.weights)
