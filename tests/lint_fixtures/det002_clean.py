"""Fixture: stream-seeded draws are the DET002-clean idiom."""

import random

_STREAM = random.Random("fixture-stream")


def draw() -> float:
    return _STREAM.random()
