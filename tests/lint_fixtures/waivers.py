"""Fixture: waiver semantics -- suppression plus WVR001 for missing reasons."""

import random

GOOD = random.random()  # repro-lint: disable=DET002 fixture exercises a reasoned waiver
BAD = random.random()  # repro-lint: disable=DET002
OTHER = random.random()  # repro-lint: disable=DET001 wrong code does not suppress
