"""PUR001 fixture: purity claims (name prefix or docstring) that mutate."""

_TOTALS: list[float] = []


def compute_fare(distance: float) -> float:  # line 6: PUR001 (name claims purity)
    _TOTALS.append(distance)
    return distance * 2.0


def _record(log: list, value: float) -> None:
    log.append(value)


def estimate_cost(log: list, distance: float) -> float:  # line 15: PUR001 (transitive)
    _record(log, distance)
    return distance * 1.5


class FareModel:
    def __init__(self) -> None:
        self.calls = 0

    def unit_price(self) -> float:  # line 24: PUR001 (docstring claims purity)
        """Pure accessor for the per-km price."""
        self.calls += 1
        return 1.25
