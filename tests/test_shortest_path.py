"""Tests for the distance oracle: correctness, caching and statistics."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.exceptions import NetworkError, UnreachableError
from repro.network.generators import grid_city
from repro.network.road_network import RoadNetwork
from repro.network.shortest_path import DistanceOracle


@pytest.fixture()
def jittered_city() -> RoadNetwork:
    return grid_city(5, 5, block_length=120.0, perturbation=0.3, seed=9)


class TestCorrectness:
    def test_matches_networkx_dijkstra(self, jittered_city: RoadNetwork):
        oracle = DistanceOracle(jittered_city)
        graph = jittered_city.to_networkx()
        nodes = list(jittered_city.nodes())
        for source in nodes[::5]:
            expected = nx.single_source_dijkstra_path_length(graph, source, weight="weight")
            for target in nodes[::3]:
                assert oracle.cost(source, target) == pytest.approx(expected[target])

    def test_zero_cost_to_self(self, oracle):
        assert oracle.cost(7, 7) == 0.0
        assert oracle.path(7, 7) == [7]

    def test_path_is_consistent_with_cost(self, jittered_city: RoadNetwork):
        oracle = DistanceOracle(jittered_city)
        path = oracle.path(0, 24)
        assert path[0] == 0 and path[-1] == 24
        total = sum(
            jittered_city.edge_cost(u, v) for u, v in zip(path, path[1:])
        )
        assert total == pytest.approx(oracle.cost(0, 24))

    def test_unreachable_returns_inf_and_path_raises(self):
        network = RoadNetwork()
        network.add_node(0, 0, 0)
        network.add_node(1, 10, 0)
        oracle = DistanceOracle(network)
        assert math.isinf(oracle.cost(0, 1))
        with pytest.raises(UnreachableError):
            oracle.path(0, 1)

    def test_directed_asymmetry(self):
        network = RoadNetwork()
        network.add_node(0, 0, 0)
        network.add_node(1, 10, 0)
        network.add_edge(0, 1, 5.0)
        oracle = DistanceOracle(network)
        assert oracle.cost(0, 1) == 5.0
        assert math.isinf(oracle.cost(1, 0))

    def test_unknown_endpoint_raises(self, oracle):
        with pytest.raises(NetworkError):
            oracle.cost(0, 10_000)

    def test_route_cost_sums_legs(self, oracle):
        route = [0, 5, 10, 11]
        expected = sum(oracle.cost(u, v) for u, v in zip(route, route[1:]))
        assert oracle.route_cost(route) == pytest.approx(expected)


class TestCachingAndStats:
    def test_cache_hit_counted(self, grid_network):
        oracle = DistanceOracle(grid_network)
        oracle.cost(0, 20)
        before_searches = oracle.stats.searches
        value = oracle.cost(0, 20)
        assert oracle.stats.searches == before_searches
        assert oracle.stats.cache_hits >= 1
        assert value == pytest.approx(oracle.cost(0, 20))

    def test_intermediate_nodes_cached_from_one_search(self, grid_network):
        oracle = DistanceOracle(grid_network)
        oracle.cost(0, 35)
        searches = oracle.stats.searches
        # Nodes settled on the way to 35 should now be answered from cache.
        oracle.cost(0, 1)
        assert oracle.stats.searches == searches

    def test_query_counter_counts_logical_queries(self, grid_network):
        oracle = DistanceOracle(grid_network)
        for _ in range(5):
            oracle.cost(0, 3)
        assert oracle.stats.queries == 5

    def test_cache_disabled(self, grid_network):
        oracle = DistanceOracle(grid_network, cache_size=0)
        oracle.cost(0, 3)
        oracle.cost(0, 3)
        assert oracle.stats.cache_hits == 0
        assert oracle.cache_len == 0

    def test_cache_eviction_bounds_size(self, grid_network):
        oracle = DistanceOracle(grid_network, cache_size=10)
        for target in range(30):
            oracle.cost(0, target % grid_network.num_nodes)
        assert oracle.cache_len <= 10

    def test_stats_reset_and_snapshot(self, grid_network):
        oracle = DistanceOracle(grid_network)
        oracle.cost(0, 5)
        snapshot = oracle.stats.snapshot()
        assert snapshot["queries"] == 1
        oracle.stats.reset()
        assert oracle.stats.queries == 0

    def test_clear_cache(self, grid_network):
        oracle = DistanceOracle(grid_network)
        oracle.cost(0, 5)
        assert oracle.cache_len > 0
        oracle.clear_cache()
        assert oracle.cache_len == 0

    def test_estimated_memory_grows_with_cache(self, grid_network):
        oracle = DistanceOracle(grid_network)
        empty = oracle.estimated_memory_bytes()
        oracle.cost(0, 35)
        assert oracle.estimated_memory_bytes() > empty


class TestLandmarks:
    def test_landmark_oracle_matches_plain_dijkstra(self, jittered_city: RoadNetwork):
        plain = DistanceOracle(jittered_city)
        alt = DistanceOracle(jittered_city, num_landmarks=4, seed=3)
        for source, target in [(0, 24), (3, 20), (12, 7), (24, 0)]:
            assert alt.cost(source, target) == pytest.approx(plain.cost(source, target))

    def test_landmark_search_settles_fewer_nodes(self, jittered_city: RoadNetwork):
        plain = DistanceOracle(jittered_city, cache_size=0)
        alt = DistanceOracle(jittered_city, cache_size=0, num_landmarks=6, seed=3)
        plain.cost(0, 24)
        alt.cost(0, 24)
        assert alt.stats.settled_nodes <= plain.stats.settled_nodes
