"""Tests for batching of dynamically arriving requests."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.model.batch import Batch, BatchStream
from repro.model.request import Request


def _request(rid: int, release: float) -> Request:
    return Request(release_time=release, request_id=rid, source=0, destination=1,
                   deadline=release + 100.0, direct_cost=50.0)


class TestBatchStream:
    def test_partitions_by_release_time(self):
        requests = [_request(i, t) for i, t in enumerate([0.5, 1.0, 3.5, 4.0, 9.9])]
        batches = BatchStream(requests, batch_period=3.0).batches()
        assert [len(b) for b in batches] == [2, 2, 0, 1]
        assert batches[0].start_time == 0.0
        assert batches[0].end_time == 3.0
        assert [r.request_id for r in batches[0]] == [0, 1]

    def test_requests_sorted_within_batch(self):
        requests = [_request(2, 1.0), _request(1, 0.2), _request(3, 0.2)]
        batches = BatchStream(requests, batch_period=5.0).batches()
        assert [r.request_id for r in batches[0]] == [1, 3, 2]

    def test_empty_batches_can_be_suppressed(self):
        requests = [_request(0, 0.0), _request(1, 10.0)]
        with_empty = BatchStream(requests, batch_period=3.0).batches()
        without_empty = BatchStream(requests, batch_period=3.0, emit_empty=False).batches()
        assert len(with_empty) == 4
        assert len(without_empty) == 2
        assert all(not b.is_empty for b in without_empty)

    def test_start_time_alignment(self):
        requests = [_request(0, 7.2)]
        stream = BatchStream(requests, batch_period=3.0)
        assert stream.start_time == pytest.approx(6.0)
        batch = stream.batches()[0]
        assert batch.start_time <= 7.2 < batch.end_time

    def test_explicit_start_time(self):
        requests = [_request(0, 7.2)]
        stream = BatchStream(requests, batch_period=3.0, start_time=0.0)
        batches = stream.batches()
        assert batches[0].start_time == 0.0
        assert sum(len(b) for b in batches) == 1

    def test_every_request_appears_exactly_once(self):
        requests = [_request(i, i * 0.7) for i in range(50)]
        batches = BatchStream(requests, batch_period=2.0).batches()
        seen = [r.request_id for batch in batches for r in batch]
        assert sorted(seen) == list(range(50))

    def test_empty_stream(self):
        stream = BatchStream([], batch_period=3.0)
        assert stream.batches() == []
        assert stream.num_requests == 0

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            BatchStream([], batch_period=0.0)

    def test_batch_index_is_sequential(self):
        requests = [_request(i, i * 2.0) for i in range(10)]
        batches = BatchStream(requests, batch_period=3.0).batches()
        assert [b.index for b in batches] == list(range(len(batches)))


class TestBatch:
    def test_iteration_and_len(self):
        requests = (_request(0, 0.0), _request(1, 1.0))
        batch = Batch(index=0, start_time=0.0, end_time=3.0, requests=requests)
        assert len(batch) == 2
        assert list(batch) == list(requests)
        assert not batch.is_empty
