"""Tests for the dispatcher interface helpers."""

from __future__ import annotations

import pytest

from repro.dispatch import DISPATCHER_REGISTRY, make_dispatcher
from repro.dispatch.base import Assignment, DispatchResult, candidate_vehicles, requests_by_vehicle
from repro.model.schedule import Schedule
from repro.model.vehicle import Vehicle


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        assert set(DISPATCHER_REGISTRY) == {
            "SARD", "pruneGDP", "TicketAssign+", "GAS", "RTV", "DARM+DPRS",
        }

    def test_make_dispatcher_sets_name(self):
        for name in DISPATCHER_REGISTRY:
            dispatcher = make_dispatcher(name)
            assert dispatcher.name == name

    def test_unknown_dispatcher(self):
        with pytest.raises(KeyError):
            make_dispatcher("Oracle")


class TestCandidateVehicles:
    def test_nearby_vehicle_found(self, make_request, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=1), Vehicle(vehicle_id=1, location=35)]
        request = make_request(1, 0, 4, release_time=5.0)
        context = make_context(vehicles, [request], current_time=5.0)
        found = candidate_vehicles(request, context)
        assert any(v.vehicle_id == 0 for v in found)

    def test_falls_back_to_all_vehicles(self, make_request, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=35)]
        # Zero slack left: the radius query finds nothing, fallback returns all.
        request = make_request(1, 0, 4, release_time=0.0, max_wait=0.0)
        context = make_context(vehicles, [request], current_time=0.0)
        assert candidate_vehicles(request, context) == vehicles

    def test_max_candidates_keeps_closest(self, make_request, make_context):
        vehicles = [Vehicle(vehicle_id=i, location=i) for i in range(10)]
        request = make_request(1, 0, 4, release_time=5.0, max_wait=300.0)
        context = make_context(vehicles, [request], current_time=5.0)
        found = candidate_vehicles(request, context, max_candidates=3)
        assert len(found) == 3
        found_ids = {v.vehicle_id for v in found}
        assert 0 in found_ids
        # Every kept vehicle is at least as close to the source as any dropped one.
        kept = max(context.network.euclidean(v.location, request.source) for v in found)
        dropped = [v for v in vehicles if v.vehicle_id not in found_ids]
        assert all(
            context.network.euclidean(v.location, request.source) >= kept - 1e-9
            for v in dropped
        )

    def test_requests_by_vehicle_is_inverse_mapping(self, make_request, make_context):
        vehicles = [Vehicle(vehicle_id=0, location=0), Vehicle(vehicle_id=1, location=35)]
        requests = [make_request(1, 0, 4, release_time=5.0),
                    make_request(2, 35, 30, release_time=5.0)]
        context = make_context(vehicles, requests, current_time=5.0)
        mapping = requests_by_vehicle(context, requests)
        assert set(mapping) == {0, 1}
        for request in requests:
            for vehicle in candidate_vehicles(request, context):
                assert request in mapping[vehicle.vehicle_id]


class TestResultTypes:
    def test_assignment_ids(self, make_request):
        request = make_request(1, 0, 4)
        assignment = Assignment(vehicle_id=3, schedule=Schedule.direct(request),
                                new_requests=(request,))
        assert assignment.new_request_ids == {1}

    def test_dispatch_result_assigned_ids(self, make_request):
        a = make_request(1, 0, 4)
        b = make_request(2, 1, 5)
        result = DispatchResult(assignments=[
            Assignment(1, Schedule.direct(a), (a,)),
            Assignment(2, Schedule.direct(b), (b,)),
        ])
        assert result.assigned_request_ids == {1, 2}

    def test_context_vehicle_lookup(self, make_request, make_context):
        vehicles = [Vehicle(vehicle_id=4, location=0)]
        context = make_context(vehicles, [])
        assert context.vehicle_by_id(4) is vehicles[0]
        with pytest.raises(KeyError):
            context.vehicle_by_id(99)
