"""Tests for the clique-partition bounds supporting Theorem IV.1."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.model.request import Request
from repro.shareability.cliques import (
    bounded_clique_partition_upper_bound,
    clique_partition_upper_bound,
    fit_power_law_exponent,
    greedy_clique_partition,
    largest_clique_estimate,
    sharing_rate_of_partition,
)
from repro.shareability.graph import ShareabilityGraph


def _random_graph(num_nodes: int, probability: float, seed: int) -> ShareabilityGraph:
    rng = random.Random(seed)
    graph = ShareabilityGraph()
    for rid in range(num_nodes):
        graph.add_request(Request(release_time=0.0, request_id=rid, source=0,
                                  destination=1, deadline=10.0, direct_cost=1.0))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


class TestEquation6:
    def test_empty_graph(self):
        assert clique_partition_upper_bound(0, 0) == 0

    def test_edgeless_graph_needs_n_cliques(self):
        assert clique_partition_upper_bound(5, 0) == 5

    def test_complete_graph_bound_is_small(self):
        n = 6
        e = n * (n - 1) // 2
        assert clique_partition_upper_bound(n, e) <= 3

    def test_monotone_in_edges(self):
        bounds = [clique_partition_upper_bound(10, e) for e in (0, 10, 20, 40)]
        assert bounds == sorted(bounds, reverse=True)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            clique_partition_upper_bound(-1, 0)


class TestEquation7:
    def test_heavy_tail_grows_with_n(self):
        small = largest_clique_estimate(100, 1.5)
        large = largest_clique_estimate(10_000, 1.5)
        assert large > small

    def test_exponent_above_two_is_constant(self):
        assert largest_clique_estimate(100, 2.5) == largest_clique_estimate(10_000, 2.5)

    def test_exponent_two_case(self):
        assert largest_clique_estimate(1000, 2.0) >= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            largest_clique_estimate(0, 1.5)
        with pytest.raises(ConfigurationError):
            largest_clique_estimate(10, 0.0)


class TestEquation8:
    def test_bounded_partition_at_least_unbounded_over_k(self):
        n, e = 50, 200
        base = clique_partition_upper_bound(n, e)
        bounded = bounded_clique_partition_upper_bound(n, e, exponent=1.5, max_clique_size=3)
        assert bounded >= base

    def test_larger_capacity_lowers_bound(self):
        n, e = 50, 200
        small_k = bounded_clique_partition_upper_bound(n, e, 1.5, 2)
        large_k = bounded_clique_partition_upper_bound(n, e, 1.5, 6)
        assert large_k <= small_k

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            bounded_clique_partition_upper_bound(10, 5, 1.5, 0)


class TestPowerLawFit:
    def test_hill_estimator_on_synthetic_data(self):
        rng = random.Random(7)
        eta = 2.5
        degrees = [max(1, int(round((1.0 - rng.random()) ** (-1.0 / (eta - 1.0))))) for _ in range(5000)]
        fitted = fit_power_law_exponent(degrees)
        assert 1.5 < fitted < 4.0

    def test_requires_two_positive_degrees(self):
        with pytest.raises(ConfigurationError):
            fit_power_law_exponent([0, 0])


class TestGreedyPartition:
    def test_partition_covers_every_node_once(self):
        graph = _random_graph(40, 0.2, seed=3)
        partition = greedy_clique_partition(graph, max_clique_size=3)
        covered = [rid for clique in partition for rid in clique]
        assert sorted(covered) == sorted(graph.request_ids())

    def test_every_block_is_a_clique_of_bounded_size(self):
        graph = _random_graph(40, 0.3, seed=5)
        partition = greedy_clique_partition(graph, max_clique_size=4)
        for clique in partition:
            assert len(clique) <= 4
            assert graph.is_clique(clique)

    def test_partition_count_respects_upper_bound(self):
        graph = _random_graph(30, 0.4, seed=9)
        partition = greedy_clique_partition(graph, max_clique_size=30)
        bound = clique_partition_upper_bound(graph.num_nodes, graph.num_edges)
        # Equation 6 bounds the *optimal* partition; the greedy result may be
        # larger but never exceeds the trivial bound of one clique per node.
        assert len(partition) <= graph.num_nodes
        assert bound <= graph.num_nodes

    def test_invalid_size(self):
        graph = _random_graph(5, 0.5, seed=1)
        with pytest.raises(ConfigurationError):
            greedy_clique_partition(graph, 0)


class TestSharingRate:
    def test_rate_counts_groups_of_two_or_more(self):
        partition = [{1, 2}, {3}, {4, 5, 6}]
        assert sharing_rate_of_partition(partition) == pytest.approx(5 / 6)

    def test_empty_partition(self):
        assert sharing_rate_of_partition([]) == 0.0

    def test_denser_graphs_share_more(self):
        sparse = _random_graph(40, 0.05, seed=11)
        dense = _random_graph(40, 0.5, seed=11)
        sparse_rate = sharing_rate_of_partition(greedy_clique_partition(sparse, 3))
        dense_rate = sharing_rate_of_partition(greedy_clique_partition(dense, 3))
        assert dense_rate >= sparse_rate
