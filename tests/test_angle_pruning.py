"""Tests for the angle pruning rule and its probabilistic analysis."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.model.request import Request
from repro.network.road_network import RoadNetwork
from repro.shareability.angle_pruning import (
    direction_angle,
    expected_sharing_probability,
    fit_lognormal,
    passes_angle_filter,
    sharing_lower_cutoff,
    sharing_upper_cutoff,
)


@pytest.fixture()
def cross_network() -> RoadNetwork:
    """Five nodes: a centre with one node in each cardinal direction."""
    network = RoadNetwork()
    network.add_node(0, 0.0, 0.0)     # centre
    network.add_node(1, 100.0, 0.0)   # east
    network.add_node(2, -100.0, 0.0)  # west
    network.add_node(3, 0.0, 100.0)   # north
    network.add_node(4, 0.0, -100.0)  # south
    return network


def _request(rid: int, source: int, destination: int) -> Request:
    return Request(release_time=0.0, request_id=rid, source=source,
                   destination=destination, deadline=1000.0, direct_cost=10.0)


class TestGeometry:
    def test_parallel_directions_have_zero_angle(self, cross_network):
        anchor = _request(1, 2, 1)      # westbound node to east
        candidate = _request(2, 0, 1)   # centre to east
        assert direction_angle(cross_network, anchor, candidate) == pytest.approx(0.0)

    def test_opposite_directions_have_pi_angle(self, cross_network):
        anchor = _request(1, 0, 2)      # anchor heads west; from s_b the anchor's
        candidate = _request(2, 0, 1)   # destination is west, candidate's is east
        angle = direction_angle(cross_network, candidate, anchor)
        assert angle == pytest.approx(math.pi)

    def test_perpendicular_directions(self, cross_network):
        anchor = _request(1, 0, 3)
        candidate = _request(2, 0, 1)
        angle = direction_angle(cross_network, anchor, candidate)
        assert angle == pytest.approx(math.pi / 2.0)

    def test_degenerate_vector_gives_zero(self, cross_network):
        anchor = _request(1, 0, 1)
        candidate = _request(2, 1, 1)   # source equals destination of anchor
        assert direction_angle(cross_network, anchor, candidate) == 0.0

    def test_filter_threshold(self, cross_network):
        anchor = _request(1, 0, 3)
        aligned = _request(2, 0, 3)
        perpendicular = _request(3, 0, 1)
        assert passes_angle_filter(cross_network, anchor, aligned, math.pi / 2)
        # Perpendicular pair: angle pi/2 exceeds delta/2 = pi/4.
        assert not passes_angle_filter(cross_network, anchor, perpendicular, math.pi / 2)
        # Disabling the filter keeps every pair.
        assert passes_angle_filter(cross_network, anchor, perpendicular, None)


class TestLogNormalFit:
    def test_fit_recovers_parameters(self):
        rng = random.Random(3)
        mu, sigma = math.log(400.0), 0.5
        samples = [rng.lognormvariate(mu, sigma) for _ in range(4000)]
        fitted_mu, fitted_sigma = fit_lognormal(samples)
        assert fitted_mu == pytest.approx(mu, abs=0.05)
        assert fitted_sigma == pytest.approx(sigma, abs=0.05)

    def test_fit_requires_two_positive_samples(self):
        with pytest.raises(ConfigurationError):
            fit_lognormal([5.0])
        with pytest.raises(ConfigurationError):
            fit_lognormal([-1.0, 0.0])


class TestCutoffs:
    def test_upper_cutoff_decreases_with_angle(self):
        small = sharing_upper_cutoff(200.0, 0.2, 1.5)
        large = sharing_upper_cutoff(200.0, 2.5, 1.5)
        assert small > large

    def test_lower_cutoff_increases_with_angle(self):
        small = sharing_lower_cutoff(200.0, 0.2, 1.5)
        large = sharing_lower_cutoff(200.0, 2.5, 1.5)
        assert small < large

    def test_cutoffs_require_valid_gamma(self):
        with pytest.raises(ConfigurationError):
            sharing_upper_cutoff(100.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            sharing_lower_cutoff(100.0, 1.0, 0.9)


class TestExpectedProbability:
    def test_matches_paper_ballpark_at_pi_over_2(self):
        """The paper reports ~41% for theta = pi/2 and gamma = 1.5."""
        probability = expected_sharing_probability(
            mu=math.log(400.0), sigma=0.6, theta=math.pi / 2.0, gamma=1.5
        )
        assert 0.2 <= probability <= 0.65

    def test_probability_decreases_with_angle(self):
        mu, sigma = math.log(400.0), 0.6
        aligned = expected_sharing_probability(mu, sigma, 0.3, 1.5)
        perpendicular = expected_sharing_probability(mu, sigma, math.pi / 2, 1.5)
        opposite = expected_sharing_probability(mu, sigma, 2.8, 1.5)
        assert aligned >= perpendicular >= opposite

    def test_probability_increases_with_gamma(self):
        mu, sigma = math.log(400.0), 0.6
        tight = expected_sharing_probability(mu, sigma, math.pi / 2, 1.2)
        loose = expected_sharing_probability(mu, sigma, math.pi / 2, 2.0)
        assert loose >= tight

    def test_probability_is_a_probability(self):
        value = expected_sharing_probability(math.log(300), 0.4, 1.0, 1.5)
        assert 0.0 <= value <= 1.0

    def test_invalid_sigma(self):
        with pytest.raises(ConfigurationError):
            expected_sharing_probability(1.0, 0.0, 1.0, 1.5)
