"""Tests for schedules: feasibility constraints and buffer times."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ScheduleError
from repro.model.schedule import Schedule, Waypoint, WaypointKind


class TestStructure:
    def test_direct_schedule(self, make_line_request):
        request = make_line_request(1, 0, 3)
        schedule = Schedule.direct(request)
        assert len(schedule) == 2
        assert schedule.nodes() == [0, 3]
        assert schedule.request_ids() == {1}
        assert schedule.satisfies_order()

    def test_order_violations_detected(self, make_line_request):
        request = make_line_request(1, 0, 3)
        pickup = Waypoint(request, WaypointKind.PICKUP)
        dropoff = Waypoint(request, WaypointKind.DROPOFF)
        assert not Schedule((dropoff, pickup)).satisfies_order()
        assert not Schedule((pickup, pickup, dropoff)).satisfies_order()
        assert not Schedule((pickup,)).satisfies_order()

    def test_dropoff_only_means_onboard(self, make_line_request):
        request = make_line_request(1, 0, 3)
        schedule = Schedule((Waypoint(request, WaypointKind.DROPOFF),))
        assert schedule.satisfies_order()
        assert schedule.onboard_request_ids() == {1}

    def test_requests_and_equality(self, make_line_request):
        a = make_line_request(1, 0, 2)
        b = make_line_request(2, 1, 3)
        schedule = Schedule.direct(a).with_insertion(b, 1, 2)
        assert {r.request_id for r in schedule.requests()} == {1, 2}
        assert schedule == Schedule(schedule.waypoints)
        assert hash(schedule) == hash(Schedule(schedule.waypoints))


class TestEvaluation:
    def test_direct_trip_cost(self, make_line_request, line_oracle):
        request = make_line_request(1, 0, 3)
        schedule = Schedule.direct(request)
        result = schedule.evaluate(line_oracle, origin=0, departure_time=0.0, capacity=3)
        assert result.feasible
        assert result.travel_cost == pytest.approx(30.0)
        assert result.arrival_times == (0.0, 30.0)

    def test_waits_for_release_time(self, make_line_request, line_oracle):
        request = make_line_request(1, 1, 3, release_time=50.0)
        schedule = Schedule.direct(request)
        result = schedule.evaluate(line_oracle, origin=0, departure_time=0.0, capacity=3)
        assert result.feasible
        # Arrives at the source after 10 s but must wait until t=50.
        assert result.arrival_times[0] == pytest.approx(50.0)
        assert result.arrival_times[1] == pytest.approx(70.0)

    def test_deadline_violation(self, make_line_request, line_oracle):
        request = make_line_request(1, 0, 2, gamma=1.2)  # deadline = 24
        schedule = Schedule.direct(request)
        # Starting far away blows the pick-up deadline immediately.
        late = schedule.evaluate(line_oracle, origin=4, departure_time=20.0, capacity=3)
        assert not late.feasible
        assert "deadline" in late.reason

    def test_capacity_violation(self, make_line_request, line_oracle):
        a = make_line_request(1, 0, 4, riders=2)
        b = make_line_request(2, 1, 3, riders=2)
        shared = Schedule.direct(a).with_insertion(b, 1, 2)
        tight = shared.evaluate(line_oracle, origin=0, departure_time=0.0, capacity=3)
        assert not tight.feasible
        assert "capacity" in tight.reason
        roomy = shared.evaluate(line_oracle, origin=0, departure_time=0.0, capacity=4)
        assert roomy.feasible

    def test_initial_load_counts_against_capacity(self, make_line_request, line_oracle):
        request = make_line_request(1, 0, 2, riders=2)
        schedule = Schedule.direct(request)
        result = schedule.evaluate(
            line_oracle, origin=0, departure_time=0.0, capacity=3, initial_load=2
        )
        assert not result.feasible

    def test_unreachable_waypoint(self, line_network, make_line_request):
        from repro.network.road_network import RoadNetwork
        from repro.network.shortest_path import DistanceOracle

        disconnected = RoadNetwork()
        disconnected.add_node(0, 0, 0)
        disconnected.add_node(1, 100, 0)
        oracle = DistanceOracle(disconnected)
        request = make_line_request(1, 0, 1)
        schedule = Schedule.direct(request)
        result = schedule.evaluate(oracle, origin=0, departure_time=0.0, capacity=3)
        assert not result.feasible
        assert math.isinf(result.travel_cost)

    def test_travel_cost_without_feasibility(self, make_line_request, line_oracle):
        request = make_line_request(1, 0, 3)
        schedule = Schedule.direct(request)
        assert schedule.travel_cost(line_oracle, origin=1) == pytest.approx(10.0 + 30.0)

    def test_empty_schedule(self, line_oracle):
        schedule = Schedule.empty()
        result = schedule.evaluate(line_oracle, origin=0, departure_time=0.0, capacity=1)
        assert result.feasible
        assert result.travel_cost == 0.0
        assert schedule.buffer_times(line_oracle, 0, 0.0) == []


class TestBufferTimes:
    def test_buffer_times_definition3(self, make_line_request, line_oracle):
        request = make_line_request(1, 0, 3, gamma=2.0, max_wait=1000.0)
        schedule = Schedule.direct(request)
        buffers = schedule.buffer_times(line_oracle, origin=0, departure_time=0.0)
        # Drop-off arrives at t=30 with deadline 60 -> slack 30; the pick-up's
        # buffer is bounded by the drop-off slack.
        assert buffers[1] == pytest.approx(30.0)
        assert buffers[0] == pytest.approx(30.0)

    def test_buffers_non_increasing_towards_front(self, make_line_request, line_oracle):
        a = make_line_request(1, 0, 4, gamma=1.8, max_wait=500.0)
        b = make_line_request(2, 1, 3, gamma=1.8, max_wait=500.0)
        schedule = Schedule.direct(a).with_insertion(b, 1, 2)
        buffers = schedule.buffer_times(line_oracle, origin=0, departure_time=0.0)
        for earlier, later in zip(buffers, buffers[1:]):
            assert earlier <= later + 1e-9


class TestEditing:
    def test_with_insertion_positions(self, make_line_request):
        a = make_line_request(1, 0, 4)
        b = make_line_request(2, 1, 3)
        schedule = Schedule.direct(a)
        extended = schedule.with_insertion(b, 1, 2)
        assert extended.nodes() == [0, 1, 3, 4]
        assert len(schedule) == 2  # original untouched

    def test_with_insertion_invalid_positions(self, make_line_request):
        a = make_line_request(1, 0, 4)
        b = make_line_request(2, 1, 3)
        schedule = Schedule.direct(a)
        with pytest.raises(ScheduleError):
            schedule.with_insertion(b, 3, 4)
        with pytest.raises(ScheduleError):
            schedule.with_insertion(b, 1, 1)

    def test_without_request(self, make_line_request):
        a = make_line_request(1, 0, 4)
        b = make_line_request(2, 1, 3)
        schedule = Schedule.direct(a).with_insertion(b, 1, 2)
        assert schedule.without_request(2) == Schedule.direct(a)

    def test_extended(self, make_line_request):
        a = make_line_request(1, 0, 4)
        schedule = Schedule.empty().extended(Schedule.direct(a).waypoints)
        assert schedule == Schedule.direct(a)
