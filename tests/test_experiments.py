"""Tests for the experiment harness, reporting and figure definitions."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import figures
from repro.experiments.harness import ExperimentRunner, ResultRow, SweepResult
from repro.experiments.reporting import format_rows, format_sweep, rows_to_csv


@pytest.fixture(scope="module")
def tiny_runner() -> ExperimentRunner:
    return ExperimentRunner(
        algorithms=("pruneGDP", "SARD"),
        request_fraction=0.0006,
        vehicle_fraction=0.02,
        city_scale=0.3,
    )


@pytest.fixture(scope="module")
def gamma_sweep(tiny_runner: ExperimentRunner) -> SweepResult:
    return tiny_runner.sweep("nyc", "gamma", (1.3, 1.8))


class TestRunner:
    def test_sweep_produces_row_per_algorithm_and_value(self, gamma_sweep: SweepResult):
        assert len(gamma_sweep.rows) == 4
        assert gamma_sweep.algorithms() == ["pruneGDP", "SARD"]
        assert gamma_sweep.values() == [1.3, 1.8]

    def test_rows_have_sane_metrics(self, gamma_sweep: SweepResult):
        for row in gamma_sweep.rows:
            assert 0.0 <= row.service_rate <= 1.0
            assert row.unified_cost > 0
            assert row.running_time >= 0
            assert row.total_requests > 0
            assert row.dataset == "NYC"

    def test_series_grouping(self, gamma_sweep: SweepResult):
        series = gamma_sweep.series("service_rate")
        assert set(series) == {"pruneGDP", "SARD"}
        assert [value for value, _ in series["SARD"]] == [1.3, 1.8]

    def test_row_lookup(self, gamma_sweep: SweepResult):
        row = gamma_sweep.row_for("SARD", 1.8)
        assert row.algorithm == "SARD"
        with pytest.raises(KeyError):
            gamma_sweep.row_for("SARD", 99.0)

    def test_metric_name_validation(self, gamma_sweep: SweepResult):
        row = gamma_sweep.rows[0]
        assert row.metric("memory") == float(row.peak_memory_bytes)
        with pytest.raises(ConfigurationError):
            row.metric("latency")

    def test_unknown_parameter_rejected(self, tiny_runner: ExperimentRunner):
        with pytest.raises(ConfigurationError):
            tiny_runner.sweep("nyc", "weather", (1,))

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(request_fraction=0.0)

    def test_vehicle_sweep_scales_fleet(self, tiny_runner: ExperimentRunner):
        sweep = tiny_runner.sweep("nyc", "num_vehicles", (1_000, 5_000),
                                  algorithms=("pruneGDP",))
        small, large = sweep.rows
        # More vehicles never hurts the service rate on the same trace.
        assert large.service_rate >= small.service_rate - 1e-9


class TestReporting:
    def test_format_rows_contains_all_cells(self, gamma_sweep: SweepResult):
        text = format_rows(gamma_sweep.rows, title="Gamma sweep")
        assert "Gamma sweep" in text
        assert "SARD" in text and "pruneGDP" in text
        assert "service_rate" in text

    def test_format_sweep_matrix(self, gamma_sweep: SweepResult):
        text = format_sweep(gamma_sweep, metric="service_rate")
        assert "SARD" in text
        assert "1.3" in text and "1.8" in text

    def test_csv_round_trip(self, tmp_path, gamma_sweep: SweepResult):
        path = tmp_path / "rows.csv"
        text = rows_to_csv(gamma_sweep.rows, path)
        assert path.exists()
        lines = text.strip().splitlines()
        assert len(lines) == 1 + len(gamma_sweep.rows)
        assert lines[0].startswith("dataset,algorithm")


class TestFigureDefinitions:
    def test_paper_grids_match_tables(self):
        assert figures.PAPER_GAMMAS == (1.2, 1.3, 1.5, 1.8, 2.0)
        assert figures.PAPER_CAPACITIES == (2, 3, 4, 5, 6)
        assert figures.PAPER_NUM_VEHICLES == (1_000, 2_000, 3_000, 4_000, 5_000)
        assert figures.PAPER_PENALTIES == (2, 5, 10, 20, 30)
        assert figures.PAPER_BATCH_PERIODS == (1, 3, 5, 7, 9)

    def test_figure10_structure(self, tiny_runner: ExperimentRunner):
        result = figures.figure10(values=(1.5,), presets=("nyc",), runner=tiny_runner,
                                  algorithms=("pruneGDP", "SARD"))
        assert set(result.sweeps) == {"nyc"}
        assert len(result.all_rows()) == 2

    def test_angle_pruning_ablation_rows(self):
        rows = figures.angle_pruning_ablation(
            presets=("nyc",), request_fraction=0.0006, vehicle_fraction=0.02
        )
        assert [row.method for row in rows] == ["SARD", "SARD-O"]
        for row in rows:
            assert 0.0 <= row.service_rate <= 1.0
            assert row.shortest_path_queries > 0
        # Angle pruning must not issue more shortest-path queries.
        assert rows[1].shortest_path_queries <= rows[0].shortest_path_queries * 1.05

    def test_angle_expectation_study_matches_paper_ballpark(self):
        study = figures.angle_expectation_study(num_requests=200)
        assert 0.0 <= study["expected_probability"] <= 1.0
        assert study["gamma"] == 1.5

    def test_insertion_order_study_outputs_probabilities(self):
        rows = figures.insertion_order_study(
            num_requests=120, group_sizes=(3,), samples_per_size=5, seed=2
        )
        for row in rows:
            assert 0.0 <= row.release_order_optimal <= 1.0
            assert 0.0 <= row.shareability_order_optimal <= 1.0
            assert row.samples > 0
