"""Tests for the request data model (Definition 1)."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.exceptions import ConfigurationError
from repro.model.request import Request


class TestCreation:
    def test_create_derives_deadline_from_gamma(self):
        request = Request.create(
            request_id=1, source=0, destination=5, release_time=100.0,
            direct_cost=200.0, gamma=1.5,
        )
        assert request.deadline == pytest.approx(100.0 + 1.5 * 200.0)
        assert request.direct_cost == 200.0

    def test_create_requires_gamma_above_one(self):
        with pytest.raises(ConfigurationError):
            Request.create(
                request_id=1, source=0, destination=5, release_time=0.0,
                direct_cost=10.0, gamma=1.0,
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Request(release_time=0.0, request_id=1, source=0, destination=1, riders=0)
        with pytest.raises(ConfigurationError):
            Request(release_time=0.0, request_id=1, source=0, destination=1,
                    direct_cost=-1.0)
        with pytest.raises(ConfigurationError):
            Request(release_time=10.0, request_id=1, source=0, destination=1,
                    deadline=5.0)
        with pytest.raises(ConfigurationError):
            Request(release_time=0.0, request_id=1, source=0, destination=1,
                    max_wait=-5.0)

    def test_requests_sort_by_release_time(self):
        early = Request(release_time=1.0, request_id=9, source=0, destination=1)
        late = Request(release_time=2.0, request_id=1, source=0, destination=1)
        assert sorted([late, early]) == [early, late]


class TestDeadlines:
    def test_latest_pickup_limited_by_waiting_time(self):
        request = Request.create(
            request_id=1, source=0, destination=1, release_time=0.0,
            direct_cost=100.0, gamma=2.0, max_wait=30.0,
        )
        # deadline slack would allow 100 s, but the rider only waits 30 s.
        assert request.latest_pickup == pytest.approx(30.0)

    def test_latest_pickup_limited_by_deadline(self):
        request = Request.create(
            request_id=1, source=0, destination=1, release_time=0.0,
            direct_cost=100.0, gamma=1.2, max_wait=500.0,
        )
        assert request.latest_pickup == pytest.approx(20.0)

    def test_detour_budget(self):
        request = Request.create(
            request_id=1, source=0, destination=1, release_time=50.0,
            direct_cost=100.0, gamma=1.5,
        )
        assert request.detour_budget == pytest.approx(50.0)

    def test_expiry(self):
        request = Request.create(
            request_id=1, source=0, destination=1, release_time=0.0,
            direct_cost=100.0, gamma=1.5, max_wait=40.0,
        )
        assert not request.is_expired(39.9)
        assert request.is_expired(40.1)

    def test_defaults_allow_unbounded_wait(self):
        request = Request(release_time=0.0, request_id=1, source=0, destination=1,
                          deadline=100.0, direct_cost=60.0)
        assert request.latest_pickup == pytest.approx(40.0)


class TestIntegrationWithConfig:
    def test_factory_fixture_consistency(self, make_request, oracle, config: SimulationConfig):
        request = make_request(3, 0, 11, release_time=5.0)
        assert request.direct_cost == pytest.approx(oracle.cost(0, 11))
        assert request.deadline == pytest.approx(5.0 + config.gamma * request.direct_cost)
