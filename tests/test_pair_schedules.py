"""Tests for the two-request shareability predicate."""

from __future__ import annotations

import math

import pytest

from repro.insertion.pair_schedules import are_shareable, best_pair_schedule, pair_orderings


class TestOrderings:
    def test_three_candidate_orderings(self, make_request):
        a = make_request(1, 0, 5)
        b = make_request(2, 1, 4)
        orderings = pair_orderings(a, b)
        assert len(orderings) == 3
        for schedule in orderings:
            assert schedule.satisfies_order()
            assert schedule[0].request.request_id == 1
            assert schedule.request_ids() == {1, 2}


class TestShareability:
    def test_same_corridor_requests_are_shareable(self, make_request, oracle):
        a = make_request(1, 0, 4)      # eastbound along the bottom row
        b = make_request(2, 1, 5)      # same corridor, released together
        assert are_shareable(a, b, oracle, capacity=3)

    def test_symmetry(self, make_request, oracle):
        a = make_request(1, 0, 4)
        b = make_request(2, 1, 5)
        assert are_shareable(a, b, oracle) == are_shareable(b, a, oracle)

    def test_far_apart_tight_deadlines_not_shareable(self, make_request, oracle):
        a = make_request(1, 0, 1, gamma=1.2, max_wait=10.0)
        b = make_request(2, 35, 34, gamma=1.2, max_wait=10.0)
        assert not are_shareable(a, b, oracle, capacity=3)

    def test_capacity_blocks_sharing(self, make_request, oracle):
        a = make_request(1, 0, 4, riders=2)
        b = make_request(2, 1, 5, riders=2)
        assert not are_shareable(a, b, oracle, capacity=3)
        assert are_shareable(a, b, oracle, capacity=4)

    def test_sequential_service_counts_as_shareable(self, make_request, oracle):
        # Second request released much later and reachable after finishing the
        # first trip; only the sequential ordering <s_a, e_a, s_b, e_b> works.
        a = make_request(1, 0, 2, release_time=0.0)
        b = make_request(2, 2, 4, release_time=a.direct_cost + 5.0,
                         max_wait=60.0, gamma=2.0)
        schedule, cost = best_pair_schedule(a, b, oracle, capacity=3)
        assert schedule is not None
        assert math.isfinite(cost)

    def test_best_pair_schedule_returns_cheapest_feasible(self, make_request, oracle):
        a = make_request(1, 0, 4)
        b = make_request(2, 1, 5)
        schedule, cost = best_pair_schedule(a, b, oracle, capacity=3)
        assert schedule is not None
        evaluation = schedule.evaluate(
            oracle, origin=a.source, departure_time=a.release_time, capacity=3
        )
        assert evaluation.feasible
        assert cost == pytest.approx(evaluation.travel_cost)
        # No other anchored ordering is cheaper.
        for candidate in pair_orderings(a, b):
            result = candidate.evaluate(
                oracle, origin=a.source, departure_time=a.release_time, capacity=3
            )
            if result.feasible:
                assert cost <= result.travel_cost + 1e-9

    def test_infeasible_pair_returns_none_and_inf(self, make_request, oracle):
        a = make_request(1, 0, 1, gamma=1.2, max_wait=5.0)
        b = make_request(2, 35, 30, gamma=1.2, max_wait=5.0)
        schedule, cost = best_pair_schedule(a, b, oracle, capacity=3)
        assert schedule is None
        assert math.isinf(cost)
