"""Tests for the kinetic-tree exhaustive scheduler."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.insertion.kinetic_tree import KineticTreeScheduler
from repro.model.schedule import Schedule, Waypoint, WaypointKind
from repro.model.vehicle import RouteState


def _route(location: int, *, capacity: int = 4, schedule: Schedule | None = None,
           min_insert: int = 0, time: float = 0.0) -> RouteState:
    return RouteState(
        vehicle_id=7,
        origin=location,
        departure_time=time,
        schedule=schedule or Schedule.empty(),
        capacity=capacity,
        onboard=0,
        min_insert_position=min_insert,
    )


def _brute_force_optimum(route, requests, oracle) -> float:
    """Enumerate every stop permutation explicitly (reference implementation)."""
    stops = []
    for request in requests:
        stops.append(Waypoint(request, WaypointKind.PICKUP))
        stops.append(Waypoint(request, WaypointKind.DROPOFF))
    best = math.inf
    for permutation in itertools.permutations(stops):
        schedule = Schedule(permutation)
        if not schedule.satisfies_order():
            continue
        result = schedule.evaluate(
            oracle, route.origin, route.departure_time,
            capacity=route.capacity, initial_load=route.onboard,
        )
        if result.feasible:
            best = min(best, result.travel_cost)
    return best


class TestOptimality:
    def test_matches_brute_force_two_requests(self, make_request, oracle):
        requests = [make_request(1, 0, 14), make_request(2, 1, 20)]
        scheduler = KineticTreeScheduler(oracle)
        route = _route(0)
        expected = _brute_force_optimum(route, requests, oracle)
        assert scheduler.optimal_cost(route, requests) == pytest.approx(expected)

    def test_matches_brute_force_three_requests(self, make_request, oracle):
        requests = [
            make_request(1, 0, 14, max_wait=400.0),
            make_request(2, 1, 15, max_wait=400.0),
            make_request(3, 6, 21, max_wait=400.0),
        ]
        scheduler = KineticTreeScheduler(oracle)
        route = _route(0, capacity=6)
        expected = _brute_force_optimum(route, requests, oracle)
        result = scheduler.optimal_cost(route, requests)
        assert result == pytest.approx(expected)

    def test_returns_none_when_infeasible(self, make_line_request, line_oracle):
        impossible = make_line_request(1, 4, 0, gamma=1.1, max_wait=1.0)
        scheduler = KineticTreeScheduler(line_oracle)
        assert scheduler.optimal_schedule(_route(0), [impossible]) is None
        assert math.isinf(scheduler.optimal_cost(_route(0), [impossible]))

    def test_schedule_is_feasible_and_complete(self, make_request, oracle):
        requests = [
            make_request(1, 3, 18, gamma=2.0, max_wait=400.0),
            make_request(2, 4, 22, gamma=2.0, max_wait=400.0),
        ]
        scheduler = KineticTreeScheduler(oracle)
        schedule = scheduler.optimal_schedule(_route(2), requests)
        assert schedule is not None
        assert schedule.request_ids() == {1, 2}
        evaluation = schedule.evaluate(oracle, 2, 0.0, capacity=4)
        assert evaluation.feasible

    def test_never_worse_than_linear_insertion(self, make_request, oracle):
        from repro.insertion.linear_insertion import insert_sequence

        requests = [make_request(i, i, 20 + i, max_wait=400.0) for i in range(1, 4)]
        route = _route(0, capacity=6)
        scheduler = KineticTreeScheduler(oracle)
        optimal = scheduler.optimal_cost(route, requests)
        linear = insert_sequence(route, requests, oracle)
        if linear.feasible:
            assert optimal <= linear.total_cost + 1e-9


class TestConstraints:
    def test_committed_stop_stays_first(self, make_line_request, line_oracle):
        committed = make_line_request(1, 1, 3, max_wait=1000.0, gamma=2.0)
        base = Schedule.direct(committed)
        newcomer = make_line_request(2, 3, 4, release_time=20.0,
                                     max_wait=1000.0, gamma=3.0)
        scheduler = KineticTreeScheduler(line_oracle)
        schedule = scheduler.optimal_schedule(
            _route(0, schedule=base, min_insert=1), [newcomer]
        )
        assert schedule is not None
        assert schedule[0].request.request_id == 1
        assert schedule[0].kind is WaypointKind.PICKUP

    def test_empty_input_returns_empty_schedule(self, oracle):
        scheduler = KineticTreeScheduler(oracle)
        assert scheduler.optimal_schedule(_route(0), []) == Schedule.empty()

    def test_max_stops_guard(self, make_request, oracle):
        scheduler = KineticTreeScheduler(oracle, max_stops=4)
        requests = [make_request(i, 0, 10 + i) for i in range(1, 5)]
        with pytest.raises(ValueError):
            scheduler.optimal_schedule(_route(0), requests)
