"""Tests for the dynamic shareability-graph builder (Algorithm 1)."""

from __future__ import annotations

import math

import pytest

from repro.config import SimulationConfig
from repro.insertion.pair_schedules import are_shareable
from repro.shareability.builder import DynamicShareabilityGraphBuilder


@pytest.fixture()
def builder(grid_network, oracle, config: SimulationConfig) -> DynamicShareabilityGraphBuilder:
    return DynamicShareabilityGraphBuilder(network=grid_network, oracle=oracle, config=config)


class TestConstruction:
    def test_single_request_has_no_edges(self, builder, make_request):
        builder.update([make_request(1, 0, 5)])
        assert builder.graph.num_nodes == 1
        assert builder.graph.num_edges == 0

    def test_edges_are_sound(self, builder, make_request, oracle, config):
        """Every edge the builder adds corresponds to a truly shareable pair."""
        requests = [
            make_request(1, 0, 4),
            make_request(2, 1, 5),
            make_request(3, 30, 35),
            make_request(4, 6, 10),
        ]
        builder.update(requests)
        by_id = {r.request_id: r for r in requests}
        for u, v in builder.graph.edges():
            assert are_shareable(by_id[u], by_id[v], oracle, capacity=config.capacity)

    def test_colinear_requests_connected(self, builder, make_request):
        builder.update([make_request(1, 0, 4), make_request(2, 1, 5)])
        assert builder.graph.has_edge(1, 2)

    def test_incremental_update_adds_only_new_nodes(self, builder, make_request):
        first = [make_request(1, 0, 4)]
        second = [make_request(2, 1, 5)]
        builder.update(first)
        builder.update(second)
        assert builder.graph.num_nodes == 2
        assert builder.graph.has_edge(1, 2)
        # Re-inserting an existing request is a no-op.
        builder.update(first)
        assert builder.graph.num_nodes == 2

    def test_remove_drops_nodes_and_index_entries(self, builder, make_request):
        requests = [make_request(1, 0, 4), make_request(2, 1, 5)]
        builder.update(requests)
        builder.remove([1])
        assert 1 not in builder.graph
        assert builder.graph.num_edges == 0
        # Removing again (or removing unknown ids) is harmless.
        builder.remove([1, 99])

    def test_reset_clears_everything(self, builder, make_request):
        builder.update([make_request(1, 0, 4), make_request(2, 1, 5)])
        builder.reset()
        assert builder.graph.num_nodes == 0
        assert builder.stats.pairs_tested == 0


class TestPruning:
    def test_angle_pruning_reduces_pair_tests(self, grid_network, oracle, config, make_request):
        requests = [make_request(i, i % 6, 30 + (i % 6), release_time=float(i % 3))
                    for i in range(1, 25)]
        no_pruning = DynamicShareabilityGraphBuilder(
            network=grid_network, oracle=oracle,
            config=config.with_overrides(angle_threshold=None),
        )
        no_pruning.update(requests)
        with_pruning = DynamicShareabilityGraphBuilder(
            network=grid_network, oracle=oracle,
            config=config.with_overrides(angle_threshold=math.pi / 2),
        )
        with_pruning.update(requests)
        assert with_pruning.stats.pairs_tested <= no_pruning.stats.pairs_tested
        assert with_pruning.graph.num_edges <= no_pruning.graph.num_edges

    def test_temporal_window_filter(self, builder, make_request):
        """Requests whose pick-up windows cannot overlap are never connected."""
        early = make_request(1, 0, 4, release_time=0.0, max_wait=10.0)
        late = make_request(2, 1, 5, release_time=500.0, max_wait=10.0)
        builder.update([early, late])
        assert not builder.graph.has_edge(1, 2)

    def test_statistics_accumulate(self, builder, make_request):
        builder.update([make_request(1, 0, 4), make_request(2, 1, 5)])
        stats = builder.stats
        assert stats.pairs_tested >= 1
        assert stats.edges_added == builder.graph.num_edges
        assert stats.shortest_path_queries > 0

    def test_stats_merge(self):
        from repro.shareability.builder import BuilderStatistics

        a = BuilderStatistics(pairs_tested=2, edges_added=1)
        b = BuilderStatistics(pairs_tested=3, edges_added=2, pruned_by_angle=4)
        a.merge(b)
        assert a.pairs_tested == 5
        assert a.edges_added == 3
        assert a.pruned_by_angle == 4
