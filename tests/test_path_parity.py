"""Backend path-parity suite: exact ``path()`` on every routing backend.

The preprocessed backends answer ``path(u, v)`` natively (CH meeting-node
extraction + recursive shortcut unpacking) instead of falling back to a graph
search.  The contract, checked against the ``dijkstra`` reference on grid and
ring-radial cities, random directed networks and tie-heavy equal-weight
graphs: the returned node sequence starts at ``u``, ends at ``v``, follows
only real network edges, and its summed edge cost equals ``cost(u, v)``
exactly -- with ``UnreachableError`` raised uniformly for unreachable pairs.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import UnreachableError
from repro.network.generators import grid_city, ring_radial_city
from repro.network.road_network import RoadNetwork
from repro.network.routing import CSRGraph, GraphSearchBackend
from repro.network.shortest_path import DistanceOracle

ALL_BACKENDS = ("dijkstra", "alt", "ch", "hub_label")


def _random_network(num_nodes: int, density: float, seed: int) -> RoadNetwork:
    rng = random.Random(seed)
    network = RoadNetwork()
    for node in range(num_nodes):
        network.add_node(node, rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
    for u in range(num_nodes):
        for v in range(num_nodes):
            if u != v and rng.random() < density:
                network.add_edge(u, v, rng.uniform(1.0, 100.0))
    return network


def _tie_grid(side: int) -> RoadNetwork:
    """Equal-weight grid: every shortest path has many equal-cost siblings."""
    network = RoadNetwork()
    for node in range(side * side):
        network.add_node(node, float(node % side) * 100.0, float(node // side) * 100.0)
    for r in range(side):
        for c in range(side):
            i = r * side + c
            if c < side - 1:
                network.add_edge(i, i + 1, 10.0, bidirectional=True)
            if r < side - 1:
                network.add_edge(i, i + side, 10.0, bidirectional=True)
    return network


def _assert_exact_path(network: RoadNetwork, oracle: DistanceOracle,
                       reference: DistanceOracle, u: int, v: int) -> None:
    expected = reference.cost(u, v)
    path = oracle.path(u, v)
    assert path[0] == u and path[-1] == v
    total = 0.0
    for a, b in zip(path, path[1:]):
        assert network.has_edge(a, b), (oracle.backend_name, u, v, a, b)
        total += network.edge_cost(a, b)
    assert total == pytest.approx(expected, abs=1e-9), (oracle.backend_name, u, v)
    # The facade must agree with itself, not just with the reference.
    assert oracle.cost(u, v) == pytest.approx(total, abs=1e-9)


class TestPathParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_grid_city_paths_exact(self, backend):
        city = grid_city(7, 7, block_length=120.0, perturbation=0.3, seed=17)
        reference = DistanceOracle(city, cache_size=0)
        oracle = DistanceOracle(city, cache_size=0, backend=backend)
        rng = random.Random(5)
        nodes = list(city.nodes())
        for u, v in (tuple(rng.sample(nodes, 2)) for _ in range(80)):
            _assert_exact_path(city, oracle, reference, u, v)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_ring_radial_city_paths_exact(self, backend):
        city = ring_radial_city(4, 12)
        reference = DistanceOracle(city, cache_size=0)
        oracle = DistanceOracle(city, cache_size=0, backend=backend)
        rng = random.Random(6)
        nodes = list(city.nodes())
        for u, v in (tuple(rng.sample(nodes, 2)) for _ in range(80)):
            _assert_exact_path(city, oracle, reference, u, v)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_tie_heavy_equal_weight_paths_exact(self, backend):
        network = _tie_grid(5)
        reference = DistanceOracle(network, cache_size=0)
        oracle = DistanceOracle(network, cache_size=0, backend=backend)
        for u in range(25):
            for v in range(25):
                if u != v:
                    _assert_exact_path(network, oracle, reference, u, v)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_unreachable_pair_raises(self, backend):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 10.0, 0.0)
        network.add_node(2, 20.0, 0.0)
        network.add_edge(0, 1, 5.0)  # node 2 is isolated
        oracle = DistanceOracle(network, backend=backend)
        with pytest.raises(UnreachableError):
            oracle.path(0, 2)
        assert math.isinf(oracle.cost(0, 2))
        assert oracle.path(0, 1) == [0, 1]

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_nodes=st.integers(min_value=6, max_value=22),
        density=st.floats(min_value=0.05, max_value=0.3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_paths_match_dijkstra(self, num_nodes, density, seed):
        network = _random_network(num_nodes, density, seed)
        reference = DistanceOracle(network, cache_size=0)
        oracles = [
            DistanceOracle(network, cache_size=0, backend=b)
            for b in ("ch", "hub_label")
        ]
        for u in range(num_nodes):
            for v in range(num_nodes):
                if u == v:
                    continue
                expected = reference.cost(u, v)
                for oracle in oracles:
                    if math.isinf(expected):
                        with pytest.raises(UnreachableError):
                            oracle.path(u, v)
                    else:
                        _assert_exact_path(network, oracle, reference, u, v)


class TestNativePreprocessedPaths:
    @pytest.mark.parametrize("backend", ("ch", "hub_label"))
    def test_no_graph_search_fallback(self, grid_network, backend, monkeypatch):
        """Regression: ``path()`` on preprocessed backends must not re-run a
        CSR graph search (the pre-unpacking fallback)."""
        oracle = DistanceOracle(grid_network, backend=backend)

        def _boom(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("path() fell back to a graph search")

        monkeypatch.setattr(GraphSearchBackend, "search", _boom)
        monkeypatch.setattr(GraphSearchBackend, "search_multi", _boom)
        path = oracle.path(0, 35)
        assert path[0] == 0 and path[-1] == 35

    def test_path_distance_lands_in_pair_cache(self, grid_network):
        oracle = DistanceOracle(grid_network, backend="ch")
        path = oracle.path(0, 35)
        searches = oracle.stats.searches
        cost = oracle.cost(0, 35)
        assert oracle.stats.searches == searches  # answered from the cache
        assert oracle.stats.cache_hits >= 1
        assert cost == pytest.approx(
            sum(grid_network.edge_cost(a, b) for a, b in zip(path, path[1:]))
        )

    def test_shortcut_middles_recorded(self):
        from repro.network.routing import routing_data

        # Jittered weights: a uniform grid needs no shortcuts at all
        # (every candidate has an equal-cost witness).
        city = grid_city(7, 7, block_length=120.0, perturbation=0.3, seed=17)
        hierarchy = routing_data(city).hierarchy
        assert hierarchy.num_shortcuts > 0
        assert len(hierarchy.shortcut_middle) >= 1
        n = hierarchy.csr.num_nodes
        for (u, x), m in hierarchy.shortcut_middle.items():
            assert 0 <= m < n and m != u and m != x
            # The middle was contracted before both endpoints.
            assert hierarchy.rank[m] < hierarchy.rank[u]
            assert hierarchy.rank[m] < hierarchy.rank[x]


class TestCSRSettledGuard:
    def test_sssp_never_resettles_on_equal_distance_ties(self):
        """Regression: duplicate heap entries tying on distance must not
        re-settle a node (it inflated ``settled_nodes`` accounting and redid
        cache writes)."""
        network = _tie_grid(5)
        csr = CSRGraph.from_network(network)
        for source in range(csr.num_nodes):
            dist, settled = csr.sssp(source)
            assert len(settled) == len(set(settled))
            assert len(settled) == csr.num_nodes  # connected grid
        # Also with early termination on a target set.
        _, settled = csr.sssp(0, targets={csr.num_nodes - 1})
        assert len(settled) == len(set(settled))

    def test_settled_count_not_inflated_through_oracle(self):
        network = _tie_grid(4)
        oracle = DistanceOracle(network, cache_size=0)
        oracle.many_to_many([0], [15])
        assert oracle.stats.settled_nodes <= network.num_nodes
