"""Tests for the modified additive tree (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.grouping.additive_tree import GroupingStatistics, best_group_by, build_groups
from repro.grouping.group import RequestGroup
from repro.model.schedule import Schedule
from repro.model.vehicle import RouteState
from repro.shareability.builder import DynamicShareabilityGraphBuilder
from repro.shareability.graph import ShareabilityGraph


def _route(location: int, *, capacity: int = 3, time: float = 0.0) -> RouteState:
    return RouteState(
        vehicle_id=1, origin=location, departure_time=time,
        schedule=Schedule.empty(), capacity=capacity, onboard=0,
    )


@pytest.fixture()
def shareability(grid_network, oracle, config):
    def _build(requests):
        builder = DynamicShareabilityGraphBuilder(
            network=grid_network, oracle=oracle,
            config=config.with_overrides(angle_threshold=None),
        )
        builder.update(requests)
        return builder.graph
    return _build


class TestAdditiveTree:
    def test_singleton_groups_for_feasible_requests(self, make_request, oracle, shareability):
        requests = [make_request(1, 0, 4), make_request(2, 30, 35)]
        graph = shareability(requests)
        groups = build_groups(requests, graph, _route(0), oracle, max_group_size=1)
        members = {frozenset(g.members) for g in groups}
        assert frozenset({1}) in members
        assert all(g.size == 1 for g in groups)

    def test_infeasible_singletons_are_dropped(self, make_request, oracle, shareability):
        reachable = make_request(1, 0, 4)
        unreachable = make_request(2, 35, 30, gamma=1.2, max_wait=5.0)
        graph = shareability([reachable, unreachable])
        stats = GroupingStatistics()
        groups = build_groups([reachable, unreachable], graph, _route(0), oracle,
                              max_group_size=3, stats=stats)
        assert {frozenset(g.members) for g in groups if g.size == 1} == {frozenset({1})}
        assert stats.pruned_infeasible >= 1

    def test_pairs_require_shareability_edge(self, make_request, oracle):
        requests = [make_request(1, 0, 4), make_request(2, 1, 5)]
        empty_graph = ShareabilityGraph()
        for request in requests:
            empty_graph.add_request(request)
        groups = build_groups(requests, empty_graph, _route(0), oracle, max_group_size=3)
        assert all(g.size == 1 for g in groups)

    def test_pair_groups_built_along_corridor(self, make_request, oracle, shareability):
        requests = [make_request(1, 0, 4), make_request(2, 1, 5)]
        graph = shareability(requests)
        groups = build_groups(requests, graph, _route(0), oracle, max_group_size=3)
        sizes = {g.size for g in groups}
        assert 2 in sizes
        pair = next(g for g in groups if g.size == 2)
        evaluation = pair.schedule.evaluate(oracle, 0, 0.0, capacity=3)
        assert evaluation.feasible
        assert pair.members == frozenset({1, 2})

    def test_group_size_never_exceeds_limit(self, make_request, oracle, shareability):
        requests = [make_request(i, i, 24 + i, gamma=2.0) for i in range(1, 6)]
        graph = shareability(requests)
        groups = build_groups(requests, graph, _route(0), oracle, max_group_size=2)
        assert groups
        assert max(g.size for g in groups) <= 2

    def test_delta_costs_are_consistent(self, make_request, oracle, shareability):
        requests = [make_request(1, 0, 4), make_request(2, 1, 5)]
        graph = shareability(requests)
        route = _route(0)
        groups = build_groups(requests, graph, route, oracle, max_group_size=3)
        for group in groups:
            total = group.schedule.travel_cost(oracle, route.origin)
            assert group.total_cost == pytest.approx(total, rel=1e-6)
            assert group.delta_cost == pytest.approx(total, rel=1e-6)

    def test_groups_extend_existing_schedule(self, make_request, oracle, shareability):
        onboard = make_request(9, 1, 13, gamma=2.0)
        base = Schedule.direct(onboard)
        route = RouteState(vehicle_id=1, origin=0, departure_time=0.0,
                           schedule=base, capacity=3, onboard=0)
        newcomer = make_request(1, 0, 12, gamma=2.0)
        graph = shareability([newcomer])
        groups = build_groups([newcomer], graph, route, oracle, max_group_size=3)
        assert groups
        for group in groups:
            assert group.schedule.request_ids() >= {9, 1}

    def test_duplicate_requests_deduplicated(self, make_request, oracle, shareability):
        request = make_request(1, 0, 4)
        graph = shareability([request])
        groups = build_groups([request, request], graph, _route(0), oracle, max_group_size=3)
        assert len([g for g in groups if g.size == 1]) == 1


class TestRequestGroup:
    def test_properties(self, make_request, oracle):
        a = make_request(1, 0, 4, riders=2)
        b = make_request(2, 1, 5)
        schedule = Schedule.direct(a).with_insertion(b, 1, 2)
        group = RequestGroup(
            members=frozenset({1, 2}), requests=(a, b), schedule=schedule,
            delta_cost=30.0, total_cost=70.0,
        )
        assert group.size == 2
        assert group.riders == 3
        assert group.direct_cost == pytest.approx(a.direct_cost + b.direct_cost)
        assert group.with_loss(4.0).loss == 4.0

    def test_best_group_by_prefers_minimum_key_then_size(self, make_request):
        a = make_request(1, 0, 4)
        b = make_request(2, 1, 5)
        single = RequestGroup(frozenset({1}), (a,), Schedule.direct(a), 10.0, 10.0)
        pair = RequestGroup(frozenset({1, 2}), (a, b),
                            Schedule.direct(a).with_insertion(b, 1, 2), 10.0, 10.0)
        chosen = best_group_by([single, pair], key=lambda g: g.delta_cost)
        assert chosen is pair
        assert best_group_by([], key=lambda g: g.delta_cost) is None
