"""Tests for the road-network graph structure."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.exceptions import NetworkError
from repro.network.road_network import RoadNetwork


@pytest.fixture()
def triangle() -> RoadNetwork:
    network = RoadNetwork()
    network.add_node(0, 0.0, 0.0)
    network.add_node(1, 100.0, 0.0)
    network.add_node(2, 0.0, 100.0)
    network.add_edge(0, 1, 10.0)
    network.add_edge(1, 2, 20.0, bidirectional=True)
    return network


class TestConstruction:
    def test_counts(self, triangle: RoadNetwork):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3  # 0->1, 1->2, 2->1

    def test_add_edge_requires_existing_nodes(self):
        network = RoadNetwork()
        network.add_node(0, 0, 0)
        with pytest.raises(NetworkError):
            network.add_edge(0, 7, 1.0)

    def test_negative_cost_rejected(self, triangle: RoadNetwork):
        with pytest.raises(NetworkError):
            triangle.add_edge(0, 2, -5.0)

    def test_self_loop_rejected(self, triangle: RoadNetwork):
        with pytest.raises(NetworkError):
            triangle.add_edge(0, 0, 1.0)

    def test_duplicate_edge_updates_cost_without_double_count(self, triangle: RoadNetwork):
        before = triangle.num_edges
        triangle.add_edge(0, 1, 99.0)
        assert triangle.num_edges == before
        assert triangle.edge_cost(0, 1) == 99.0

    def test_re_adding_node_moves_it(self, triangle: RoadNetwork):
        triangle.add_node(0, 5.0, 5.0)
        assert triangle.position(0) == (5.0, 5.0)
        # Edges must survive a node move.
        assert triangle.has_edge(0, 1)

    def test_remove_edge(self, triangle: RoadNetwork):
        triangle.remove_edge(1, 2)
        assert not triangle.has_edge(1, 2)
        assert triangle.has_edge(2, 1)  # only the requested direction goes
        assert triangle.num_edges == 2
        assert dict(triangle.predecessors(2)) == {}
        assert dict(triangle.neighbors(1)) == {}
        with pytest.raises(NetworkError):
            triangle.remove_edge(1, 2)
        with pytest.raises(NetworkError):
            triangle.remove_edge(0, 2)

    def test_mutation_count_bumps_on_every_mutation(self):
        network = RoadNetwork()
        counts = [network.mutation_count]

        def bumped() -> None:
            counts.append(network.mutation_count)
            assert counts[-1] > counts[-2]

        network.add_node(0, 0.0, 0.0)
        bumped()
        network.add_node(1, 100.0, 0.0)
        bumped()
        network.add_edge(0, 1, 10.0)
        bumped()
        network.add_edge(0, 1, 25.0)  # reweight, num_edges unchanged
        bumped()
        network.add_node(0, 5.0, 5.0)  # node move
        bumped()
        network.remove_edge(0, 1)
        bumped()

    def test_mutation_count_unchanged_by_reads(self, triangle: RoadNetwork):
        before = triangle.mutation_count
        list(triangle.edges())
        triangle.edge_cost(0, 1)
        triangle.bounding_box()
        assert triangle.mutation_count == before


class TestQueries:
    def test_neighbors_and_predecessors(self, triangle: RoadNetwork):
        assert dict(triangle.neighbors(1)) == {2: 20.0}
        assert dict(triangle.predecessors(1)) == {0: 10.0, 2: 20.0}

    def test_edge_cost_missing(self, triangle: RoadNetwork):
        with pytest.raises(NetworkError):
            triangle.edge_cost(2, 0)

    def test_unknown_node_raises(self, triangle: RoadNetwork):
        with pytest.raises(NetworkError):
            list(triangle.neighbors(42))
        with pytest.raises(NetworkError):
            triangle.position(42)

    def test_euclidean(self, triangle: RoadNetwork):
        assert triangle.euclidean(0, 1) == pytest.approx(100.0)
        assert triangle.euclidean(1, 2) == pytest.approx(math.hypot(100, 100))

    def test_bounding_box(self, triangle: RoadNetwork):
        assert triangle.bounding_box() == (0.0, 0.0, 100.0, 100.0)

    def test_bounding_box_empty_network(self):
        with pytest.raises(NetworkError):
            RoadNetwork().bounding_box()

    def test_nearest_node(self, triangle: RoadNetwork):
        assert triangle.nearest_node(90.0, 5.0) == 1
        assert triangle.nearest_node(-10.0, -10.0) == 0

    def test_contains(self, triangle: RoadNetwork):
        assert 0 in triangle
        assert 99 not in triangle

    def test_edges_iteration(self, triangle: RoadNetwork):
        edges = set(triangle.edges())
        assert (0, 1, 10.0) in edges
        assert (1, 2, 20.0) in edges and (2, 1, 20.0) in edges

    def test_out_degree(self, triangle: RoadNetwork):
        assert triangle.out_degree(0) == 1
        assert triangle.out_degree(1) == 1
        assert triangle.out_degree(2) == 1


class TestInterop:
    def test_networkx_round_trip(self, triangle: RoadNetwork):
        graph = triangle.to_networkx()
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_nodes() == 3
        back = RoadNetwork.from_networkx(graph)
        assert back.num_nodes == 3
        assert back.edge_cost(0, 1) == 10.0
        assert back.position(1) == (100.0, 0.0)

    def test_from_undirected_networkx_adds_both_directions(self):
        graph = nx.Graph()
        graph.add_node(0, x=0.0, y=0.0)
        graph.add_node(1, x=1.0, y=0.0)
        graph.add_edge(0, 1, weight=3.0)
        network = RoadNetwork.from_networkx(graph)
        assert network.has_edge(0, 1) and network.has_edge(1, 0)

    def test_from_edge_list(self):
        network = RoadNetwork.from_edge_list(
            {0: (0, 0), 1: (1, 1)}, [(0, 1, 2.5)], bidirectional=True
        )
        assert network.has_edge(1, 0)
        assert network.edge_cost(0, 1) == 2.5
