"""Tests for the observability layer: tracer, registry, instrumentation.

The exporter golden-file tests live in ``test_exporters.py``; this module
covers the tracer semantics (nesting, the disabled no-op identity, ring
buffer eviction), the typed metric registry, the event-log query helpers,
the metrics facade, and the end-to-end instrumentation contract: with
tracing on, the per-stage spans of a dispatch batch account for the batch's
measured dispatch time.
"""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkError
from repro.network.shortest_path import DistanceOracle
from repro.observability import (
    NOOP_SPAN,
    NULL_TRACER,
    MetricError,
    MetricRegistry,
    SpanTracer,
    TraceConfig,
    get_tracer,
    set_tracer,
    tracing,
    use_tracer,
)
from repro.simulation.events import Event, EventKind, EventLog
from repro.simulation.metrics import BatchRecord, MetricsCollector


class StepClock:
    """Deterministic clock: every call advances by a fixed step."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


# --------------------------------------------------------------------- #
# SpanTracer
# --------------------------------------------------------------------- #
class TestSpanTracer:
    def test_nesting_records_parent_and_depth(self):
        tracer = SpanTracer(clock=StepClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner_rec, outer_rec = tracer.records
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer.span_id
        assert inner_rec.depth == 1
        assert outer_rec.parent_id is None
        assert outer_rec.depth == 0
        assert tracer.children_of(outer_rec.span_id) == [inner_rec]

    def test_completion_order_children_before_parents(self):
        tracer = SpanTracer(clock=StepClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert [record.name for record in tracer.records] == ["c", "b", "a"]

    def test_durations_from_injected_clock(self):
        tracer = SpanTracer(clock=StepClock(0.5))
        with tracer.span("timed"):
            pass
        (record,) = tracer.records
        # Enter consumes one tick, exit the next: exactly one step apart.
        assert record.duration == 0.5

    def test_sim_time_inherited_and_overridable(self):
        tracer = SpanTracer(clock=StepClock())
        with tracer.span("before"):
            pass
        tracer.set_sim_time(42.0)
        with tracer.span("inherits"):
            pass
        with tracer.span("explicit", sim_time=7.0):
            pass
        by_name = {record.name: record for record in tracer.records}
        assert by_name["before"].sim_time is None
        assert by_name["inherits"].sim_time == 42.0
        assert by_name["explicit"].sim_time == 7.0

    def test_tags_from_kwargs_and_tag_method(self):
        tracer = SpanTracer(clock=StepClock())
        with tracer.span("tagged", batch=3, algorithm="SARD") as span:
            span.tag("assignments", 5)
        (record,) = tracer.records
        assert record.tags == {"batch": 3, "algorithm": "SARD", "assignments": 5}

    def test_ring_buffer_evicts_oldest(self):
        tracer = SpanTracer(capacity=3, clock=StepClock())
        for index in range(5):
            tracer.event(f"e{index}")
        assert len(tracer) == 3
        assert tracer.evicted == 2
        assert [record.name for record in tracer.records] == ["e2", "e3", "e4"]

    def test_clear_resets_buffer_and_eviction_count(self):
        tracer = SpanTracer(capacity=1, clock=StepClock())
        tracer.event("one")
        tracer.event("two")
        assert tracer.evicted == 1
        tracer.clear()
        assert tracer.records == ()
        assert tracer.evicted == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanTracer(0)

    def test_exception_unwinds_nested_spans(self):
        tracer = SpanTracer(clock=StepClock())
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert [record.name for record in tracer.records] == ["inner", "outer"]
        assert tracer._stack == []

    def test_event_parented_to_innermost_open_span(self):
        tracer = SpanTracer(clock=StepClock())
        with tracer.span("parent") as parent:
            tracer.event("leaf", duration=0.25, policy="eager")
        leaf, _ = tracer.records
        assert leaf.parent_id == parent.span_id
        assert leaf.duration == 0.25
        assert leaf.tags == {"policy": "eager"}


# --------------------------------------------------------------------- #
# disabled tracing: the null tracer must be allocation-free and inert
# --------------------------------------------------------------------- #
class TestNullTracer:
    def test_default_active_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert get_tracer().enabled is False

    def test_span_returns_shared_noop_instance(self):
        assert NULL_TRACER.span("anything", batch=1) is NOOP_SPAN
        assert NULL_TRACER.span("other") is NOOP_SPAN

    def test_noop_span_is_inert(self):
        with NULL_TRACER.span("x") as span:
            span.tag("key", 1)
        NULL_TRACER.event("event", duration=1.0)
        NULL_TRACER.set_sim_time(5.0)
        assert NULL_TRACER.records == ()
        assert NULL_TRACER.evicted == 0

    def test_use_tracer_installs_and_restores(self):
        tracer = SpanTracer(clock=StepClock())
        assert get_tracer() is NULL_TRACER
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_disables(self):
        tracer = SpanTracer(clock=StepClock())
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
            set_tracer(None)
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(previous)


# --------------------------------------------------------------------- #
# MetricRegistry
# --------------------------------------------------------------------- #
class TestMetricRegistry:
    def test_counter_get_or_create_is_idempotent(self):
        registry = MetricRegistry()
        first = registry.counter("a.count", "desc")
        second = registry.counter("a.count")
        assert first is second
        first.inc()
        first.inc(2)
        assert first.value == 3.0

    def test_counter_rejects_negative_increment(self):
        registry = MetricRegistry()
        with pytest.raises(MetricError):
            registry.counter("a").inc(-1)

    def test_gauge_tracks_peak(self):
        registry = MetricRegistry()
        gauge = registry.gauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        gauge.inc(-1.0)
        assert gauge.value == 1.0
        assert gauge.peak == 5.0

    def test_type_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("name")
        with pytest.raises(MetricError):
            registry.gauge("name")
        with pytest.raises(MetricError):
            registry.histogram("name")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricRegistry()
        registry.histogram("h", buckets=(0.1, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(0.2, 1.0))

    def test_histogram_buckets_must_strictly_increase(self):
        registry = MetricRegistry()
        with pytest.raises(MetricError):
            registry.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("empty", buckets=())

    def test_histogram_bucketing_and_cumulative(self):
        registry = MetricRegistry()
        hist = registry.histogram("h", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.004, 0.05, 0.2):
            hist.observe(value)
        assert hist.total == 4
        assert hist.counts == [1, 1, 1, 1]
        assert hist.cumulative() == [
            (0.001, 1),
            (0.01, 2),
            (0.1, 3),
            (float("inf"), 4),
        ]

    def test_histogram_percentile_clamps_overflow(self):
        registry = MetricRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 10.0, 20.0):
            hist.observe(value)
        assert hist.percentile(0) == 0.0
        assert hist.percentile(100) == 2.0  # overflow clamps to last bound
        with pytest.raises(MetricError):
            hist.percentile(101)

    def test_iteration_is_sorted_by_name(self):
        registry = MetricRegistry()
        registry.counter("z")
        registry.counter("a")
        registry.gauge("m")
        assert [metric.name for metric in registry] == ["a", "m", "z"]
        assert len(registry) == 3
        assert "a" in registry and "missing" not in registry

    def test_as_dict_expands_histograms(self):
        registry = MetricRegistry()
        registry.counter("c").inc(2)
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(3.0)
        assert registry.as_dict() == {"c": 2.0, "h.count": 2.0, "h.sum": 3.5}


# --------------------------------------------------------------------- #
# EventLog query helpers
# --------------------------------------------------------------------- #
class TestEventLog:
    def _log(self) -> EventLog:
        log = EventLog()
        log.record(Event(time=1.0, kind=EventKind.REQUEST_RELEASED, subject=1))
        log.record(Event(time=2.0, kind=EventKind.REQUEST_ASSIGNED, subject=1, other=7))
        log.record(Event(time=3.0, kind=EventKind.REQUEST_RELEASED, subject=2))
        log.record(Event(time=9.0, kind=EventKind.REQUEST_EXPIRED, subject=2))
        return log

    def test_capped_log_counts_dropped_events(self):
        log = EventLog(max_events=2)
        for index in range(5):
            log.record(Event(time=float(index), kind=EventKind.REQUEST_RELEASED, subject=index))
        assert len(log) == 2
        assert log.dropped == 3
        assert [event.subject for event in log] == [0, 1]

    def test_uncapped_log_never_drops(self):
        log = EventLog(max_events=None)
        for index in range(10):
            log.record(Event(time=0.0, kind=EventKind.REQUEST_RELEASED, subject=index))
        assert len(log) == 10
        assert log.dropped == 0

    def test_of_kind_with_time_window(self):
        log = self._log()
        assert [e.time for e in log.of_kind(EventKind.REQUEST_RELEASED)] == [1.0, 3.0]
        assert [e.time for e in log.of_kind(EventKind.REQUEST_RELEASED, start=2.0)] == [3.0]
        assert [e.time for e in log.of_kind(EventKind.REQUEST_RELEASED, end=2.0)] == [1.0]
        assert log.of_kind(EventKind.REQUEST_RELEASED, start=4.0, end=8.0) == []

    def test_in_window_is_inclusive(self):
        log = self._log()
        assert [event.time for event in log.in_window(2.0, 3.0)] == [2.0, 3.0]
        with pytest.raises(ValueError):
            log.in_window(5.0, 1.0)

    def test_counts_by_kind(self):
        log = self._log()
        assert log.counts_by_kind() == {
            EventKind.REQUEST_RELEASED: 2,
            EventKind.REQUEST_ASSIGNED: 1,
            EventKind.REQUEST_EXPIRED: 1,
        }


# --------------------------------------------------------------------- #
# MetricsCollector facade
# --------------------------------------------------------------------- #
def _batch(index: int, seconds: float) -> BatchRecord:
    return BatchRecord(
        index=index,
        start_time=index * 5.0,
        end_time=(index + 1) * 5.0,
        released=1,
        assigned=1,
        pending_after=0,
        dispatch_seconds=seconds,
    )


class TestMetricsFacade:
    def test_dispatch_latency_percentiles(self):
        metrics = MetricsCollector()
        for index, seconds in enumerate((0.01, 0.02, 0.03, 0.04, 0.1)):
            metrics.record_batch(_batch(index, seconds))
        latency = metrics.dispatch_latency()
        assert latency["dispatch_p50_seconds"] == pytest.approx(0.03)
        assert latency["dispatch_p95_seconds"] == pytest.approx(0.088)
        assert latency["dispatch_max_seconds"] == pytest.approx(0.1)

    def test_dispatch_latency_empty_run(self):
        latency = MetricsCollector().dispatch_latency()
        assert latency == {
            "dispatch_p50_seconds": 0.0,
            "dispatch_p95_seconds": 0.0,
            "dispatch_max_seconds": 0.0,
        }

    def test_summary_contains_latency_keys(self):
        metrics = MetricsCollector()
        metrics.record_batch(_batch(0, 0.05))
        summary = metrics.summary()
        assert summary["dispatch_p50_seconds"] == pytest.approx(0.05)
        assert summary["dispatch_max_seconds"] == pytest.approx(0.05)
        assert summary["num_batches"] == 1.0

    def test_as_registry_mirrors_collector(self):
        metrics = MetricsCollector(
            total_requests=10, assigned_requests=8, shortest_path_queries=123
        )
        metrics.record_batch(_batch(0, 0.02))
        metrics.record_batch(_batch(1, 0.2))
        registry = metrics.as_registry()
        snapshot = registry.as_dict()
        assert snapshot["requests.total"] == 10.0
        assert snapshot["requests.assigned"] == 8.0
        assert snapshot["oracle.queries"] == 123.0
        assert snapshot["sim.service_rate"] == pytest.approx(0.8)
        assert snapshot["dispatch.batch_seconds.count"] == 2.0
        assert snapshot["dispatch.batch_seconds.sum"] == pytest.approx(0.22)


# --------------------------------------------------------------------- #
# end-to-end instrumentation
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def traced_sard_run():
    """One SARD simulation with tracing on (shared across assertions)."""
    from repro.dispatch import make_dispatcher
    from repro.simulation.engine import Simulator
    from repro.workloads.presets import make_workload

    workload = make_workload(
        "nyc",
        city_scale=0.4,
        workload_overrides={"num_requests": 60, "num_vehicles": 10},
    )
    oracle = workload.fresh_oracle()
    simulator = Simulator(
        network=workload.network,
        oracle=oracle,
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=make_dispatcher("SARD"),
        config=workload.simulation_config,
        record_events=False,
    )
    with tracing(oracle=oracle, config=TraceConfig(oracle_sample_every=10)) as tracer:
        result = simulator.run()
    return result, tracer


class TestInstrumentedSimulation:
    def test_expected_stage_spans_present(self, traced_sard_run):
        _, tracer = traced_sard_run
        names = {record.name for record in tracer.records}
        assert {
            "sim.advance",
            "scenario.step",
            "dispatch.batch",
            "sard.sync_graph",
            "sard.build_queues",
            "sard.rounds",
            "sard.materialize",
        } <= names

    def test_stage_spans_account_for_dispatch_time(self, traced_sard_run):
        """Acceptance gate: per-batch stage spans sum within 5% of the
        batch's measured ``dispatch_seconds`` (aggregated over the run, and
        per batch for every batch large enough to measure reliably)."""
        result, tracer = traced_sard_run
        batches = {record.index: record for record in result.metrics.batch_records}
        total_stage = 0.0
        for span in tracer.records:
            if span.name != "dispatch.batch":
                continue
            stage_sum = sum(
                child.duration for child in tracer.children_of(span.span_id)
                if child.name.startswith("sard.")
            )
            total_stage += stage_sum
            measured = batches[span.tags["batch"]].dispatch_seconds
            if measured >= 0.005:  # sub-5ms batches are timer-noise bound
                assert stage_sum == pytest.approx(measured, rel=0.05)
        total_measured = result.metrics.dispatch_seconds
        assert total_stage == pytest.approx(total_measured, rel=0.05)

    def test_batch_spans_carry_sim_time_and_tags(self, traced_sard_run):
        result, tracer = traced_sard_run
        batch_spans = [r for r in tracer.records if r.name == "dispatch.batch"]
        assert len(batch_spans) == result.metrics.num_batches
        for span in batch_spans:
            assert span.sim_time is not None
            assert span.tags["algorithm"] == "SARD"
            assert "pending" in span.tags and "vehicles" in span.tags

    def test_sampled_oracle_events_recorded(self, traced_sard_run):
        _, tracer = traced_sard_run
        oracle_events = [
            r for r in tracer.records
            if r.name in ("oracle.query", "oracle.many_to_many")
        ]
        assert oracle_events
        for event in oracle_events:
            assert "backend" in event.tags
            assert event.duration >= 0.0

    def test_disabled_run_records_nothing(self):
        from repro.dispatch import make_dispatcher
        from repro.simulation.engine import Simulator
        from repro.workloads.presets import make_workload

        workload = make_workload(
            "nyc",
            city_scale=0.4,
            workload_overrides={"num_requests": 20, "num_vehicles": 5},
        )
        assert get_tracer() is NULL_TRACER
        simulator = Simulator(
            network=workload.network,
            oracle=workload.fresh_oracle(),
            vehicles=workload.fresh_vehicles(),
            requests=list(workload.requests),
            dispatcher=make_dispatcher("SARD"),
            config=workload.simulation_config,
            record_events=False,
        )
        result = simulator.run()
        assert result.metrics.total_requests == 20
        assert get_tracer().records == ()

    def test_set_query_tracing_rejects_negative_interval(self, oracle):
        tracer = SpanTracer(clock=StepClock())
        with pytest.raises(NetworkError):
            oracle.set_query_tracing(tracer, every=-1)

    def test_traced_and_untraced_costs_identical(self, grid_network):
        plain = DistanceOracle(grid_network, cache_size=0)
        traced = DistanceOracle(grid_network, cache_size=0)
        tracer = SpanTracer(clock=StepClock())
        traced.set_query_tracing(tracer, every=1)
        nodes = list(grid_network.nodes())
        for u in nodes[:6]:
            for v in nodes[-6:]:
                assert traced.cost(u, v) == plain.cost(u, v)
        assert any(r.name == "oracle.query" for r in tracer.records)
        traced.set_query_tracing(None)
        tracer.clear()
        assert traced.cost(nodes[0], nodes[-1]) == plain.cost(nodes[0], nodes[-1])
        assert tracer.records == ()
