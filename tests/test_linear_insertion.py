"""Tests for the linear insertion operator."""

from __future__ import annotations

import math

import pytest

from repro.insertion.kinetic_tree import KineticTreeScheduler
from repro.insertion.linear_insertion import (
    InsertionOutcome,
    base_route_cost,
    best_insertion,
    insert_sequence,
)
from repro.model.schedule import Schedule
from repro.model.vehicle import RouteState, Vehicle


def _route(location: int, *, time: float = 0.0, capacity: int = 3,
           schedule: Schedule | None = None, onboard: int = 0,
           min_insert: int = 0) -> RouteState:
    return RouteState(
        vehicle_id=1,
        origin=location,
        departure_time=time,
        schedule=schedule or Schedule.empty(),
        capacity=capacity,
        onboard=onboard,
        min_insert_position=min_insert,
    )


class TestSingleInsertion:
    def test_empty_schedule_gets_direct_trip(self, make_line_request, line_oracle):
        request = make_line_request(1, 1, 3)
        outcome = best_insertion(_route(0), request, line_oracle)
        assert outcome.feasible
        assert outcome.schedule.nodes() == [1, 3]
        # 10 s deadhead to the source plus the 20 s trip.
        assert outcome.delta_cost == pytest.approx(30.0)
        assert outcome.total_cost == pytest.approx(30.0)

    def test_infeasible_when_pickup_unreachable_in_time(self, make_line_request, line_oracle):
        request = make_line_request(1, 0, 1, gamma=1.2, max_wait=5.0)
        outcome = best_insertion(_route(4, time=0.0), request, line_oracle)
        assert not outcome.feasible
        assert math.isinf(outcome.delta_cost)

    def test_optimal_for_two_requests(self, make_request, oracle):
        """Linear insertion is optimal when the schedule holds one request."""
        kinetic = KineticTreeScheduler(oracle)
        first = make_request(1, 0, 14)
        second = make_request(2, 1, 15)
        route = _route(0)
        first_outcome = best_insertion(route, first, oracle)
        assert first_outcome.feasible
        loaded = _route(0, schedule=first_outcome.schedule)
        second_outcome = best_insertion(loaded, second, oracle)
        assert second_outcome.feasible
        optimal = kinetic.optimal_cost(route, [first, second])
        assert second_outcome.total_cost == pytest.approx(optimal)

    def test_respects_min_insert_position(self, make_line_request, line_oracle):
        committed = make_line_request(1, 1, 3, gamma=2.0, max_wait=1000.0)
        base = Schedule.direct(committed)
        newcomer = make_line_request(2, 0, 1, max_wait=1000.0, gamma=3.0)
        free = best_insertion(_route(0, schedule=base), newcomer, line_oracle)
        locked = best_insertion(
            _route(0, schedule=base, min_insert=1), newcomer, line_oracle
        )
        assert free.feasible
        assert free.pickup_position == 0
        # With the first stop committed the pick-up cannot go before it.
        if locked.feasible:
            assert locked.pickup_position >= 1
        assert locked.delta_cost >= free.delta_cost - 1e-9

    def test_capacity_blocks_overlapping_riders(self, make_line_request, line_oracle):
        a = make_line_request(1, 0, 4, riders=3)
        base = best_insertion(_route(0, capacity=3), a, line_oracle).schedule
        b = make_line_request(2, 1, 3, riders=1)
        outcome = best_insertion(_route(0, capacity=3, schedule=base), b, line_oracle)
        # The only feasible placements must avoid carrying both at once; with
        # such tight deadlines there is none.
        if outcome.feasible:
            evaluation = outcome.schedule.evaluate(
                line_oracle, 0, 0.0, capacity=3, initial_load=0
            )
            assert evaluation.feasible

    def test_delta_cost_matches_schedule_difference(self, make_request, oracle):
        first = make_request(1, 0, 10)
        second = make_request(2, 2, 20)
        route = _route(0)
        outcome1 = best_insertion(route, first, oracle)
        route2 = _route(0, schedule=outcome1.schedule)
        outcome2 = best_insertion(route2, second, oracle)
        assert outcome2.total_cost == pytest.approx(
            base_route_cost(route2, oracle) + outcome2.delta_cost
        )

    def test_infeasible_outcome_factory(self):
        outcome = InsertionOutcome.infeasible(Schedule.empty())
        assert not outcome.feasible
        assert math.isinf(outcome.delta_cost)


class TestInsertSequence:
    def test_sequence_of_two(self, make_request, oracle):
        a = make_request(1, 0, 14)
        b = make_request(2, 1, 15)
        outcome = insert_sequence(_route(0), [a, b], oracle)
        assert outcome.feasible
        assert outcome.schedule.request_ids() == {1, 2}
        evaluation = outcome.schedule.evaluate(oracle, 0, 0.0, capacity=3)
        assert evaluation.feasible
        assert outcome.total_cost == pytest.approx(evaluation.travel_cost)

    def test_sequence_fails_fast_on_infeasible_member(self, make_line_request, line_oracle):
        good = make_line_request(1, 0, 2)
        impossible = make_line_request(2, 4, 3, gamma=1.2, max_wait=1.0)
        outcome = insert_sequence(_route(0), [good, impossible], line_oracle)
        assert not outcome.feasible

    def test_empty_sequence_is_identity(self, make_line_request, line_oracle):
        request = make_line_request(1, 0, 2)
        base = Schedule.direct(request)
        outcome = insert_sequence(_route(0, schedule=base), [], line_oracle)
        assert outcome.feasible
        assert outcome.delta_cost == 0.0
        assert outcome.schedule == base
