"""Resilience layer: fault injection, retry/backoff, breakers, self-healing.

The chaos contract under test: with the same seed the injected fault
sequence -- and therefore the whole simulation outcome -- is reproducible;
under any injected fault sequence the run completes without an unhandled
exception; and every accepted assignment's leg costs stay exact against a
fresh Dijkstra over the mutated network.
"""

from __future__ import annotations

import math
from random import Random

import pytest

from repro.config import ChaosConfig, ResilienceConfig
from repro.exceptions import (
    ConfigurationError,
    InjectedFaultError,
    OracleBuildError,
    OracleRepairError,
)
from repro.experiments.harness import (
    CHAOS_RESILIENCE,
    RunSpec,
    deterministic_summary,
    run,
)
from repro.network.shortest_path import DistanceOracle
from repro.resilience import (
    BreakerState,
    ChaosOracle,
    CircuitBreaker,
    FaultInjector,
    InvariantProbe,
    ResilienceManager,
    RetryPolicy,
)
from repro.scenarios.presets import CHAOS_PRESETS, make_chaos_config


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #
class TestChaosConfig:
    def test_defaults_are_quiet(self):
        config = ChaosConfig()
        assert not config.enabled

    def test_any_positive_rate_enables(self):
        assert ChaosConfig(corruption_rate=0.1).enabled
        assert ChaosConfig(query_spike_rate=0.5).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rebuild_failure_rate": -0.1},
            {"repair_failure_rate": 1.5},
            {"corruption_rate": math.nan},
            {"corruption_factor": 1.0},
            {"corruption_factor": -2.0},
            {"spike_seconds": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChaosConfig(**kwargs)

    def test_resilience_config_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(batch_time_budget=-1.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(breaker_threshold=0)

    def test_chaos_presets(self):
        assert set(CHAOS_PRESETS) == {"flaky_oracle", "oracle_meltdown"}
        flaky = make_chaos_config("flaky_oracle")
        assert flaky.enabled
        overridden = make_chaos_config("flaky_oracle", corruption_rate=0.0)
        assert overridden.corruption_rate == 0.0
        with pytest.raises(ConfigurationError):
            make_chaos_config("full_moon")


# --------------------------------------------------------------------- #
# retry policy
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise InjectedFaultError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.25)
        result, outcome = policy.call(
            flaky, rng=Random(7), error_type=OracleBuildError, describe="op"
        )
        assert result == "ok"
        assert outcome.attempts == 3
        assert outcome.retries == 2
        # Backoff is virtual: charged to the outcome, never slept.
        assert outcome.backoff_seconds > 0.5
        assert outcome.seconds >= outcome.backoff_seconds

    def test_exhaustion_raises_typed_error(self):
        def always_fails():
            raise InjectedFaultError("down")

        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(OracleBuildError) as excinfo:
            policy.call(
                always_fails,
                rng=Random(1),
                error_type=OracleBuildError,
                describe="rebuild",
            )
        assert isinstance(excinfo.value.__cause__, InjectedFaultError)

        with pytest.raises(OracleRepairError):
            policy.call(
                always_fails,
                rng=Random(1),
                error_type=OracleRepairError,
                describe="repair",
            )

    def test_deadline_budget_cuts_retries_short(self):
        def always_fails():
            raise InjectedFaultError("down")

        # The first virtual pause alone blows the 1s deadline.
        policy = RetryPolicy(
            max_attempts=10, base_delay=5.0, jitter=0.0, deadline=1.0
        )
        attempts = []
        with pytest.raises(OracleBuildError, match="deadline"):
            policy.call(
                always_fails,
                rng=Random(1),
                error_type=OracleBuildError,
                describe="rebuild",
                on_retry=lambda a, p, e: attempts.append(a),
            )
        assert attempts == []  # never got to a second attempt

    def test_non_repro_errors_propagate_immediately(self):
        def broken():
            raise ValueError("a genuine bug")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(ValueError):
            policy.call(
                broken, rng=Random(1), error_type=OracleBuildError, describe="op"
            )


# --------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_interval=2)
        assert breaker.state is BreakerState.CLOSED
        assert not breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.record_failure()  # second consecutive failure trips
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_interval=1)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # streak was broken

    def test_recovery_cycle_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_interval=2)
        assert breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.tick()  # cooldown 2 -> 1
        assert breaker.tick()  # probe due
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.trips == 1

    def test_half_open_failure_reopens_and_counts_a_trip(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_interval=1)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.tick()
        assert breaker.state is BreakerState.HALF_OPEN
        # A single failure in half-open re-opens regardless of the threshold.
        assert breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)


# --------------------------------------------------------------------- #
# fault injector
# --------------------------------------------------------------------- #
class TestFaultInjector:
    def test_same_seed_same_fault_sequence(self):
        config = ChaosConfig(
            seed=42,
            rebuild_failure_rate=0.4,
            repair_failure_rate=0.4,
            corruption_rate=0.4,
            query_spike_rate=0.3,
        )
        logs = []
        for _ in range(2):
            injector = FaultInjector(config)
            for _ in range(50):
                injector.fail_rebuild()
                injector.fail_repair()
                injector.corrupt_refresh()
                injector.query_spike()
            logs.append((list(injector.fault_log), injector.faults_injected))
        assert logs[0] == logs[1]
        assert logs[0][1] > 0

    def test_reset_rewinds_the_streams(self):
        injector = FaultInjector(ChaosConfig(seed=3, rebuild_failure_rate=0.5))
        first = [injector.fail_rebuild() for _ in range(20)]
        injector.reset()
        assert [injector.fail_rebuild() for _ in range(20)] == first

    def test_spikes_do_not_shift_refresh_faults(self):
        base = ChaosConfig(seed=11, rebuild_failure_rate=0.5)
        with_spikes = base.with_overrides(query_spike_rate=1.0, spike_seconds=0.01)
        a = FaultInjector(base)
        b = FaultInjector(with_spikes)
        decisions_a, decisions_b = [], []
        for _ in range(30):
            b.query_spike()  # separate stream: must not perturb rebuilds
            decisions_a.append(a.fail_rebuild())
            decisions_b.append(b.fail_rebuild())
        assert decisions_a == decisions_b
        assert b.pending_latency > 0
        drained = b.drain_latency()
        assert drained == pytest.approx(b.total_latency)
        assert b.pending_latency == 0.0


# --------------------------------------------------------------------- #
# oracle seams: exception safety and opt-outs
# --------------------------------------------------------------------- #
class TestOracleSeams:
    def test_rebuild_is_exception_safe(self, grid_network, monkeypatch):
        oracle = DistanceOracle(grid_network, backend="ch")
        want = oracle.cost(0, 35)
        import repro.network.shortest_path as sp

        def exploding(*args, **kwargs):
            raise InjectedFaultError("backend factory crashed")

        monkeypatch.setattr(sp, "make_backend", exploding)
        with pytest.raises(InjectedFaultError):
            oracle.rebuild()
        # The failed rebuild must not have torn down the serving structures.
        assert oracle.cost(0, 35) == pytest.approx(want)
        monkeypatch.undo()
        oracle.rebuild()
        assert oracle.cost(0, 35) == pytest.approx(want)

    def test_record_repair_support_opt_out(self, grid_network):
        from repro.network.routing.backends import routing_data
        from repro.network.routing.contraction import ContractionHierarchy

        data = routing_data(grid_network, record_repair_support=False)
        hierarchy = ContractionHierarchy(data.csr, record_repair_support=False)
        assert hierarchy.repair(data.csr, [(0, 1)]) is None

        oracle = DistanceOracle(
            grid_network, backend="ch", record_repair_support=False
        )
        baseline = oracle.cost(0, 1)
        grid_network.add_edge(0, 1, 123.0, bidirectional=True)
        try:
            report = oracle.repair()
            # Without the support index an incremental splice is impossible;
            # the repair ladder must land on a full rebuild, never a wrong
            # answer.
            assert report.mode in {"rebuilt", "snapshot"}
            reference = DistanceOracle(
                grid_network, cache_size=0, backend="dijkstra"
            )
            assert oracle.cost(0, 1) == pytest.approx(reference.cost(0, 1))
            assert oracle.cost(0, 1) != pytest.approx(baseline)
        finally:
            grid_network.add_edge(0, 1, 10.0, bidirectional=True)

    def test_chaos_oracle_with_quiet_injector_is_exact(self, grid_network):
        injector = FaultInjector(ChaosConfig())
        oracle = ChaosOracle(grid_network, injector=injector, backend="ch")
        reference = DistanceOracle(grid_network, cache_size=0, backend="dijkstra")
        assert oracle.cost(3, 30) == pytest.approx(reference.cost(3, 30))
        assert not oracle.corrupted
        assert injector.faults_injected == 0

    def test_chaos_oracle_corruption_and_heal(self, grid_network):
        injector = FaultInjector(
            ChaosConfig(corruption_rate=1.0, corruption_factor=1.5)
        )
        oracle = ChaosOracle(grid_network, injector=injector, backend="ch")
        exact = oracle.cost(3, 30)
        oracle.rebuild()  # always succeeds, always corrupts at rate 1.0
        assert oracle.corrupted
        assert oracle.cost(3, 30) == pytest.approx(1.5 * exact)
        oracle.heal()
        assert oracle.cost(3, 30) == pytest.approx(exact)


# --------------------------------------------------------------------- #
# invariant probes and the self-healing rung
# --------------------------------------------------------------------- #
class TestProbesAndSelfHealing:
    def test_probe_detects_corruption(self, grid_network):
        injector = FaultInjector(
            ChaosConfig(corruption_rate=1.0, corruption_factor=1.1)
        )
        oracle = ChaosOracle(grid_network, injector=injector, backend="ch")
        probe = InvariantProbe(pairs=4, seed=5)
        assert probe.check(grid_network, oracle) == []
        oracle.rebuild()
        failures = probe.check(grid_network, oracle)
        assert failures
        assert all(f.got == pytest.approx(1.1 * f.want) for f in failures)

    def test_probe_sampling_is_seeded(self, grid_network, oracle):
        a = InvariantProbe(pairs=6, seed=9)
        b = InvariantProbe(pairs=6, seed=9)
        a.check(grid_network, oracle)
        b.check(grid_network, oracle)
        assert a._rng.getstate() == b._rng.getstate()

    def test_manager_self_heals_probe_failures(self, grid_network):
        # Corruption always fires on refresh, but rebuilds never fail: the
        # first heal attempt clears the corruption and the follow-up rebuild
        # immediately re-corrupts -- heal() runs *after* guarded_rebuild in
        # the ladder only via ChaosOracle.heal before the rebuild, so the
        # re-check passes because heal clears the flag set by that rebuild.
        manager = ResilienceManager(
            config=ResilienceConfig(probe_pairs=4),
            chaos=ChaosConfig(corruption_rate=1.0, corruption_factor=1.2),
        )
        oracle = manager.make_oracle(grid_network, backend="ch")
        assert isinstance(oracle, ChaosOracle)
        manager.begin_run()
        oracle.rebuild()
        assert oracle.corrupted
        manager.before_dispatch(grid_network, oracle, now=0.0)
        assert manager.stats.probe_failures > 0
        assert manager.stats.self_heals > 0
        # Post-heal the oracle must answer exactly, whatever rung it landed on.
        reference = DistanceOracle(grid_network, cache_size=0, backend="dijkstra")
        assert oracle.cost(2, 33) == pytest.approx(reference.cost(2, 33))

    def test_manager_events_reach_the_recorder(self, grid_network):
        manager = ResilienceManager(
            config=ResilienceConfig(probe_pairs=4),
            chaos=ChaosConfig(corruption_rate=1.0, corruption_factor=1.2),
        )
        oracle = manager.make_oracle(grid_network, backend="ch")
        recorded = []
        manager.begin_run(
            recorder=lambda now, kind, subject, other=None: recorded.append(kind)
        )
        oracle.rebuild()
        manager.before_dispatch(grid_network, oracle, now=5.0)
        assert "probe_failed" in recorded
        assert "oracle_self_healed" in recorded


# --------------------------------------------------------------------- #
# degradation ladder through the refresh policies
# --------------------------------------------------------------------- #
class TestGuardedRefresh:
    def _manager(self, **chaos_kwargs):
        return ResilienceManager(
            config=ResilienceConfig(breaker_threshold=1, recovery_interval=1),
            chaos=ChaosConfig(**chaos_kwargs),
        )

    def test_rebuild_failure_drops_to_exact_fallback(self, grid_network):
        manager = self._manager(rebuild_failure_rate=1.0)
        oracle = manager.make_oracle(grid_network, backend="ch")
        manager.begin_run()
        seconds, rebuilt = manager.guarded_rebuild(oracle)
        assert not rebuilt
        assert oracle.serving_fallback
        assert manager.oracle_breaker.state is BreakerState.OPEN
        assert manager.breaker_trips == 1
        assert manager.stats.retries > 0
        # Fallback answers stay exact.
        reference = DistanceOracle(grid_network, cache_size=0, backend="dijkstra")
        assert oracle.cost(1, 34) == pytest.approx(reference.cost(1, 34))

    def test_repair_failure_climbs_to_rebuild(self, grid_network):
        manager = self._manager(repair_failure_rate=1.0)
        oracle = manager.make_oracle(grid_network, backend="ch")
        manager.begin_run()
        grid_network.add_edge(6, 7, 55.0, bidirectional=True)
        try:
            report = manager.guarded_repair(oracle)
            assert report.mode == "rebuilt"
            assert not oracle.serving_fallback
        finally:
            grid_network.add_edge(6, 7, 10.0, bidirectional=True)
            oracle.injector.reset()
            oracle.rebuild()

    def test_open_breaker_recovers_via_half_open_probe(self, grid_network):
        manager = self._manager(rebuild_failure_rate=1.0)
        oracle = manager.make_oracle(grid_network, backend="ch")
        manager.begin_run()
        manager.guarded_rebuild(oracle)
        assert manager.oracle_breaker.state is BreakerState.OPEN
        # The fault clears; the next batch's recovery probe closes the breaker.
        oracle.injector.config = oracle.injector.config.with_overrides(
            rebuild_failure_rate=0.0
        )
        manager.before_dispatch(grid_network, oracle, now=10.0)
        assert manager.oracle_breaker.state is BreakerState.CLOSED
        assert not oracle.serving_fallback


# --------------------------------------------------------------------- #
# end-to-end chaos runs (the acceptance gate)
# --------------------------------------------------------------------- #
SMALL = dict(scale=0.05, city_scale=0.35)


def _chaos_row(policy: str, *, chaos: str) -> dict:
    outcome = run(RunSpec(
        mode="chaos", scenario="stadium_surge", backend="ch",
        refresh_policy=policy, chaos=chaos, **SMALL,
    ))
    assert outcome.row is not None
    return outcome.row


class TestChaosRuns:
    def test_same_seed_runs_are_identical(self):
        first = _chaos_row("repair", chaos="flaky_oracle")
        second = _chaos_row("repair", chaos="flaky_oracle")
        assert deterministic_summary(first) == deterministic_summary(second)
        assert first["faults"] > 0

    @pytest.mark.parametrize("policy", ["eager", "deferred", "coalesce", "repair"])
    def test_stadium_surge_survives_meltdown(self, policy):
        # The hard invariant: the run completes, assignments are verified
        # exact (CHAOS_RESILIENCE turns verify_assignments on, so a single
        # inexact accepted cost raises), and the resilience machinery
        # actually engaged.
        row = _chaos_row(policy, chaos="oracle_meltdown")
        assert row["faults"] > 0
        assert row["breaker_trips"] > 0
        assert row["self_heals"] > 0
        assert row["service_rate"] > 0
        again = _chaos_row(policy, chaos="oracle_meltdown")
        assert deterministic_summary(row) == deterministic_summary(again)

    def test_degraded_dispatcher_engages_under_spikes(self):
        row = _chaos_row("eager", chaos="oracle_meltdown")
        assert row["overruns"] > 0
        assert row["degraded"] > 0

    def test_chaos_metrics_quiet_without_chaos(self):
        outcome = run(RunSpec(
            mode="scenario", scenario="stadium_surge", backend="ch",
            refresh_policy="repair", **SMALL,
        ))
        row = outcome.row
        assert row is not None
        assert "breaker_trips" not in row  # plain grid stays chaos-free

    def test_chaos_resilience_defaults_are_deterministic(self):
        # Breaker decisions must not depend on the host's wall clock.
        assert CHAOS_RESILIENCE.count_real_dispatch_time is False
        assert CHAOS_RESILIENCE.verify_assignments is True
        assert CHAOS_RESILIENCE.batch_time_budget is not None
