"""Shared fixtures for the test suite.

The fixtures build small, fully deterministic instances: a jitter-free grid
city, a distance oracle over it, request/vehicle factories and a helper that
assembles a :class:`~repro.dispatch.base.DispatchContext` the way the
simulator does.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.dispatch.base import DispatchContext
from repro.model.batch import Batch
from repro.model.request import Request
from repro.model.vehicle import Vehicle
from repro.network.generators import grid_city
from repro.network.grid_index import GridIndex
from repro.network.road_network import RoadNetwork
from repro.network.shortest_path import DistanceOracle


@pytest.fixture()
def line_network() -> RoadNetwork:
    """Five nodes on a line, 10 seconds between neighbours."""
    network = RoadNetwork()
    for node in range(5):
        network.add_node(node, node * 100.0, 0.0)
    for node in range(4):
        network.add_edge(node, node + 1, 10.0, bidirectional=True)
    return network


@pytest.fixture()
def grid_network() -> RoadNetwork:
    """A deterministic 6x6 grid city (no travel-time jitter)."""
    return grid_city(6, 6, block_length=100.0, speed=10.0, perturbation=0.0, seed=1)


@pytest.fixture()
def oracle(grid_network: RoadNetwork) -> DistanceOracle:
    """Distance oracle over the deterministic grid city."""
    return DistanceOracle(grid_network)


@pytest.fixture()
def line_oracle(line_network: RoadNetwork) -> DistanceOracle:
    """Distance oracle over the line network."""
    return DistanceOracle(line_network)


@pytest.fixture()
def config() -> SimulationConfig:
    """Default simulation configuration used by most tests."""
    return SimulationConfig(gamma=1.5, max_wait=120.0, capacity=3, batch_period=5.0)


@pytest.fixture()
def make_request(oracle: DistanceOracle, config: SimulationConfig):
    """Factory building requests on the grid city with correct direct costs."""

    def _make(
        request_id: int,
        source: int,
        destination: int,
        release_time: float = 0.0,
        *,
        riders: int = 1,
        gamma: float | None = None,
        max_wait: float | None = None,
    ) -> Request:
        return Request.create(
            request_id=request_id,
            source=source,
            destination=destination,
            release_time=release_time,
            direct_cost=oracle.cost(source, destination),
            gamma=gamma if gamma is not None else config.gamma,
            max_wait=max_wait if max_wait is not None else config.max_wait,
            riders=riders,
        )

    return _make


@pytest.fixture()
def make_line_request(line_oracle: DistanceOracle, config: SimulationConfig):
    """Factory building requests on the line network."""

    def _make(
        request_id: int,
        source: int,
        destination: int,
        release_time: float = 0.0,
        *,
        riders: int = 1,
        gamma: float | None = None,
        max_wait: float | None = None,
    ) -> Request:
        return Request.create(
            request_id=request_id,
            source=source,
            destination=destination,
            release_time=release_time,
            direct_cost=line_oracle.cost(source, destination),
            gamma=gamma if gamma is not None else config.gamma,
            max_wait=max_wait if max_wait is not None else config.max_wait,
            riders=riders,
        )

    return _make


@pytest.fixture()
def make_context(grid_network: RoadNetwork, oracle: DistanceOracle, config: SimulationConfig):
    """Factory assembling a DispatchContext like the simulator does."""

    def _make(
        vehicles: list[Vehicle],
        pending: list[Request],
        *,
        current_time: float = 10.0,
        batch_requests: list[Request] | None = None,
        sim_config: SimulationConfig | None = None,
    ) -> DispatchContext:
        cfg = sim_config or config
        index = GridIndex.for_network(grid_network, cfg.grid_cells)
        for vehicle in vehicles:
            x, y = grid_network.position(vehicle.location)
            index.insert(vehicle.vehicle_id, x, y)
        batch = Batch(
            index=0,
            start_time=max(current_time - cfg.batch_period, 0.0),
            end_time=current_time,
            requests=tuple(batch_requests if batch_requests is not None else pending),
        )
        return DispatchContext(
            current_time=current_time,
            batch=batch,
            pending=list(pending),
            vehicles=vehicles,
            network=grid_network,
            oracle=oracle,
            vehicle_index=index,
            config=cfg,
            average_speed=10.0,
        )

    return _make
