"""Tests of the dispatch service layer (:mod:`repro.service`).

Covers the typed schemas (validation + wire round-trips), the bounded
ingestion queue (ordering, admission policies, async backpressure), the
service lifecycle (tick alignment, graceful shutdown, health/stats/registry
endpoints), the service-vs-batch parity gate, and the deprecation shims the
API redesign left behind (harness wrappers and package import paths).
"""

from __future__ import annotations

import asyncio
import warnings

import pytest

import repro
from repro.config import ServiceConfig
from repro.dispatch import make_dispatcher
from repro.exceptions import ConfigurationError, SchemaError, ServiceError
from repro.experiments.harness import (
    RunSpec,
    run,
    run_chaos_grid,
    run_scenario_grid,
)
from repro.model.request import Request
from repro.model.vehicle import Vehicle
from repro.network.road_network import RoadNetwork
from repro.network.shortest_path import DistanceOracle
from repro.service import (
    Admission,
    AssignmentEvent,
    AssignmentEventKind,
    DispatchService,
    IngestionQueue,
    RejectionReason,
    RideRequest,
    ServiceStats,
)
from repro.service.schemas import SCHEMA_VERSION, check_schema_version
from repro.simulation.engine import Simulator
from repro.simulation.events import EventKind
from repro.workloads.presets import make_workload


def _ride(request_id: int, release_time: float = 0.0, **kwargs) -> RideRequest:
    defaults = dict(origin=0, destination=7)
    defaults.update(kwargs)
    return RideRequest(
        request_id=request_id, release_time=release_time, **defaults
    )


# --------------------------------------------------------------------- #
# schemas
# --------------------------------------------------------------------- #
class TestRideRequestSchema:
    def test_dict_round_trip(self):
        ride = _ride(3, 12.5, riders=2, max_wait=60.0, deadline=400.0,
                     direct_cost=88.0)
        assert RideRequest.from_dict(ride.to_dict()) == ride

    def test_json_round_trip(self):
        ride = _ride(4, 1.0)
        assert RideRequest.from_json(ride.to_json()) == ride

    @pytest.mark.parametrize("overrides", [
        dict(request_id=-1),
        dict(origin=-2),
        dict(riders=0),
        dict(release_time=float("inf")),
        dict(max_wait=-1.0),
        dict(release_time=10.0, deadline=5.0),
        dict(direct_cost=float("nan")),
        dict(schema_version=99),
    ])
    def test_validation_rejects(self, overrides):
        fields = dict(request_id=1, origin=0, destination=7,
                      release_time=0.0)
        fields.update(overrides)
        with pytest.raises(SchemaError):
            RideRequest(**fields)

    def test_unknown_fields_rejected(self):
        payload = _ride(1).to_dict() | {"surge_multiplier": 2.0}
        with pytest.raises(SchemaError, match="unknown fields"):
            RideRequest.from_dict(payload)

    def test_version_mismatch_rejected(self):
        payload = _ride(1).to_dict() | {"schema_version": SCHEMA_VERSION + 1}
        with pytest.raises(SchemaError, match="incompatible schema_version"):
            RideRequest.from_dict(payload)
        with pytest.raises(SchemaError):
            check_schema_version({"schema_version": 0}, kind="RideRequest")

    def test_invalid_json_rejected(self):
        with pytest.raises(SchemaError, match="invalid JSON"):
            RideRequest.from_json("{not json")
        with pytest.raises(SchemaError, match="must be an object"):
            RideRequest.from_json("[1, 2]")

    def test_internal_request_round_trip_is_loss_free(
        self, make_request, oracle, config
    ):
        request = make_request(5, 0, 21, 7.0, riders=2)
        ride = RideRequest.from_request(request)
        back = ride.to_request(oracle=oracle, config=config)
        assert back == request

    def test_to_request_derives_missing_fields(self, oracle, config):
        ride = _ride(6, 10.0, origin=0, destination=21)
        request = ride.to_request(oracle=oracle, config=config)
        direct = oracle.cost(0, 21)
        assert request.direct_cost == direct
        assert request.deadline == 10.0 + config.gamma * direct
        assert request.max_wait == config.max_wait

    def test_to_request_raises_on_unreachable(self, config):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 100.0, 0.0)  # no edges: unroutable pair
        oracle = DistanceOracle(network)
        ride = _ride(7, origin=0, destination=1)
        with pytest.raises(repro.UnreachableError):
            ride.to_request(oracle=oracle, config=config)


class TestAssignmentEventSchema:
    def test_round_trip_flattens_enums(self):
        event = AssignmentEvent(
            event=AssignmentEventKind.REJECTED, time=5.0, request_id=1,
            batch_index=2, reason=RejectionReason.QUEUE_FULL,
        )
        payload = event.to_dict()
        assert payload["event"] == "rejected"
        assert payload["reason"] == "queue_full"
        assert AssignmentEvent.from_dict(payload) == event
        assert AssignmentEvent.from_json(event.to_json()) == event

    def test_assigned_requires_vehicle(self):
        with pytest.raises(SchemaError, match="vehicle_id"):
            AssignmentEvent(
                event=AssignmentEventKind.ASSIGNED, time=0.0, request_id=1
            )

    def test_unknown_wire_values_rejected(self):
        event = AssignmentEvent(
            event=AssignmentEventKind.COMPLETED, time=1.0, request_id=1,
            vehicle_id=0,
        )
        with pytest.raises(SchemaError):
            AssignmentEvent.from_dict(event.to_dict() | {"event": "teleported"})
        with pytest.raises(SchemaError):
            AssignmentEvent.from_dict(event.to_dict() | {"reason": "cosmic_ray"})


class TestServiceStatsSchema:
    def test_round_trip(self):
        stats = ServiceStats(
            received=10, accepted=8, rejected={"queue_full": 2}, assigned=6,
            completed=5, batches=3, queue_depth=1, queue_high_watermark=4,
            sim_time=15.0, service_rate=0.75,
        )
        assert ServiceStats.from_dict(stats.to_dict()) == stats
        assert ServiceStats.from_json(stats.to_json()) == stats

    @pytest.mark.parametrize("overrides", [
        dict(received=-1),
        dict(service_rate=1.5),
        dict(schema_version=2),
    ])
    def test_validation_rejects(self, overrides):
        with pytest.raises(SchemaError):
            ServiceStats(**overrides)


# --------------------------------------------------------------------- #
# ingestion queue
# --------------------------------------------------------------------- #
class TestIngestionQueue:
    def test_constructor_validates(self):
        with pytest.raises(ConfigurationError):
            IngestionQueue(capacity=0)
        with pytest.raises(ConfigurationError):
            IngestionQueue(policy="panic")
        with pytest.raises(TypeError):
            IngestionQueue(16)  # keyword-only

    def test_drains_in_release_order(self):
        queue = IngestionQueue(capacity=8)
        for ride in (_ride(3, 9.0), _ride(1, 2.0), _ride(2, 2.0)):
            assert queue.offer(ride).accepted
        # Strict bound: release == until belongs to the *next* batch.
        assert [r.request_id for r in queue.take_due(9.0)] == [1, 2]
        assert queue.depth == 1
        assert [r.request_id for r in queue.take_due(9.5)] == [3]

    def test_duplicates_rejected_even_after_consumption(self):
        queue = IngestionQueue(capacity=8)
        assert queue.offer(_ride(1)).accepted
        queue.take_due(100.0)
        admission = queue.offer(_ride(1))
        assert not admission.accepted
        assert admission.reason is RejectionReason.DUPLICATE_REQUEST

    def test_full_queue_rejects(self):
        queue = IngestionQueue(capacity=1)
        assert queue.offer(_ride(1)).accepted
        admission = queue.offer(_ride(2))
        assert admission == Admission(
            accepted=False, reason=RejectionReason.QUEUE_FULL, queue_depth=1
        )
        assert queue.counters.rejected == {"queue_full": 1}

    def test_drop_oldest_sheds_longest_queued(self):
        queue = IngestionQueue(capacity=2, policy="drop_oldest")
        queue.offer(_ride(1, 0.0))
        queue.offer(_ride(2, 5.0))
        admission = queue.offer(_ride(3, 10.0))
        assert admission.accepted
        assert admission.shed is not None
        assert admission.shed.request_id == 1
        assert queue.counters.rejected == {"shed_oldest": 1}
        assert [r.request_id for r in queue.take_due(100.0)] == [2, 3]

    def test_closed_queue_refuses(self):
        queue = IngestionQueue(capacity=2)
        queue.offer(_ride(1))
        queue.close()
        admission = queue.offer(_ride(2))
        assert admission.reason is RejectionReason.SHUTTING_DOWN
        # Queued requests stay drainable after close.
        assert [r.request_id for r in queue.take_due(100.0)] == [1]

    def test_high_watermark_tracks_peak(self):
        queue = IngestionQueue(capacity=8)
        for request_id in range(3):
            queue.offer(_ride(request_id))
        queue.take_due(100.0)
        queue.offer(_ride(9))
        assert queue.counters.high_watermark == 3
        assert queue.depth == 1

    def test_async_put_blocks_until_tick_frees_space(self):
        async def scenario():
            queue = IngestionQueue(capacity=1)
            assert (await queue.put(_ride(1, 0.0))).accepted
            waiter = asyncio.ensure_future(queue.put(_ride(2, 1.0)))
            await asyncio.sleep(0)
            assert not waiter.done()  # backpressure: full queue blocks
            assert [r.request_id for r in queue.take_due(10.0)] == [1]
            admission = await asyncio.wait_for(waiter, timeout=1.0)
            assert admission.accepted
            assert queue.depth == 1

        asyncio.run(scenario())

    def test_async_put_wakes_on_close(self):
        async def scenario():
            queue = IngestionQueue(capacity=1)
            await queue.put(_ride(1))
            waiter = asyncio.ensure_future(queue.put(_ride(2)))
            await asyncio.sleep(0)
            queue.close()
            admission = await asyncio.wait_for(waiter, timeout=1.0)
            assert admission.reason is RejectionReason.SHUTTING_DOWN

        asyncio.run(scenario())

    def test_truthiness_is_not_depth(self):
        assert bool(IngestionQueue(capacity=1)) is True
        assert len(IngestionQueue(capacity=1)) == 0


# --------------------------------------------------------------------- #
# service lifecycle
# --------------------------------------------------------------------- #
@pytest.fixture()
def make_service(grid_network, oracle, config):
    """Factory building a small service over the deterministic grid city."""

    def _make(**kwargs) -> DispatchService:
        return DispatchService(
            network=grid_network,
            oracle=oracle,
            vehicles=[
                Vehicle(vehicle_id=0, location=0),
                Vehicle(vehicle_id=1, location=35),
            ],
            dispatcher=make_dispatcher(kwargs.pop("algorithm", "pruneGDP")),
            config=config,
            **kwargs,
        )

    return _make


class TestDispatchServiceLifecycle:
    def test_constructor_is_keyword_only(self, grid_network, oracle, config):
        with pytest.raises(TypeError):
            DispatchService(grid_network, oracle)  # noqa: not keyword

    def test_submit_requires_start(self, make_service):
        service = make_service()
        with pytest.raises(ServiceError, match="not started"):
            service.submit(_ride(1))
        with pytest.raises(ServiceError, match="not started"):
            service.tick()

    def test_instances_run_once(self, make_service):
        service = make_service()
        service.start()
        with pytest.raises(ServiceError, match="already started"):
            service.start()
        with pytest.raises(ServiceError, match="not been shut down"):
            service.result
        service.shutdown()
        with pytest.raises(ServiceError, match="run once"):
            service.start()
        with pytest.raises(ServiceError, match="already stopped"):
            service.submit(_ride(1))

    def test_tick_aligns_windows_like_batch_stream(
        self, make_service, make_request
    ):
        service = make_service()
        service.start()
        # batch_period=5: release 7 -> first window [5, 10); release 17
        # lands two windows later, with an empty window in between that the
        # tick must still process (pending-pool retries happen there).
        service.submit(make_request(1, 0, 7, 7.0))
        service.submit(make_request(2, 35, 28, 17.0))
        assert service.tick() is not None  # [5, 10): request 1
        service.tick()  # [10, 15): empty window, still ticked
        service.tick()  # [15, 20): request 2
        assert service.stats().batches == 3
        assert service.tick() is None  # queue empty: no-op
        result = service.shutdown()
        assert result.stats.batches == 3
        assert result.stats.assigned == 2
        times = [e.time for e in result.events
                 if e.event is AssignmentEventKind.ASSIGNED]
        assert all(t >= 5.0 for t in times)

    def test_graceful_shutdown_drains_queue(self, make_service, make_request):
        service = make_service()
        service.start()
        # Five requests spanning several windows, never ticked manually:
        # the drain must give each one its dispatch opportunity.
        for i, release in enumerate((0.0, 3.0, 11.0, 22.0, 40.0)):
            admission = service.submit(make_request(i, 0, 7 + i, release))
            assert admission.accepted
        assert service.queue.depth == 5
        result = service.shutdown()
        assert service.queue.depth == 0
        assert service.stopped
        assert result.stats.queue_depth == 0
        assert result.stats.accepted == 5
        terminal = (
            result.stats.assigned
            + result.stats.expired
            + result.stats.dispatch_rejected
        )
        assert terminal == 5  # nothing silently vanished in the drain
        assert result.stats.assigned > 0

    def test_shutdown_without_drain_rejects_remainder(
        self, make_service, make_request
    ):
        service = make_service(
            service_config=ServiceConfig(drain_on_shutdown=False)
        )
        service.start()
        for i in range(3):
            service.submit(make_request(i, 0, 7, float(i)))
        result = service.shutdown()
        assert result.stats.rejected["shutting_down"] == 3
        assert result.stats.assigned == 0
        reasons = [e.reason for e in result.events]
        assert reasons.count(RejectionReason.SHUTTING_DOWN) == 3

    def test_unknown_node_refused_before_queueing(self, make_service):
        service = make_service()
        service.start()
        admission = service.submit(_ride(1, origin=9999))
        assert not admission.accepted
        assert admission.reason is RejectionReason.UNKNOWN_NODE
        assert service.queue.depth == 0
        assert service.stats().rejected == {"unknown_node": 1}
        service.shutdown()

    def test_duplicate_submission_rejected(self, make_service, make_request):
        service = make_service()
        service.start()
        request = make_request(1, 0, 7, 0.0)
        assert service.submit(request).accepted
        admission = service.submit(request)
        assert admission.reason is RejectionReason.DUPLICATE_REQUEST
        service.shutdown()

    def test_asubmit_is_the_async_twin(self, make_service, make_request):
        service = make_service()
        service.start()

        async def scenario():
            return await service.asubmit(make_request(1, 0, 7, 0.0))

        assert asyncio.run(scenario()).accepted
        result = service.shutdown()
        assert result.stats.assigned == 1

    def test_subscribers_stream_events(self, make_service, make_request):
        service = make_service()
        seen: list[AssignmentEvent] = []
        unsubscribe = service.subscribe(seen.append)
        service.start()
        service.submit(make_request(1, 0, 7, 0.0))
        service.tick()
        assert any(e.event is AssignmentEventKind.ASSIGNED for e in seen)
        count = len(seen)
        unsubscribe()
        service.submit(make_request(2, 35, 28, 20.0))
        service.shutdown()
        assert len(seen) == count  # nothing delivered after unsubscribe

    def test_event_history_is_bounded(self, make_service, make_request):
        service = make_service(service_config=ServiceConfig(event_history=1))
        service.start()
        for i in range(4):
            service.submit(make_request(i, 0, 7 + i, 0.0))
        result = service.shutdown()
        assert len(result.events) == 1
        assert result.stats.events_dropped > 0

    def test_health_endpoint_follows_lifecycle(
        self, make_service, make_request
    ):
        service = make_service()
        assert service.health()["status"] == "stopped"
        service.start()
        health = service.health()
        assert health["status"] == "ok"
        assert health["queue_capacity"] == ServiceConfig().queue_capacity
        assert health["slo_service_rate"] == ServiceConfig().slo_service_rate
        service.submit(make_request(1, 0, 7, 0.0))
        result = service.shutdown()
        assert service.health()["status"] == "stopped"
        assert result.slo_met == (
            result.service_rate >= ServiceConfig().slo_service_rate
        )

    def test_registry_carries_service_metrics(
        self, make_service, make_request
    ):
        service = make_service()
        service.start()
        service.submit(make_request(1, 0, 7, 0.0))
        service.tick()
        snapshot = service.registry().as_dict()
        assert snapshot["service.received"] == 1
        assert snapshot["service.accepted"] == 1
        assert snapshot["service.batches"] == 1
        assert "requests.assigned" in snapshot  # simulation half included
        service.shutdown()


class TestServiceConfigValidation:
    @pytest.mark.parametrize("overrides", [
        dict(queue_capacity=0),
        dict(admission_policy="panic"),
        dict(slo_service_rate=1.5),
        dict(event_history=-1),
        dict(max_drain_batches=0),
    ])
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**overrides)

    def test_with_overrides(self):
        config = ServiceConfig().with_overrides(queue_capacity=32)
        assert config.queue_capacity == 32
        assert config.admission_policy == ServiceConfig().admission_policy


# --------------------------------------------------------------------- #
# parity with batch mode (the acceptance gate)
# --------------------------------------------------------------------- #
def _assignment_pairs(events) -> list[tuple[int, int]]:
    return sorted(
        (event.subject, event.other)
        for event in events.of_kind(EventKind.REQUEST_ASSIGNED)
    )


class TestBatchParity:
    def test_service_reproduces_batch_assignments(self):
        workload = make_workload("nyc", scale=0.04, city_scale=0.35)
        batch = Simulator(
            network=workload.network,
            oracle=workload.fresh_oracle(),
            vehicles=workload.fresh_vehicles(),
            requests=list(workload.requests),
            dispatcher=make_dispatcher("pruneGDP"),
            config=workload.simulation_config,
            record_events=True,
        ).run()
        service = DispatchService(
            network=workload.network,
            oracle=workload.fresh_oracle(),
            vehicles=workload.fresh_vehicles(),
            dispatcher=make_dispatcher("pruneGDP"),
            config=workload.simulation_config,
        )
        outcome = service.serve(
            RideRequest.from_request(r) for r in workload.requests
        )
        assert _assignment_pairs(outcome.simulation.events) == (
            _assignment_pairs(batch.events)
        )
        assert outcome.unified_cost == batch.unified_cost
        assert outcome.stats.assigned == batch.metrics.assigned_requests

    def test_harness_service_mode_matches_single(self):
        workload = make_workload("nyc", scale=0.04, city_scale=0.35)
        single = run(RunSpec(
            mode="single", workload=workload, algorithm="pruneGDP"
        ))
        service = run(RunSpec(
            mode="service", workload=workload, algorithm="pruneGDP"
        ))
        assert single.simulation is not None
        assert service.service is not None
        assert service.service.simulation.unified_cost == (
            single.simulation.unified_cost
        )

    def test_serve_survives_a_tight_queue(self):
        """Under a deliberately tiny queue serve() ticks early instead of
        deadlocking; throughput accounting still balances."""
        workload = make_workload("nyc", scale=0.03, city_scale=0.35)
        service = DispatchService(
            network=workload.network,
            oracle=workload.fresh_oracle(),
            vehicles=workload.fresh_vehicles(),
            dispatcher=make_dispatcher("pruneGDP"),
            config=workload.simulation_config,
            service_config=ServiceConfig(queue_capacity=2),
        )
        outcome = service.serve(
            RideRequest.from_request(r) for r in workload.requests
        )
        assert outcome.stats.accepted == len(workload.requests)
        assert outcome.stats.queue_depth == 0


# --------------------------------------------------------------------- #
# RunSpec validation and deprecation shims
# --------------------------------------------------------------------- #
class TestRunSpec:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            RunSpec(mode="batch")

    def test_rejects_mode_only_fields_on_wrong_mode(self):
        with pytest.raises(ConfigurationError, match="chaos="):
            RunSpec(mode="single", chaos="flaky_oracle")
        with pytest.raises(ConfigurationError, match="service_config="):
            RunSpec(mode="single", service_config=ServiceConfig())

    def test_rejects_preset_name_in_workload_field(self):
        with pytest.raises(ConfigurationError, match="preset="):
            RunSpec(mode="service", workload="nyc")

    def test_scenario_modes_need_cell_coordinates(self):
        with pytest.raises(ConfigurationError, match="scenario"):
            RunSpec(mode="scenario")
        with pytest.raises(ConfigurationError, match="backend"):
            RunSpec(mode="chaos", scenario="stadium_surge")

    def test_traced_needs_out_dir(self):
        with pytest.raises(ConfigurationError, match="out_dir"):
            RunSpec(mode="traced")

    def test_grid_builds_the_product(self):
        specs = RunSpec.grid(
            scenarios=("a", "b"), backends=("ch",),
            policies=("eager", "repair"), mode="scenario",
        )
        assert len(specs) == 4
        assert {spec.refresh_policy for spec in specs} == {"eager", "repair"}

    def test_with_overrides(self):
        spec = RunSpec(mode="single").with_overrides(algorithm="SARD")
        assert spec.algorithm == "SARD"


class TestDeprecationShims:
    def test_harness_grid_wrappers_warn(self):
        with pytest.deprecated_call(match="run_scenario_grid is deprecated"):
            assert run_scenario_grid((), (), ()) == []
        with pytest.deprecated_call(match="run_chaos_grid is deprecated"):
            assert run_chaos_grid((), (), ()) == []

    def test_package_getattr_warns_and_delegates(self):
        with pytest.deprecated_call(match="run_traced_case"):
            shim = repro.run_traced_case
        assert callable(shim)
        with pytest.deprecated_call(
            match='run_grid\\(RunSpec.grid\\(mode="chaos"'
        ):
            repro.run_chaos_grid

    def test_old_names_left_the_eager_namespace(self):
        assert "run_traced_case" not in repro.__all__
        assert "run" in repro.__all__ and "RunSpec" in repro.__all__
        with pytest.raises(AttributeError):
            repro.run_everything_everywhere

    def test_new_front_door_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run(RunSpec(
                mode="single",
                workload=make_workload("nyc", scale=0.02, city_scale=0.35),
                algorithm="pruneGDP",
            ))
