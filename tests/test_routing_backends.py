"""Tests for the pluggable routing backends (CSR / CH / hub labels).

The load-bearing property: every backend is an exact drop-in for plain
Dijkstra -- equal costs (within 1e-6) on arbitrary directed networks
including unreachable pairs, uniform logical query accounting, and identical
dispatcher behaviour.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.dispatch.sard import SARDDispatcher
from repro.exceptions import ConfigurationError, NetworkError
from repro.model.vehicle import Vehicle
from repro.network.generators import grid_city
from repro.network.road_network import RoadNetwork
from repro.network.routing import (
    BACKEND_NAMES,
    CSRGraph,
    ContractionHierarchy,
    HubLabeling,
    routing_data,
)
from repro.network.shortest_path import DistanceOracle
from repro.workloads.presets import make_workload

ALL_BACKENDS = ("dijkstra", "alt", "ch", "hub_label")


def _random_network(num_nodes: int, density: float, seed: int) -> RoadNetwork:
    """A random directed weighted network; sparse ones are disconnected."""
    rng = random.Random(seed)
    network = RoadNetwork()
    for node in range(num_nodes):
        network.add_node(node, rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
    for u in range(num_nodes):
        for v in range(num_nodes):
            if u != v and rng.random() < density:
                network.add_edge(u, v, rng.uniform(1.0, 100.0))
    return network


class TestCSRGraph:
    def test_round_trips_the_adjacency(self):
        network = _random_network(20, 0.15, seed=5)
        csr = CSRGraph.from_network(network)
        assert csr.num_nodes == network.num_nodes
        assert csr.num_edges == network.num_edges
        for node in network.nodes():
            index = csr.require_index(node)
            out = {csr.node_ids[j]: w for j, w in csr.out_edges(index)}
            assert out == dict(network.neighbors(node))
            incoming = {csr.node_ids[j]: w for j, w in csr.in_edges(index)}
            assert incoming == dict(network.predecessors(node))

    def test_unknown_node_raises(self):
        csr = CSRGraph.from_network(_random_network(5, 0.3, seed=1))
        with pytest.raises(NetworkError):
            csr.require_index(999)

    def test_sssp_settled_entries_are_exact(self):
        network = _random_network(25, 0.12, seed=8)
        csr = CSRGraph.from_network(network)
        full, _ = csr.sssp(0)
        partial, settled = csr.sssp(0, targets={csr.num_nodes - 1})
        for index in settled:
            assert partial[index] == pytest.approx(full[index])


class TestBackendEquivalence:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_nodes=st.integers(min_value=6, max_value=26),
        density=st.floats(min_value=0.04, max_value=0.3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_ch_and_hub_label_match_dijkstra(self, num_nodes, density, seed):
        """Property: preprocessed backends equal Dijkstra on random networks,
        including unreachable pairs (both sides must agree on ``inf``)."""
        network = _random_network(num_nodes, density, seed)
        plain = DistanceOracle(network, cache_size=0)
        ch = DistanceOracle(network, cache_size=0, backend="ch")
        hub = DistanceOracle(network, cache_size=0, backend="hub_label")
        for u in range(num_nodes):
            for v in range(num_nodes):
                expected = plain.cost(u, v)
                for oracle in (ch, hub):
                    actual = oracle.cost(u, v)
                    if math.isinf(expected):
                        assert math.isinf(actual), (u, v, actual)
                    else:
                        assert actual == pytest.approx(expected, abs=1e-6)

    def test_equivalence_on_jittered_city_with_expressways(self):
        city = grid_city(
            9, 9, block_length=140.0, perturbation=0.3, express_fraction=0.05, seed=17
        )
        plain = DistanceOracle(city, cache_size=0)
        rng = random.Random(4)
        nodes = list(city.nodes())
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(150)]
        for backend in ("alt", "ch", "hub_label"):
            oracle = DistanceOracle(city, cache_size=0, backend=backend)
            for u, v in pairs:
                assert oracle.cost(u, v) == pytest.approx(plain.cost(u, v), abs=1e-6)

    def test_many_to_many_matches_point_queries(self):
        network = _random_network(24, 0.1, seed=3)
        rng = random.Random(9)
        sources = rng.sample(range(24), 6)
        targets = rng.sample(range(24), 7)
        reference = DistanceOracle(network, cache_size=0)
        for backend in ALL_BACKENDS:
            oracle = DistanceOracle(network, backend=backend)
            table = oracle.many_to_many(sources, targets)
            assert set(table) == {(s, t) for s in sources for t in targets}
            for (s, t), value in table.items():
                expected = reference.cost(s, t)
                if math.isinf(expected):
                    assert math.isinf(value)
                else:
                    assert value == pytest.approx(expected, abs=1e-6)

    def test_path_works_on_every_backend(self, grid_network):
        for backend in ALL_BACKENDS:
            oracle = DistanceOracle(grid_network, backend=backend)
            path = oracle.path(0, 35)
            assert path[0] == 0 and path[-1] == 35
            total = sum(
                grid_network.edge_cost(u, v) for u, v in zip(path, path[1:])
            )
            assert total == pytest.approx(oracle.cost(0, 35))

    def test_unknown_endpoint_raises_on_every_backend(self, grid_network):
        for backend in ALL_BACKENDS:
            oracle = DistanceOracle(grid_network, backend=backend)
            with pytest.raises(NetworkError):
                oracle.cost(0, 10_000)

    def test_unknown_self_pair_raises(self, grid_network):
        """Regression: ``cost(u, u)`` / ``path(u, u)`` used to short-circuit
        to ``0.0`` / ``[u]`` without checking the node exists."""
        for backend in ALL_BACKENDS:
            oracle = DistanceOracle(grid_network, backend=backend)
            with pytest.raises(NetworkError):
                oracle.cost(10_000, 10_000)
            with pytest.raises(NetworkError):
                oracle.path(10_000, 10_000)
            assert oracle.cost(0, 0) == 0.0
            assert oracle.path(0, 0) == [0]

    def test_ch_many_to_many_answers_requested_pairs_only(self, grid_network):
        """The CH backend batches over exactly the requested pairs (not the
        dense cross product) and the facade actually routes through it."""
        from repro.network.routing import CHBackend

        reference = DistanceOracle(grid_network, cache_size=0)
        oracle = DistanceOracle(grid_network, cache_size=0, backend="ch")
        backend = oracle._backend  # noqa: SLF001 - wiring under test
        assert isinstance(backend, CHBackend)

        seen_pairs: list[tuple[int, int]] = []
        original = CHBackend.many_to_many

        def spy(self, pairs):
            seen_pairs.extend(pairs)
            return original(self, pairs)

        CHBackend.many_to_many = spy
        try:
            table = oracle.many_to_many([0, 1], [20, 21, 22])
        finally:
            CHBackend.many_to_many = original
        assert len(seen_pairs) == 6  # requested pairs, no dense blow-up
        assert len(set(seen_pairs)) == 6
        for (s, t), value in table.items():
            assert value == pytest.approx(reference.cost(s, t), abs=1e-9)

        # Direct backend call: duplicate pairs are answered once.
        csr = oracle._data.csr  # noqa: SLF001
        pair = (csr.require_index(0), csr.require_index(20))
        t0, work = backend.many_to_many([pair, pair])
        assert set(t0) == {pair}
        assert work > 0


class TestQueryStatistics:
    def test_snapshot_consistent_across_backends(self, grid_network):
        """Regression: the paper's "#Shortest Path Queries" column (the
        ``queries`` counter) must not depend on the routing backend, and the
        snapshot schema must stay identical."""
        rng = random.Random(11)
        nodes = list(grid_network.nodes())
        calls = [tuple(rng.sample(nodes, 2)) for _ in range(40)]
        calls += calls[:10]  # repeats -> cache traffic
        snapshots = {}
        for backend in ALL_BACKENDS:
            oracle = DistanceOracle(grid_network, backend=backend)
            for u, v in calls:
                oracle.cost(u, v)
            oracle.many_to_many(nodes[:4], nodes[10:13])
            snapshots[backend] = oracle.stats.snapshot()
        reference = snapshots["dijkstra"]
        assert set(reference) == {
            "queries", "cache_hits", "searches", "settled_nodes",
            "fallback_queries",
        }
        for backend, snapshot in snapshots.items():
            assert set(snapshot) == set(reference)
            assert snapshot["queries"] == reference["queries"], backend
            assert snapshot["searches"] > 0, backend

    def test_many_to_many_counts_logical_queries_and_hits(self, grid_network):
        oracle = DistanceOracle(grid_network, backend="hub_label")
        oracle.cost(0, 7)
        before = oracle.stats.snapshot()
        oracle.many_to_many([0, 1], [7, 8])
        after = oracle.stats.snapshot()
        assert after["queries"] - before["queries"] == 4
        assert after["cache_hits"] - before["cache_hits"] >= 1  # (0, 7) was cached

    def test_prefetch_is_invisible_to_logical_counters(self, grid_network):
        """Cache warming must not distort the reported query column."""
        for backend in ALL_BACKENDS:
            oracle = DistanceOracle(grid_network, backend=backend)
            oracle.prefetch([0, 1, 2], [20, 21])
            assert oracle.stats.queries == 0, backend
            assert oracle.stats.cache_hits == 0, backend
            assert oracle.cache_len > 0, backend
            searches = oracle.stats.searches
            assert oracle.cost(0, 20) == pytest.approx(
                DistanceOracle(grid_network).cost(0, 20)
            )
            assert oracle.stats.searches == searches  # answered from cache
            assert oracle.stats.cache_hits == 1

    def test_preprocessed_backend_uses_pair_cache(self, grid_network):
        oracle = DistanceOracle(grid_network, backend="hub_label")
        oracle.cost(0, 20)
        searches = oracle.stats.searches
        oracle.cost(0, 20)
        assert oracle.stats.searches == searches
        assert oracle.stats.cache_hits >= 1


class TestConfigurationAndSharing:
    def test_invalid_backend_rejected(self, grid_network):
        with pytest.raises(NetworkError):
            DistanceOracle(grid_network, backend="quantum")
        with pytest.raises(ConfigurationError):
            SimulationConfig(routing_backend="quantum")
        assert set(BACKEND_NAMES) == set(ALL_BACKENDS)

    def test_workload_threads_backend_into_fresh_oracles(self):
        workload = make_workload(
            "nyc",
            city_scale=0.2,
            workload_overrides={"num_requests": 10, "num_vehicles": 3},
            simulation_overrides={"routing_backend": "hub_label"},
        )
        assert workload.simulation_config.routing_backend == "hub_label"
        assert workload.fresh_oracle().backend_name == "hub_label"
        assert workload.fresh_oracle(backend="ch").backend_name == "ch"

    def test_preprocessing_shared_between_oracles(self, grid_network):
        first = DistanceOracle(grid_network, backend="ch")
        second = DistanceOracle(grid_network, backend="ch")
        first.cost(0, 20)
        second.cost(0, 20)
        assert first._data is second._data  # noqa: SLF001 - sharing is the contract

    def test_routing_data_invalidated_on_mutation(self, grid_network):
        data = routing_data(grid_network)
        grid_network.add_node(999, 5.0, 5.0)
        grid_network.add_edge(0, 999, 3.0)
        refreshed = routing_data(grid_network)
        assert refreshed is not data
        assert refreshed.csr.num_nodes == grid_network.num_nodes

    def test_routing_data_invalidated_on_reweight(self, grid_network):
        """Regression: a reweight keeps ``(num_nodes, num_edges)`` constant,
        so staleness detection must come from the mutation counter -- and a
        fresh preprocessed oracle must serve the *new* cost."""
        old_cost = DistanceOracle(grid_network, backend="hub_label").cost(0, 1)
        data = routing_data(grid_network)
        grid_network.add_edge(0, 1, 9999.0)  # reweight an existing edge
        assert routing_data(grid_network) is not data
        new_cost = DistanceOracle(grid_network, backend="hub_label").cost(0, 1)
        assert new_cost != old_cost
        assert new_cost == pytest.approx(DistanceOracle(grid_network).cost(0, 1))

    def test_routing_data_invalidated_on_edge_removal(self, grid_network):
        data = routing_data(grid_network)
        grid_network.remove_edge(0, 1)
        refreshed = routing_data(grid_network)
        assert refreshed is not data
        assert refreshed.csr.num_edges == grid_network.num_edges
        for backend in ("ch", "hub_label"):
            assert DistanceOracle(grid_network, backend=backend).cost(
                0, 1
            ) == pytest.approx(DistanceOracle(grid_network).cost(0, 1))

    def test_fingerprint_is_constant_time(self, grid_network):
        """The fingerprint must not iterate edges (the old XOR checksum was
        O(E) per oracle construction and could cancel out)."""
        from repro.network.routing.backends import network_fingerprint as _fingerprint

        calls = 0
        original = type(grid_network).edges

        def counting(self):
            nonlocal calls
            calls += 1
            return original(self)

        type(grid_network).edges = counting
        try:
            fingerprint = _fingerprint(grid_network)
        finally:
            type(grid_network).edges = original
        assert calls == 0
        assert fingerprint == (
            grid_network.num_nodes,
            grid_network.num_edges,
            grid_network.mutation_count,
        )

    def test_hub_labels_cover_ch_hierarchy(self, grid_network):
        data = routing_data(grid_network)
        hierarchy = data.hierarchy
        labels = data.labeling
        assert isinstance(hierarchy, ContractionHierarchy)
        assert isinstance(labels, HubLabeling)
        assert labels.average_label_size() >= 1.0
        # Every node's forward label contains itself at distance zero.
        for index in range(data.csr.num_nodes):
            assert (index, 0.0) in labels.fwd_labels[index]


class TestDispatchParity:
    def test_sard_assignments_identical_across_backends(self):
        workload = make_workload(
            "nyc",
            city_scale=0.25,
            workload_overrides={"num_requests": 40, "num_vehicles": 8},
        )
        reference = None
        for backend in ("dijkstra", "hub_label"):
            oracle = workload.fresh_oracle(backend=backend)
            vehicles: list[Vehicle] = workload.fresh_vehicles()
            from repro.simulation.engine import Simulator

            simulator = Simulator(
                network=workload.network,
                oracle=oracle,
                vehicles=vehicles,
                requests=list(workload.requests),
                dispatcher=SARDDispatcher(),
                config=workload.simulation_config,
                record_events=False,
            )
            result = simulator.run()
            signature = (
                result.metrics.assigned_requests,
                sorted(
                    (
                        v.vehicle_id,
                        tuple(sorted(request.request_id for request, _ in v.completed)),
                    )
                    for v in vehicles
                ),
            )
            if reference is None:
                reference = signature
            else:
                assert signature == reference
