"""Tests for the uniform grid spatial index."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import NetworkError
from repro.network.grid_index import GridIndex


@pytest.fixture()
def index() -> GridIndex:
    return GridIndex((0.0, 0.0, 1000.0, 1000.0), cells_per_axis=10)


class TestMaintenance:
    def test_insert_and_len(self, index: GridIndex):
        index.insert("a", 10, 10)
        index.insert("b", 500, 500)
        assert len(index) == 2
        assert "a" in index and "c" not in index

    def test_insert_same_key_moves(self, index: GridIndex):
        index.insert("a", 10, 10)
        index.insert("a", 900, 900)
        assert len(index) == 1
        assert index.position("a") == (900.0, 900.0)
        assert index.query_radius(10, 10, 50) == []

    def test_remove(self, index: GridIndex):
        index.insert("a", 10, 10)
        index.remove("a")
        assert len(index) == 0
        index.remove("a")  # idempotent

    def test_move(self, index: GridIndex):
        index.insert("a", 10, 10)
        index.move("a", 700, 700)
        assert "a" in index.query_radius(700, 700, 5)

    def test_clear(self, index: GridIndex):
        index.insert("a", 1, 1)
        index.clear()
        assert len(index) == 0

    def test_position_of_missing_key_raises(self, index: GridIndex):
        with pytest.raises(NetworkError):
            index.position("ghost")

    def test_invalid_bounds_rejected(self):
        with pytest.raises(NetworkError):
            GridIndex((0, 0, 0, 10))
        with pytest.raises(NetworkError):
            GridIndex((0, 0, 10, 10), cells_per_axis=0)


class TestQueries:
    def test_radius_query_matches_brute_force(self):
        rng = random.Random(4)
        index = GridIndex((0, 0, 1000, 1000), cells_per_axis=8)
        points = {i: (rng.uniform(0, 1000), rng.uniform(0, 1000)) for i in range(200)}
        for key, (x, y) in points.items():
            index.insert(key, x, y)
        for _ in range(20):
            qx, qy, radius = rng.uniform(0, 1000), rng.uniform(0, 1000), rng.uniform(10, 400)
            expected = {
                key
                for key, (x, y) in points.items()
                if math.hypot(x - qx, y - qy) <= radius
            }
            assert set(index.query_radius(qx, qy, radius)) == expected

    def test_radius_query_outside_bounds_is_clamped(self, index: GridIndex):
        index.insert("a", 5, 5)
        assert index.query_radius(-50, -50, 100) == ["a"]

    def test_negative_radius_rejected(self, index: GridIndex):
        with pytest.raises(NetworkError):
            index.query_radius(0, 0, -1)

    def test_rectangle_query(self, index: GridIndex):
        index.insert("a", 100, 100)
        index.insert("b", 300, 300)
        index.insert("c", 800, 800)
        found = set(index.query_rectangle(50, 50, 350, 350))
        assert found == {"a", "b"}

    def test_nearest(self, index: GridIndex):
        index.insert("a", 100, 100)
        index.insert("b", 900, 900)
        assert index.nearest(120, 120) == "a"
        assert index.nearest(850, 880) == "b"

    def test_nearest_empty_index(self, index: GridIndex):
        assert index.nearest(0, 0) is None

    def test_cell_counts_and_center(self, index: GridIndex):
        index.insert("a", 10, 10)
        index.insert("b", 20, 20)
        counts = index.cell_counts()
        cell = index.cell_of_point(15, 15)
        assert counts[cell] == 2
        cx, cy = index.cell_center(cell)
        assert 0 <= cx <= 100 and 0 <= cy <= 100

    def test_for_network_covers_all_nodes(self, grid_network):
        index = GridIndex.for_network(grid_network, cells_per_axis=4)
        for node in grid_network.nodes():
            x, y = grid_network.position(node)
            index.insert(node, x, y)
        assert len(index) == grid_network.num_nodes

    def test_estimated_memory_positive(self, index: GridIndex):
        index.insert("a", 1, 1)
        assert index.estimated_memory_bytes() > 0
