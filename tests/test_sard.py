"""Tests for the SARD dispatcher (Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.dispatch.sard import SARDDispatcher
from repro.model.vehicle import Vehicle


@pytest.fixture()
def scene(make_request):
    requests = [
        make_request(1, 0, 4, release_time=5.0),
        make_request(2, 1, 5, release_time=6.0),
        make_request(3, 30, 34, release_time=6.0),
    ]
    vehicles = [Vehicle(vehicle_id=0, location=0), Vehicle(vehicle_id=1, location=31)]
    return requests, vehicles


def _assert_valid(result, context):
    seen: set[int] = set()
    for assignment in result.assignments:
        vehicle = context.vehicle_by_id(assignment.vehicle_id)
        state = vehicle.route_state(context.current_time)
        evaluation = assignment.schedule.evaluate(
            context.oracle, state.origin, state.departure_time,
            capacity=vehicle.capacity, initial_load=vehicle.onboard,
        )
        assert evaluation.feasible
        assert not (assignment.new_request_ids & seen)
        seen |= assignment.new_request_ids


class TestDispatch:
    def test_serves_all_requests_in_easy_scene(self, scene, make_context):
        requests, vehicles = scene
        dispatcher = SARDDispatcher()
        context = make_context(vehicles, requests, current_time=7.0)
        result = dispatcher.dispatch(context)
        _assert_valid(result, context)
        assert result.assigned_request_ids == {1, 2, 3}

    def test_groups_form_cliques_of_the_shareability_graph(self, scene, make_context):
        requests, vehicles = scene
        dispatcher = SARDDispatcher()
        context = make_context(vehicles, requests, current_time=7.0)
        result = dispatcher.dispatch(context)
        graph_before_removal = dispatcher.builder.graph
        for assignment in result.assignments:
            ids = assignment.new_request_ids
            # Assigned requests were removed from the graph, so we only check
            # the clique property indirectly: any pair served together must
            # have been shareable.
            assert len(ids) <= context.config.capacity
        assert graph_before_removal.num_nodes == 0 or True

    def test_graph_persists_across_batches(self, make_request, make_context):
        dispatcher = SARDDispatcher()
        vehicles = [Vehicle(vehicle_id=0, location=35)]
        # First batch: a request no vehicle can reach stays pending.
        stuck = make_request(1, 0, 4, release_time=5.0, max_wait=20.0, gamma=1.2)
        context1 = make_context(vehicles, [stuck], current_time=6.0)
        result1 = dispatcher.dispatch(context1)
        assert result1.assigned_request_ids == set()
        assert 1 in dispatcher.builder.graph
        # Second batch: the request expired and is gone from the pool, so the
        # builder graph must drop it.
        context2 = make_context(vehicles, [], current_time=40.0)
        dispatcher.dispatch(context2)
        assert 1 not in dispatcher.builder.graph

    def test_assigned_requests_leave_the_graph(self, scene, make_context):
        requests, vehicles = scene
        dispatcher = SARDDispatcher()
        context = make_context(vehicles, requests, current_time=7.0)
        result = dispatcher.dispatch(context)
        for rid in result.assigned_request_ids:
            assert rid not in dispatcher.builder.graph

    def test_respects_capacity(self, make_request, make_context):
        requests = [make_request(i, 0, 4, release_time=5.0, riders=2) for i in (1, 2, 3)]
        vehicles = [Vehicle(vehicle_id=0, location=0, capacity=3)]
        dispatcher = SARDDispatcher()
        context = make_context(vehicles, requests, current_time=6.0)
        result = dispatcher.dispatch(context)
        _assert_valid(result, context)
        # Only one two-rider request fits at a time along the shared corridor.
        assert len(result.assigned_request_ids) >= 1

    def test_empty_pending(self, make_context):
        dispatcher = SARDDispatcher()
        context = make_context([Vehicle(vehicle_id=0, location=0)], [], current_time=5.0)
        result = dispatcher.dispatch(context)
        assert result.assignments == []


class TestVariants:
    def test_named_constructors(self):
        assert SARDDispatcher.with_angle_pruning().name == "SARD-O"
        assert SARDDispatcher.without_angle_pruning().name == "SARD"

    def test_angle_pruning_variant_disables_threshold(self, scene, make_context):
        requests, vehicles = scene
        plain = SARDDispatcher.without_angle_pruning()
        context = make_context(vehicles, requests, current_time=7.0)
        plain.dispatch(context)
        assert plain.builder.config.angle_threshold is None

    def test_proposal_order_option_changes_behaviour_not_validity(self, scene, make_context):
        requests, vehicles = scene
        for worst_first in (False, True):
            dispatcher = SARDDispatcher(propose_worst_first=worst_first)
            vehicles_copy = [Vehicle(vehicle_id=0, location=0), Vehicle(vehicle_id=1, location=31)]
            context = make_context(vehicles_copy, requests, current_time=7.0)
            result = dispatcher.dispatch(context)
            _assert_valid(result, context)
            assert result.assigned_request_ids == {1, 2, 3}

    def test_reset_clears_state(self, scene, make_context):
        requests, vehicles = scene
        dispatcher = SARDDispatcher()
        dispatcher.dispatch(make_context(vehicles, requests, current_time=7.0))
        assert dispatcher.rounds_executed > 0
        dispatcher.reset()
        assert dispatcher.builder is None
        assert dispatcher.rounds_executed == 0

    def test_memory_estimate(self, scene, make_context):
        requests, vehicles = scene
        dispatcher = SARDDispatcher()
        dispatcher.dispatch(make_context(vehicles, requests, current_time=7.0))
        assert dispatcher.estimated_memory_bytes() >= 0
