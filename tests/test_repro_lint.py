"""Tests for the repro-lint static-analysis pass (repro.analysis).

Each rule is exercised against a violating/clean fixture pair from
``tests/lint_fixtures/`` with exact line-number assertions, followed by
waiver semantics, baseline semantics, the autofixer and the CLI exit
codes (including the synthetic-violation gate the CI job relies on).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import RULES, Baseline, rule_catalog
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import (
    EXCLUDED_DIRS,
    FileReport,
    analyze_source,
    iter_python_files,
)
from repro.analysis.fixes import fix_source

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: Virtual paths used to lint fixture sources in and out of rule scope.
IN_SCOPE = "src/repro/fake/fixture.py"
ROUTING_SCOPE = "src/repro/network/routing/fixture.py"
TEST_SCOPE = "tests/fixture.py"
TIMING_SHIM = "src/repro/experiments/timing.py"


def lint_fixture(name: str, virtual_path: str = IN_SCOPE) -> FileReport:
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return analyze_source(virtual_path, source)


def hits(report: FileReport) -> list[tuple[str, int]]:
    return [(v.code, v.line) for v in report.violations]


# ---------------------------------------------------------------------------
# Rule-by-rule: exact codes and line numbers.
# ---------------------------------------------------------------------------


class TestDET001:
    def test_flags_wall_clock_calls(self) -> None:
        report = lint_fixture("det001_violating.py")
        assert hits(report) == [("DET001", 9), ("DET001", 13), ("DET001", 17)]

    def test_perf_counter_is_clean(self) -> None:
        assert hits(lint_fixture("det001_clean.py")) == []

    def test_out_of_scope_paths_are_exempt(self) -> None:
        # The rule only covers simulation code under src/repro/.
        assert hits(lint_fixture("det001_violating.py", TEST_SCOPE)) == []

    def test_timing_shim_is_allowlisted(self) -> None:
        assert hits(lint_fixture("det001_violating.py", TIMING_SHIM)) == []


class TestDET002:
    def test_flags_module_global_rng(self) -> None:
        report = lint_fixture("det002_violating.py")
        assert hits(report) == [("DET002", 6), ("DET002", 10), ("DET002", 11)]

    def test_applies_outside_src_too(self) -> None:
        report = lint_fixture("det002_violating.py", TEST_SCOPE)
        assert [code for code, _ in hits(report)] == ["DET002"] * 3

    def test_seeded_stream_is_clean(self) -> None:
        assert hits(lint_fixture("det002_clean.py")) == []


class TestDET003:
    def test_flags_ordered_iteration_over_sets(self) -> None:
        report = lint_fixture("det003_violating.py")
        assert hits(report) == [("DET003", 7), ("DET003", 9), ("DET003", 10)]

    def test_every_hit_is_autofixable(self) -> None:
        report = lint_fixture("det003_violating.py")
        assert all(v.fix is not None for v in report.violations)

    def test_sorted_and_reductions_are_clean(self) -> None:
        assert hits(lint_fixture("det003_clean.py")) == []


class TestINV001:
    def test_flags_csr_mutations(self) -> None:
        report = lint_fixture("inv001_violating.py")
        assert hits(report) == [
            ("INV001", 5),
            ("INV001", 6),
            ("INV001", 7),
            ("INV001", 8),
        ]

    def test_routing_layer_is_exempt(self) -> None:
        assert hits(lint_fixture("inv001_violating.py", ROUTING_SCOPE)) == []

    def test_reads_are_clean(self) -> None:
        assert hits(lint_fixture("inv001_clean.py")) == []


class TestINV002:
    def test_flags_exact_cost_equality(self) -> None:
        report = lint_fixture("inv002_violating.py")
        assert hits(report) == [("INV002", 5), ("INV002", 9)]

    def test_out_of_scope_paths_are_exempt(self) -> None:
        assert hits(lint_fixture("inv002_violating.py", TEST_SCOPE)) == []

    def test_infinity_sentinel_and_helper_are_clean(self) -> None:
        assert hits(lint_fixture("inv002_clean.py")) == []


class TestSTY001:
    def test_flags_swallowing_handlers(self) -> None:
        report = lint_fixture("sty001_violating.py")
        assert hits(report) == [("STY001", 7), ("STY001", 14)]

    def test_reraise_and_narrow_types_are_clean(self) -> None:
        assert hits(lint_fixture("sty001_clean.py")) == []


# ---------------------------------------------------------------------------
# Waiver semantics.
# ---------------------------------------------------------------------------


class TestWaivers:
    def test_reasoned_waiver_suppresses_matching_code_only(self) -> None:
        report = lint_fixture("waivers.py")
        # Line 5: suppressed with a reason.  Line 6: suppressed but
        # reasonless -> WVR001.  Line 7: waiver names the wrong code, so
        # the DET002 violation survives (the waiver itself has a reason).
        assert hits(report) == [("WVR001", 6), ("DET002", 7)]

    def test_waivers_are_recorded_for_statistics(self) -> None:
        report = lint_fixture("waivers.py")
        assert [w.line for w in report.waivers] == [5, 6, 7]
        assert report.waivers[0].reason

    def test_wvr001_itself_cannot_be_waived(self) -> None:
        source = "x = 1  # repro-lint: disable=WVR001\n"
        report = analyze_source(IN_SCOPE, source)
        assert hits(report) == [("WVR001", 1)]


# ---------------------------------------------------------------------------
# Baseline semantics.
# ---------------------------------------------------------------------------


def _reports(source: str, path: str = IN_SCOPE) -> list[FileReport]:
    return [analyze_source(path, source)]


class TestBaseline:
    SOURCE = "import random\nJITTER = random.random()\n"

    def test_frozen_violations_are_not_new(self) -> None:
        reports = _reports(self.SOURCE)
        baseline = Baseline.from_reports(reports)
        assert baseline.filter_new(reports) == []

    def test_fingerprints_survive_line_moves(self) -> None:
        baseline = Baseline.from_reports(_reports(self.SOURCE))
        shifted = "import random\n\n\n# moved down by unrelated edits\nJITTER = random.random()\n"
        assert baseline.filter_new(_reports(shifted)) == []

    def test_extra_copy_of_frozen_line_is_new(self) -> None:
        baseline = Baseline.from_reports(_reports(self.SOURCE))
        doubled = self.SOURCE + "JITTER = random.random()\n"
        fresh = baseline.filter_new(_reports(doubled))
        assert [v.code for v in fresh] == ["DET002"]

    def test_editing_the_violating_line_is_new(self) -> None:
        baseline = Baseline.from_reports(_reports(self.SOURCE))
        edited = "import random\nJITTER = random.random() * 2\n"
        fresh = baseline.filter_new(_reports(edited))
        assert [v.code for v in fresh] == ["DET002"]

    def test_roundtrip_and_version_check(self, tmp_path: Path) -> None:
        baseline = Baseline.from_reports(_reports(self.SOURCE))
        target = tmp_path / "baseline.json"
        baseline.save(target)
        assert Baseline.load(target).entries == baseline.entries
        target.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(target)

    def test_committed_baseline_is_empty(self) -> None:
        committed = Path(__file__).parent.parent / ".repro-lint-baseline.json"
        payload = json.loads(committed.read_text())
        assert payload == {"version": 1, "entries": {}}


# ---------------------------------------------------------------------------
# Autofix.
# ---------------------------------------------------------------------------


class TestAutofix:
    def test_det003_fix_wraps_in_sorted(self) -> None:
        source = (FIXTURES / "det003_violating.py").read_text(encoding="utf-8")
        fixed, count = fix_source(source, analyze_source(IN_SCOPE, source))
        assert count == 3
        assert "for tag in sorted(tags):" in fixed
        assert "[t for t in sorted({\"x\", \"y\"})]" in fixed
        assert "list(sorted(tags - {\"c\"}))" in fixed
        assert hits(analyze_source(IN_SCOPE, fixed)) == []

    def test_inv002_fix_rewrites_and_inserts_import(self) -> None:
        source = (FIXTURES / "inv002_violating.py").read_text(encoding="utf-8")
        fixed, count = fix_source(source, analyze_source(IN_SCOPE, source))
        assert count == 2
        assert "from repro.numeric import costs_equal" in fixed
        assert "return costs_equal(cost_a, cost_b)" in fixed
        assert "return not costs_equal(old_weight, new_weight)" in fixed
        assert hits(analyze_source(IN_SCOPE, fixed)) == []

    def test_fix_is_idempotent(self) -> None:
        source = (FIXTURES / "det003_violating.py").read_text(encoding="utf-8")
        once, _ = fix_source(source, analyze_source(IN_SCOPE, source))
        twice, count = fix_source(once, analyze_source(IN_SCOPE, once))
        assert count == 0
        assert twice == once

    def test_non_fixable_rules_carry_no_fix(self) -> None:
        report = lint_fixture("sty001_violating.py")
        assert all(v.fix is None for v in report.violations)


# ---------------------------------------------------------------------------
# Catalog, discovery and CLI.
# ---------------------------------------------------------------------------


class TestCatalogAndDiscovery:
    def test_catalog_codes_are_unique_and_documented(self) -> None:
        codes = [code for code, _fixable, _summary in rule_catalog()]
        assert codes == sorted(set(codes))
        assert {"DET001", "DET002", "DET003", "INV001", "INV002", "STY001", "WVR001"} <= set(
            codes
        )
        for rule in RULES:
            assert rule.__doc__, f"{rule.code} has no docstring"

    def test_fixture_dir_is_excluded_from_walks(self, tmp_path: Path) -> None:
        assert "lint_fixtures" in EXCLUDED_DIRS
        nested = tmp_path / "lint_fixtures"
        nested.mkdir()
        (nested / "skipme.py").write_text("import random\n")
        (tmp_path / "seen.py").write_text("x = 1\n")
        walked = iter_python_files([tmp_path])
        assert [p.name for p in walked] == ["seen.py"]
        # Explicitly named files are linted even inside excluded dirs.
        explicit = iter_python_files([nested / "skipme.py"])
        assert [p.name for p in explicit] == ["skipme.py"]


def _make_repo(tmp_path: Path, body: str) -> Path:
    pkg = tmp_path / "src" / "repro" / "fake"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(body, encoding="utf-8")
    return tmp_path


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path: Path, capsys) -> None:
        root = _make_repo(tmp_path, "x = 1\n")
        assert lint_main(["--root", str(root)]) == 0

    def test_synthetic_violation_fails_the_gate(self, tmp_path: Path, capsys) -> None:
        # The same seeded violation the CI static-analysis job plants to
        # prove the gate actually fails: a wall-clock read in src/repro/.
        root = _make_repo(tmp_path, "import time\n_BOOT = time.time()\n")
        assert lint_main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_missing_path_exits_two(self, tmp_path: Path, capsys) -> None:
        assert lint_main(["--root", str(tmp_path), str(tmp_path / "nope")]) == 2

    def test_write_baseline_then_clean(self, tmp_path: Path, capsys) -> None:
        root = _make_repo(tmp_path, "import random\nJ = random.random()\n")
        baseline = root / ".repro-lint-baseline.json"
        assert lint_main(["--root", str(root)]) == 1
        assert lint_main(["--root", str(root), "--write-baseline"]) == 0
        assert baseline.is_file()
        assert lint_main(["--root", str(root)]) == 0
        assert lint_main(["--root", str(root), "--no-baseline"]) == 1

    def test_fix_mode_repairs_the_tree(self, tmp_path: Path, capsys) -> None:
        body = "def f():\n    s = {2, 1}\n    return [x for x in s]\n"
        root = _make_repo(tmp_path, body)
        assert lint_main(["--root", str(root)]) == 1
        assert lint_main(["--root", str(root), "--fix"]) == 0
        fixed = (root / "src" / "repro" / "fake" / "mod.py").read_text()
        assert "sorted(s)" in fixed

    def test_list_rules(self, capsys) -> None:
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET003", "INV002"):
            assert code in out

    def test_summary_table_is_written(self, tmp_path: Path, capsys) -> None:
        root = _make_repo(tmp_path, "import time\n_BOOT = time.time()\n")
        summary = tmp_path / "summary.md"
        assert lint_main(["--root", str(root), "--summary", str(summary)]) == 1
        text = summary.read_text()
        assert "## repro-lint" in text
        assert "| DET001 | 1 | 1 |" in text
        assert "### New violations" in text


# ---------------------------------------------------------------------------
# The real tree is clean, and mypy (when available) agrees.
# ---------------------------------------------------------------------------


REPO_ROOT = Path(__file__).parent.parent


class TestRealTree:
    def test_repo_has_no_new_violations(self, capsys) -> None:
        code = lint_main(
            [
                "--root",
                str(REPO_ROOT),
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, f"repro-lint found new violations:\n{out}"

    def test_every_waiver_in_src_has_a_reason(self) -> None:
        from repro.analysis.engine import analyze_paths

        reports = analyze_paths([REPO_ROOT / "src"], REPO_ROOT)
        reasonless = [
            f"{report.path}:{waiver.line}"
            for report in reports
            for waiver in report.waivers
            if not waiver.reason
        ]
        assert reasonless == []


def test_mypy_strict_tiers() -> None:
    """Strict-tier modules typecheck; skipped when mypy is absent locally."""
    api = pytest.importorskip("mypy.api")
    stdout, stderr, status = api.run(
        ["--config-file", str(REPO_ROOT / "pyproject.toml"), "-p", "repro"]
    )
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
