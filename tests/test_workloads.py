"""Tests for the synthetic workload generators, presets and trace IO."""

from __future__ import annotations

import math

import pytest

from repro.config import SimulationConfig, WorkloadConfig
from repro.exceptions import WorkloadError
from repro.network.generators import grid_city
from repro.network.shortest_path import DistanceOracle
from repro.workloads.presets import WORKLOAD_PRESETS, make_workload
from repro.workloads.requests_gen import RequestGenerator, generate_vehicles
from repro.workloads.trace import load_requests_csv, save_requests_csv


@pytest.fixture()
def small_city():
    return grid_city(10, 10, block_length=150.0, perturbation=0.1, seed=4)


@pytest.fixture()
def workload_config() -> WorkloadConfig:
    return WorkloadConfig(num_requests=60, num_vehicles=10, arrival_rate=1.0,
                          trip_log_mean=math.log(90.0), trip_log_sigma=0.4,
                          num_hotspots=3, hotspot_fraction=0.6, seed=5)


class TestRequestGenerator:
    def test_generates_requested_count_sorted_by_release(self, small_city, workload_config):
        oracle = DistanceOracle(small_city)
        generator = RequestGenerator(small_city, oracle, workload_config, SimulationConfig())
        requests = generator.generate()
        assert len(requests) == 60
        releases = [r.release_time for r in requests]
        assert releases == sorted(releases)
        assert all(0 <= t <= workload_config.effective_horizon for t in releases)

    def test_requests_are_well_formed(self, small_city, workload_config):
        oracle = DistanceOracle(small_city)
        config = SimulationConfig(gamma=1.5, max_wait=120.0)
        requests = RequestGenerator(small_city, oracle, workload_config, config).generate()
        for request in requests:
            assert request.source != request.destination
            assert request.direct_cost == pytest.approx(
                oracle.cost(request.source, request.destination)
            )
            assert request.deadline == pytest.approx(
                request.release_time + config.gamma * request.direct_cost
            )
            assert request.riders >= 1
            assert request.max_wait == config.max_wait

    def test_unique_ids(self, small_city, workload_config):
        oracle = DistanceOracle(small_city)
        requests = RequestGenerator(small_city, oracle, workload_config,
                                    SimulationConfig()).generate()
        ids = [r.request_id for r in requests]
        assert len(ids) == len(set(ids))

    def test_deterministic_for_seed(self, small_city, workload_config):
        oracle = DistanceOracle(small_city)
        first = RequestGenerator(small_city, oracle, workload_config, SimulationConfig()).generate()
        second = RequestGenerator(small_city, oracle, workload_config, SimulationConfig()).generate()
        assert [(r.source, r.destination, r.release_time) for r in first] == [
            (r.source, r.destination, r.release_time) for r in second
        ]

    def test_trip_lengths_have_plausible_spread(self, small_city, workload_config):
        oracle = DistanceOracle(small_city)
        requests = RequestGenerator(small_city, oracle, workload_config,
                                    SimulationConfig()).generate()
        costs = [r.direct_cost for r in requests]
        assert min(costs) > 0
        assert max(costs) > min(costs)


class TestVehicleGeneration:
    def test_uniform_capacity_by_default(self, small_city, workload_config):
        vehicles = generate_vehicles(small_city, workload_config, SimulationConfig(capacity=4))
        assert len(vehicles) == 10
        assert {v.capacity for v in vehicles} == {4}
        assert all(v.location in small_city for v in vehicles)

    def test_capacity_sigma_spreads_capacities(self, small_city, workload_config):
        noisy = workload_config.with_overrides(capacity_sigma=1.5, num_vehicles=60)
        vehicles = generate_vehicles(small_city, noisy, SimulationConfig(capacity=4))
        capacities = {v.capacity for v in vehicles}
        assert len(capacities) > 1
        assert all(1 <= c <= 8 for c in capacities)

    def test_unique_vehicle_ids(self, small_city, workload_config):
        vehicles = generate_vehicles(small_city, workload_config, SimulationConfig())
        ids = [v.vehicle_id for v in vehicles]
        assert len(ids) == len(set(ids))


class TestPresets:
    def test_all_presets_build(self):
        for name in WORKLOAD_PRESETS:
            workload = make_workload(name, scale=0.02, vehicle_scale=0.1, city_scale=0.3)
            assert workload.num_requests > 0
            assert workload.network.num_nodes > 0
            assert workload.fresh_vehicles()

    def test_scale_changes_requests_not_vehicles(self):
        small = make_workload("nyc", scale=0.02, city_scale=0.3)
        large = make_workload("nyc", scale=0.04, city_scale=0.3)
        assert large.num_requests > small.num_requests
        assert (
            large.workload_config.num_vehicles == small.workload_config.num_vehicles
        )

    def test_overrides_apply(self):
        workload = make_workload(
            "nyc", city_scale=0.3,
            workload_overrides={"num_requests": 17, "num_vehicles": 3},
            simulation_overrides={"gamma": 1.9},
        )
        assert workload.num_requests == 17
        assert len(workload.fresh_vehicles()) == 3
        assert workload.simulation_config.gamma == 1.9

    def test_unknown_preset_rejected(self):
        with pytest.raises(WorkloadError):
            make_workload("gotham")

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            make_workload("nyc", scale=0.0)

    def test_fresh_vehicles_are_independent(self):
        workload = make_workload("nyc", scale=0.02, city_scale=0.3)
        first = workload.fresh_vehicles()
        second = workload.fresh_vehicles()
        assert first is not second
        assert [v.location for v in first] == [v.location for v in second]

    def test_fresh_oracle_has_clean_stats(self):
        workload = make_workload("nyc", scale=0.02, city_scale=0.3)
        oracle = workload.fresh_oracle()
        assert oracle.stats.queries == 0


class TestTraceIO:
    def test_round_trip(self, tmp_path, small_city, workload_config):
        oracle = DistanceOracle(small_city)
        requests = RequestGenerator(small_city, oracle, workload_config,
                                    SimulationConfig()).generate()
        path = tmp_path / "trace.csv"
        save_requests_csv(requests, path)
        loaded = load_requests_csv(path)
        assert len(loaded) == len(requests)
        assert loaded[0].request_id == requests[0].request_id
        assert loaded[10].source == requests[10].source
        assert loaded[10].deadline == pytest.approx(requests[10].deadline, abs=1e-3)

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_requests_csv(tmp_path / "missing.csv")

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("request_id,source\n1,2\n")
        with pytest.raises(WorkloadError):
            load_requests_csv(path)
