"""Tests for the CI benchmark-regression gate comparator.

The gate itself runs in CI (``benchmarks/check_regression.py``); these
tests pin the comparator semantics it is built on: parsing the benchmark's
text table, thresholded before/after comparison, cross-machine
normalisation and the failure modes (vanished backends, bad references).
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.regression import (
    compare_backend_tables,
    format_markdown,
    load_backend_table,
    parse_backend_json,
    parse_backend_table,
)

SAMPLE_TABLE = """\
Routing backend microbenchmark (NYC city at scale 0.7, 300 pairs x 3, cache off)
backend       build ms  query us  queries/s  speedup  settled/q  max |err|
dijkstra           0.8     191.0       5236     1.0x      162.1   0.00e+00
alt                3.3      91.7      10903     2.1x       26.1   0.00e+00
ch                59.9      66.3      15076     2.9x       48.5   8.53e-14
hub_label        119.9       4.9     204564    39.1x       35.6   8.53e-14

History (same machine, NYC scale 0.7):
  PR 3: some prose that must not parse as a row 82.9 -> 67.6 us/query.
"""


def _table(**overrides) -> dict[str, float]:
    table = {"dijkstra": 191.0, "alt": 91.7, "ch": 66.3, "hub_label": 4.9}
    table.update(overrides)
    return table


class TestParsing:
    def test_parses_backend_rows_only(self):
        table = parse_backend_table(SAMPLE_TABLE)
        assert table == {
            "dijkstra": 191.0, "alt": 91.7, "ch": 66.3, "hub_label": 4.9,
        }

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_backend_table("no rows here\njust prose\n")

    def test_parses_json_query_us_map(self):
        payload = {"benchmark": "oracle_backends", "query_us": _table()}
        assert parse_backend_json(json.dumps(payload)) == _table()

    def test_parses_json_rows_fallback(self):
        payload = {
            "rows": [
                {"backend": name, "query_us": us, "build_ms": 1.0}
                for name, us in _table().items()
            ]
        }
        assert parse_backend_json(json.dumps(payload)) == _table()

    def test_json_failure_modes(self):
        with pytest.raises(ConfigurationError):
            parse_backend_json("not json at all {")
        with pytest.raises(ConfigurationError):
            parse_backend_json("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            parse_backend_json('{"rows": []}')


class TestLoadBackendTable:
    def test_json_path_parses_directly(self, tmp_path):
        path = tmp_path / "oracle_backends.json"
        path.write_text(json.dumps({"query_us": _table()}))
        assert load_backend_table(path) == _table()

    def test_sibling_json_preferred_over_txt(self, tmp_path):
        """CI passes the .txt path; the .json twin must win when present."""
        txt = tmp_path / "oracle_backends.txt"
        txt.write_text(SAMPLE_TABLE)
        json_table = _table(ch=12.3)  # differs from the text so we can tell
        (tmp_path / "oracle_backends.json").write_text(
            json.dumps({"query_us": json_table})
        )
        assert load_backend_table(txt) == json_table

    def test_txt_fallback_without_sibling(self, tmp_path):
        txt = tmp_path / "oracle_backends.txt"
        txt.write_text(SAMPLE_TABLE)
        assert load_backend_table(txt) == _table()


class TestComparison:
    def test_identical_tables_pass(self):
        deltas = compare_backend_tables(_table(), _table())
        assert not any(d.regressed for d in deltas)

    def test_synthetic_2x_slowdown_fails(self):
        deltas = compare_backend_tables(_table(), _table(ch=132.6))
        by_name = {d.backend: d for d in deltas}
        assert by_name["ch"].regressed
        assert by_name["ch"].delta == pytest.approx(1.0)
        assert not by_name["hub_label"].regressed

    def test_threshold_boundary(self):
        just_under = compare_backend_tables(_table(), _table(ch=66.3 * 1.29))
        just_over = compare_backend_tables(_table(), _table(ch=66.3 * 1.31))
        assert not any(d.regressed for d in just_under)
        assert any(d.regressed for d in just_over)

    def test_normalisation_cancels_machine_speed(self):
        """A uniformly 2x slower machine must pass under --normalize."""
        slower = {name: us * 2.0 for name, us in _table().items()}
        absolute = compare_backend_tables(_table(), slower)
        assert all(d.regressed for d in absolute)
        normalised = compare_backend_tables(
            _table(), slower, normalize="dijkstra"
        )
        assert not any(d.regressed for d in normalised)

    def test_normalisation_still_catches_relative_regression(self):
        slower = {name: us * 2.0 for name, us in _table().items()}
        slower["ch"] *= 2.0  # 4x total: 2x beyond the machine factor
        deltas = compare_backend_tables(_table(), slower, normalize="dijkstra")
        by_name = {d.backend: d for d in deltas}
        assert by_name["ch"].regressed and not by_name["alt"].regressed

    def test_vanished_backend_fails_loudly(self):
        fresh = _table()
        del fresh["ch"]
        deltas = compare_backend_tables(_table(), fresh)
        by_name = {d.backend: d for d in deltas}
        assert by_name["ch"].regressed

    def test_new_backend_in_fresh_table_is_ignored(self):
        deltas = compare_backend_tables(_table(), _table(transit=1.0))
        assert {d.backend for d in deltas} == set(_table())

    def test_bad_normalize_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_backend_tables(_table(), _table(), normalize="nope")
        with pytest.raises(ConfigurationError):
            compare_backend_tables(_table(), _table(), threshold=0.0)


class TestReport:
    def test_markdown_marks_regressions(self):
        deltas = compare_backend_tables(_table(), _table(ch=200.0))
        report = format_markdown(deltas)
        assert "**REGRESSED**" in report and "Gate **failed**" in report
        assert "ch" in report

    def test_markdown_reports_pass(self):
        deltas = compare_backend_tables(_table(), _table())
        report = format_markdown(deltas, normalize="dijkstra")
        assert "Gate passed" in report and "dijkstra" in report
