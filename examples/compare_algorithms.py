"""Compare SARD against the paper's five baselines on one workload.

Reproduces the "Summary of the experimental study" at example scale: run
every dispatcher on the same CHD-style workload and print a table of unified
cost, service rate and dispatching time.

Run with::

    python examples/compare_algorithms.py [preset]

where ``preset`` is ``chd`` (default), ``nyc`` or ``cainiao``.
"""

from __future__ import annotations

import sys

from repro import Simulator, make_dispatcher, make_workload

ALGORITHMS = ("pruneGDP", "TicketAssign+", "DARM+DPRS", "RTV", "GAS", "SARD")


def main(preset: str = "chd") -> None:
    workload = make_workload(preset, scale=0.1, city_scale=0.5)
    print(f"{workload.name}: {workload.num_requests} requests, "
          f"{workload.workload_config.num_vehicles} vehicles, "
          f"gamma={workload.simulation_config.gamma}, "
          f"Delta={workload.simulation_config.batch_period}s\n")
    header = f"{'algorithm':15s} {'service rate':>12s} {'unified cost':>14s} {'dispatch (s)':>13s}"
    print(header)
    print("-" * len(header))
    for name in ALGORITHMS:
        simulator = Simulator(
            network=workload.network,
            oracle=workload.fresh_oracle(),
            vehicles=workload.fresh_vehicles(),
            requests=list(workload.requests),
            dispatcher=make_dispatcher(name),
            config=workload.simulation_config,
        )
        result = simulator.run()
        print(f"{name:15s} {result.service_rate:12.1%} "
              f"{result.unified_cost:14,.0f} {result.running_time:13.2f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "chd")
