"""Cainiao-style delivery dispatching with relaxed deadlines.

The paper's Appendix B evaluates StructRide on a last-mile delivery workload
(Cainiao, Shanghai): dispersed demand, longer trips and generous deadlines
(gamma around 2).  This example builds the matching synthetic preset, sweeps
the deadline parameter and shows how the batch methods pull ahead as the
routing flexibility grows -- the trend of Figure 15 (third column).

Run with::

    python examples/delivery_batch.py
"""

from __future__ import annotations

from repro import Simulator, make_dispatcher, make_workload

ALGORITHMS = ("pruneGDP", "GAS", "SARD")
GAMMAS = (1.8, 2.0, 2.2)


def main() -> None:
    print("Cainiao-style delivery workload, deadline sweep (Figure 15c analogue)\n")
    header = f"{'gamma':>6s}  " + "  ".join(f"{name:>10s}" for name in ALGORITHMS)
    print("service rate")
    print(header)
    print("-" * len(header))
    for gamma in GAMMAS:
        workload = make_workload(
            "cainiao",
            scale=0.08,
            city_scale=0.4,
            simulation_overrides={"gamma": gamma},
        )
        rates = []
        for name in ALGORITHMS:
            simulator = Simulator(
                network=workload.network,
                oracle=workload.fresh_oracle(),
                vehicles=workload.fresh_vehicles(),
                requests=list(workload.requests),
                dispatcher=make_dispatcher(name),
                config=workload.simulation_config,
            )
            result = simulator.run()
            rates.append(result.service_rate)
        print(f"{gamma:6.1f}  " + "  ".join(f"{rate:10.1%}" for rate in rates))
    print("\nLonger deadlines widen the routing flexibility, which the batch "
          "methods (GAS, SARD) convert into served packages.")


if __name__ == "__main__":
    main()
