"""NYC evening-peak scenario: tight deadlines, concentrated demand.

This example mirrors the motivation of the paper's introduction: a burst of
requests leaving a handful of hotspots (offices, stations) with riders who
only tolerate short waits.  It runs SARD with and without angle pruning
(SARD vs SARD-O, Tables V/VI) and shows how the pruning cuts shortest-path
queries while leaving the service quality untouched, then inspects the
structure of the final shareability graph.

Run with::

    python examples/nyc_evening_peak.py
"""

from __future__ import annotations

from repro import SARDDispatcher, Simulator, make_workload
from repro.shareability import fit_lognormal, expected_sharing_probability


def run_variant(workload, dispatcher):
    simulator = Simulator(
        network=workload.network,
        oracle=workload.fresh_oracle(),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=dispatcher,
        config=workload.simulation_config,
    )
    return simulator.run()


def main() -> None:
    # Evening peak: higher arrival rate, strongly concentrated origins,
    # tight deadlines (gamma 1.3) and impatient riders (60 s max wait).
    workload = make_workload(
        "nyc",
        scale=0.12,
        city_scale=0.5,
        workload_overrides={"hotspot_fraction": 0.9, "num_hotspots": 3},
        simulation_overrides={"gamma": 1.3, "max_wait": 60.0},
    )
    print(f"evening peak: {workload.num_requests} requests over "
          f"{workload.workload_config.effective_horizon:.0f} s, "
          f"{workload.workload_config.num_vehicles} vehicles\n")

    # Section III-B analysis: fit the log-normal trip-length model and report
    # the expected sharing probability at the pi/2 pruning threshold.
    mu, sigma = fit_lognormal([r.direct_cost for r in workload.requests])
    probability = expected_sharing_probability(
        mu, sigma, theta=3.141592653589793 / 2, gamma=workload.simulation_config.gamma
    )
    print(f"trip-length log-normal fit: mu={mu:.2f}, sigma={sigma:.2f}")
    print(f"expected sharing probability at theta >= pi/2: {probability:.1%}\n")

    header = f"{'variant':8s} {'service rate':>12s} {'unified cost':>14s} {'#SP queries':>12s} {'dispatch (s)':>13s}"
    print(header)
    print("-" * len(header))
    for label, dispatcher in (
        ("SARD", SARDDispatcher.without_angle_pruning()),
        ("SARD-O", SARDDispatcher.with_angle_pruning()),
    ):
        result = run_variant(workload, dispatcher)
        metrics = result.metrics
        print(f"{label:8s} {metrics.service_rate:12.1%} {metrics.unified_cost:14,.0f} "
              f"{metrics.shortest_path_queries:12,} {metrics.dispatch_seconds:13.2f}")


if __name__ == "__main__":
    main()
