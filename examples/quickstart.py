"""Quickstart: simulate one batch-dispatched rush hour with SARD.

Builds a synthetic NYC-style workload, runs the StructRide SARD dispatcher
over it and prints the three headline metrics of the paper (unified cost,
service rate, running time) plus a few structural statistics of the
shareability graph.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SARDDispatcher, Simulator, make_workload


def main() -> None:
    # A scaled-down NYC-style workload: ~240 requests arriving at 1.5 req/s,
    # 130 vehicles, log-normal trip lengths, hotspot-concentrated demand.
    workload = make_workload("nyc", scale=0.1, city_scale=0.5)
    print(f"workload: {workload.name}")
    print(f"  requests : {workload.num_requests}")
    print(f"  vehicles : {workload.workload_config.num_vehicles}")
    print(f"  road net : {workload.network.num_nodes} nodes / "
          f"{workload.network.num_edges} edges")
    print(f"  horizon  : {workload.workload_config.effective_horizon:.0f} s, "
          f"batch period {workload.simulation_config.batch_period:.0f} s")

    dispatcher = SARDDispatcher()
    simulator = Simulator(
        network=workload.network,
        oracle=workload.fresh_oracle(),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=dispatcher,
        config=workload.simulation_config,
    )
    result = simulator.run()

    metrics = result.metrics
    print("\nSARD results")
    print(f"  service rate       : {metrics.service_rate:.1%}")
    print(f"  unified cost       : {metrics.unified_cost:,.0f}")
    print(f"  total travel time  : {metrics.total_travel_time:,.0f} s")
    print(f"  penalty            : {metrics.penalty:,.0f}")
    print(f"  dispatch time      : {metrics.dispatch_seconds:.2f} s "
          f"({metrics.num_batches} batches)")
    print(f"  shortest-path calls: {metrics.shortest_path_queries:,}")
    print(f"  oracle searches    : {metrics.oracle_searches:,} "
          f"({metrics.oracle_settled_nodes:,} nodes settled)")

    builder = dispatcher.builder
    if builder is not None:
        stats = builder.stats
        print("\nshareability graph builder")
        print(f"  pairs tested       : {stats.pairs_tested}")
        print(f"  edges added        : {stats.edges_added}")
        print(f"  pruned by angle    : {stats.pruned_by_angle}")
        print(f"  pruned spatially   : {stats.pruned_by_spatial}")


if __name__ == "__main__":
    main()
