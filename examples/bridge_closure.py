"""Dynamic world: a bridge closure mid-run, served without going stale.

Builds an NYC-style workload together with the ``bridge_closure`` scenario:
the central segment of the main west-east corridor closes a quarter of the
way into the run and reopens at three quarters.  The SARD dispatcher keeps
dispatching throughout; the ``coalesce`` refresh policy serves the dirty
windows through an exact Dijkstra fallback and folds the rebuild of the
hub-label structures into the next quiet batch boundary.

Run with::

    python examples/bridge_closure.py
"""

from __future__ import annotations

from repro import SARDDispatcher, Simulator, make_scenario_workload
from repro.scenarios import make_refresh_policy
from repro.simulation.events import EventKind


def main() -> None:
    workload, scenario = make_scenario_workload(
        "nyc",
        "bridge_closure",
        scale=0.1,
        city_scale=0.5,
        simulation_overrides={"routing_backend": "hub_label"},
    )
    print(f"workload: {workload.name} + scenario '{scenario.name}'")
    print(f"  {scenario.description}")
    print(f"  requests : {workload.num_requests}")
    print(f"  vehicles : {workload.workload_config.num_vehicles}")
    print(f"  road net : {workload.network.num_nodes} nodes / "
          f"{workload.network.num_edges} edges")
    timeline = scenario.make_timeline()
    print(f"  events   : {len(timeline)} scheduled "
          f"(closure at {scenario.config.closure_start:.0%} of the horizon, "
          f"reopening at {scenario.config.closure_end:.0%})")

    simulator = Simulator(
        network=workload.network,
        oracle=workload.fresh_oracle(),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=SARDDispatcher(),
        config=workload.simulation_config,
        timeline=timeline,
        # Built from the scenario's config so its policy knobs (staleness
        # budgets, repair fraction cap) apply; a bare name string would use
        # that policy's defaults instead.
        refresh_policy=make_refresh_policy(config=scenario.config),
    )
    result = simulator.run()
    metrics = result.metrics

    print(f"\nresults ({result.algorithm}, backend hub_label, "
          f"policy {scenario.config.refresh_policy}):")
    print(f"  unified cost     : {metrics.unified_cost:12.1f}")
    print(f"  service rate     : {metrics.service_rate:12.3f}")
    print(f"  dispatch time    : {metrics.dispatch_seconds:12.3f} s")
    closed = result.events.count(EventKind.ROAD_CLOSED)
    reopened = result.events.count(EventKind.ROAD_REOPENED)
    print(f"  world events     : {metrics.scenario_events} applied "
          f"({closed} closure burst, {reopened} reopening burst)")
    print(f"  oracle rebuilds  : {metrics.oracle_rebuilds} "
          f"({metrics.oracle_rebuild_seconds * 1e3:.1f} ms total)")
    print(f"  fallback queries : {metrics.oracle_fallback_queries} "
          f"served exactly while structures were dirty")
    print(f"  stale window     : {metrics.oracle_stale_seconds * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
