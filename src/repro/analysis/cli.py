"""Command-line entry point for ``repro-lint``.

Usage::

    repro-lint [paths ...]            # lint (default: src tests benchmarks)
    repro-lint --fix src              # apply mechanical autofixes, then lint
    repro-lint --write-baseline       # freeze current violations
    repro-lint --list-rules           # print the rule catalog
    repro-lint --summary out.md       # markdown rule-hit table (CI job summary)

Exit status: 0 when no *new* violations remain (baselined ones are frozen,
waived ones are suppressed), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from .baseline import Baseline
from .engine import FileReport, analyze_project
from .fixes import apply_fixes
from .rules import Violation, rule_catalog
from .semantic_rules import (
    ProjectAnalysis,
    call_graph_dot,
    call_graph_json,
    summary_tables,
)

__all__ = ["main"]

DEFAULT_BASELINE = ".repro-lint-baseline.json"
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & invariant static analysis for the StructRide repro.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repo root used for relative paths and rule scoping (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every violation as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="freeze the current violations into the baseline file and exit 0",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply autofixes for the mechanical rules before reporting",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--statistics", action="store_true", help="print a per-rule hit count table"
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="write a markdown rule-hit summary table to this file (append)",
    )
    parser.add_argument(
        "--call-graph",
        type=Path,
        default=None,
        metavar="OUT",
        help="export the project call graph (+effects) -- JSON, or GraphViz "
        "DOT when OUT ends in .dot/.gv",
    )
    parser.add_argument(
        "--no-semantic",
        action="store_true",
        help="skip the interprocedural pass (call graph, effects, ORA/CONC/PUR rules)",
    )
    return parser


def _resolve_paths(args: argparse.Namespace) -> list[Path]:
    if args.paths:
        return [Path(p) for p in args.paths]
    defaults = [args.root / name for name in DEFAULT_PATHS]
    return [path for path in defaults if path.exists()] or [args.root]


def _statistics(reports: list[FileReport], new: list[Violation]) -> list[tuple[str, int, int]]:
    """(code, total hits, new hits) for every rule, catalog order."""
    total = Counter(v.code for report in reports for v in report.violations)
    fresh = Counter(v.code for v in new)
    rows = [(code, total.pop(code, 0), fresh.get(code, 0)) for code, _fix, _s in rule_catalog()]
    rows.extend((code, count, fresh.get(code, 0)) for code, count in sorted(total.items()))
    return rows


def _print_statistics(rows: list[tuple[str, int, int]], waiver_count: int) -> None:
    print()
    print(f"{'rule':<8} {'hits':>6} {'new':>6}")
    for code, hits, fresh in rows:
        print(f"{code:<8} {hits:>6} {fresh:>6}")
    print(f"{'waivers':<8} {waiver_count:>6}")


def _write_summary(
    path: Path,
    rows: list[tuple[str, int, int]],
    new: list[Violation],
    waiver_count: int,
    files: int,
    project: ProjectAnalysis | None = None,
) -> None:
    summaries = {code: summary for code, _fixable, summary in rule_catalog()}
    lines = [
        "## repro-lint",
        "",
        f"{files} files analyzed, {len(new)} new violation(s), {waiver_count} waiver(s).",
        "",
        "| rule | hits | new | summary |",
        "| --- | ---: | ---: | --- |",
    ]
    for code, hits, fresh in rows:
        lines.append(f"| {code} | {hits} | {fresh} | {summaries.get(code, '—')} |")
    if new:
        lines += ["", "### New violations", ""]
        lines += [f"- `{violation.render()}`" for violation in new[:50]]
        if len(new) > 50:
            lines.append(f"- … and {len(new) - 50} more")
    if project is not None:
        lines += ["", summary_tables(project)]
    lines.append("")
    with path.open("a", encoding="utf-8") as handle:
        handle.write("\n".join(lines))


def _export_call_graph(path: Path, project: ProjectAnalysis) -> None:
    if path.suffix in {".dot", ".gv"}:
        path.write_text(call_graph_dot(project), encoding="utf-8")
    else:
        path.write_text(
            json.dumps(call_graph_json(project), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    print(f"call graph written to {path}")


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for code, fixable, summary in rule_catalog():
            marker = "fixable" if fixable else "       "
            print(f"{code}  [{marker}]  {summary}")
        return 0

    root: Path = args.root
    paths = _resolve_paths(args)
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    semantic = not args.no_semantic
    reports, project = analyze_project(paths, root, semantic=semantic)
    if args.fix:
        applied = apply_fixes(reports, root)
        for rel, count in sorted(applied.items()):
            print(f"fixed {count} violation(s) in {rel}")
        # Re-analyze so the report reflects the post-fix tree.
        reports, project = analyze_project(paths, root, semantic=semantic)

    if args.call_graph is not None:
        if project is None:
            print("repro-lint: no src/repro files analyzed; call graph not written", file=sys.stderr)
        else:
            _export_call_graph(args.call_graph, project)

    baseline_path = args.baseline or (root / DEFAULT_BASELINE)
    if args.write_baseline:
        baseline = Baseline.from_reports(reports)
        baseline.save(baseline_path)
        count = sum(baseline.entries.values())
        print(f"baseline written to {baseline_path} ({count} violation(s) frozen)")
        return 0

    if not args.no_baseline and baseline_path.is_file():
        baseline = Baseline.load(baseline_path)
        new = baseline.filter_new(reports)
    else:
        new = [violation for report in reports for violation in report.violations]

    for violation in new:
        print(violation.render())

    waiver_count = sum(len(report.waivers) for report in reports)
    rows = _statistics(reports, new)
    if args.statistics:
        _print_statistics(rows, waiver_count)
    if args.summary is not None:
        _write_summary(args.summary, rows, new, waiver_count, files=len(reports), project=project)

    if new:
        print(f"\nrepro-lint: {len(new)} new violation(s) in {len(reports)} file(s)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
