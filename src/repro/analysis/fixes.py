"""Autofix application for the mechanical repro-lint rules.

Fixes are declarative single-span edits recorded on the violation by the
rule (:class:`repro.analysis.rules.Fix`).  The applier splices replacement
text by line/column span, working bottom-up so earlier spans stay valid,
and then inserts any imports a fix requires after the last top-level import
of the module.  Overlapping fixes are applied first-come only -- the next
``--fix`` run picks up whatever remains, which keeps the applier simple and
idempotent in practice.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .engine import FileReport
from .rules import Fix

__all__ = ["apply_fixes", "fix_source"]


def _splice(lines: list[str], fix: Fix) -> list[str]:
    """Replace the [line:col, end_line:end_col) span with the fix text."""
    start, end = fix.line - 1, fix.end_line - 1
    prefix = lines[start][: fix.col]
    suffix = lines[end][fix.end_col :]
    replacement_lines = (prefix + fix.replacement + suffix).split("\n")
    return lines[:start] + replacement_lines + lines[end + 1 :]


def _overlaps(a: Fix, b: Fix) -> bool:
    a_span = ((a.line, a.col), (a.end_line, a.end_col))
    b_span = ((b.line, b.col), (b.end_line, b.end_col))
    return a_span[0] < b_span[1] and b_span[0] < a_span[1]


def _insert_imports(source: str, imports: list[str]) -> str:
    """Insert missing import lines after the module's last top-level import."""
    needed = [line for line in imports if line not in source]
    if not needed:
        return source
    tree = ast.parse(source)
    anchor = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            anchor = node.end_lineno or node.lineno
        elif isinstance(node, ast.Expr) and anchor == 0:
            # Module docstring: imports go after it.
            anchor = node.end_lineno or node.lineno
    lines = source.splitlines()
    return "\n".join(lines[:anchor] + needed + lines[anchor:]) + ("\n" if source.endswith("\n") else "")


def fix_source(source: str, report: FileReport) -> tuple[str, int]:
    """Apply every non-overlapping fix in *report*; return (new_source, n)."""
    fixes = [v.fix for v in report.violations if v.fix is not None]
    chosen: list[Fix] = []
    for fix in fixes:
        if not any(_overlaps(fix, kept) for kept in chosen):
            chosen.append(fix)
    if not chosen:
        return source, 0
    lines = source.splitlines()
    for fix in sorted(chosen, key=lambda f: (f.line, f.col), reverse=True):
        lines = _splice(lines, fix)
    new_source = "\n".join(lines) + ("\n" if source.endswith("\n") else "")
    imports = sorted({line for fix in chosen for line in fix.imports})
    if imports:
        new_source = _insert_imports(new_source, imports)
    return new_source, len(chosen)


def apply_fixes(reports: list[FileReport], root: Path) -> dict[str, int]:
    """Rewrite files in place; return {path: fixes applied} for changed files."""
    applied: dict[str, int] = {}
    for report in reports:
        target = root / report.path
        if not target.is_file():
            continue
        source = target.read_text(encoding="utf-8")
        new_source, count = fix_source(source, report)
        if count and new_source != source:
            target.write_text(new_source, encoding="utf-8")
            applied[report.path] = count
    return applied
