"""Baseline support: freeze existing violations, fail only on new ones.

The baseline file (``.repro-lint-baseline.json``, committed at the repo
root) maps violation *fingerprints* to occurrence counts.  A fingerprint is
``<path>::<code>::<hash of the stripped source line>`` -- line numbers are
deliberately excluded so unrelated edits above a frozen violation do not
resurrect it, while editing the violating line itself (or adding a second
identical violation on another copy of the line) does fail the build.

Policy: the baseline exists to land the linter without a flag-day, not as
a place to park debt.  Per the repo's waiver policy it should stay
near-empty for ``src/``; genuine exceptions belong in per-line waivers
with a written reason where reviewers can see them.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .engine import FileReport
from .rules import Violation

__all__ = ["Baseline"]

_FORMAT_VERSION = 1


def _fingerprint(violation: Violation, line_text: str) -> str:
    digest = hashlib.sha1(line_text.strip().encode("utf-8")).hexdigest()[:12]
    return f"{violation.path}::{violation.code}::{digest}"


@dataclass
class Baseline:
    """Frozen violation fingerprints with per-fingerprint counts."""

    entries: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> Baseline:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} in {path}"
            )
        entries = {str(key): int(count) for key, count in payload.get("entries", {}).items()}
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": {key: self.entries[key] for key in sorted(self.entries)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_reports(cls, reports: list[FileReport]) -> Baseline:
        counts: Counter[str] = Counter()
        for report in reports:
            for violation in report.violations:
                counts[_fingerprint(violation, report.line_text(violation.line))] += 1
        return cls(entries=dict(counts))

    def filter_new(self, reports: list[FileReport]) -> list[Violation]:
        """Violations not covered by the baseline, in report order.

        Each fingerprint absorbs up to its recorded count; extra identical
        occurrences (a frozen pattern copy-pasted once more) are new.
        """
        budget = Counter(self.entries)
        fresh: list[Violation] = []
        for report in reports:
            for violation in report.violations:
                key = _fingerprint(violation, report.line_text(violation.line))
                if budget[key] > 0:
                    budget[key] -= 1
                else:
                    fresh.append(violation)
        return fresh
