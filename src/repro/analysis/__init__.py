"""repro-lint: repo-specific determinism & invariant static analysis.

The correctness story of this reproduction rests on conventions that are
invisible to generic linters: every random draw flows through a seeded
``random.Random`` stream, simulated time comes from the virtual batch clock
(never the wall clock), CSR routing arrays are only mutated behind
``mutation_count`` bumps inside ``network/routing/``, and float costs are
compared through tolerance helpers.  One unseeded ``random.random()`` or a
stray ``time.time()`` in a hot path silently breaks the deterministic-summary
and chaos-parity gates CI relies on -- long after review.

This package encodes those conventions as machine-checked AST rules (see
:mod:`repro.analysis.rules` for the catalog), with three escape hatches:

* **waivers** -- ``# repro-lint: disable=<CODE> <reason>`` on the violating
  line; the reason is mandatory and lint-enforced (``WVR001``),
* a **committed baseline** -- pre-existing violations are frozen in
  ``.repro-lint-baseline.json`` and only *new* violations fail the build,
* ``--fix`` -- mechanical rewrites for the autofixable rules.

Run it as ``repro-lint src tests benchmarks`` (console script) or
``python -m repro.analysis.cli``.
"""

from .baseline import Baseline
from .callgraph import CallGraph, build_call_graph
from .effects import EffectMap, classify, infer_effects
from .engine import (
    FileReport,
    analyze_path,
    analyze_paths,
    analyze_project,
    attach_semantic,
    iter_python_files,
)
from .rules import RULES, Fix, Rule, Violation, rule_catalog
from .semantic_rules import (
    SEMANTIC_RULES,
    ProjectAnalysis,
    build_project,
    call_graph_dot,
    call_graph_json,
    run_semantic_rules,
    summary_tables,
)

__all__ = [
    "RULES",
    "SEMANTIC_RULES",
    "Baseline",
    "CallGraph",
    "EffectMap",
    "FileReport",
    "Fix",
    "ProjectAnalysis",
    "Rule",
    "Violation",
    "analyze_path",
    "analyze_paths",
    "analyze_project",
    "attach_semantic",
    "build_call_graph",
    "build_project",
    "call_graph_dot",
    "call_graph_json",
    "classify",
    "infer_effects",
    "iter_python_files",
    "rule_catalog",
    "run_semantic_rules",
    "summary_tables",
]
