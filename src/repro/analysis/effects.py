"""Effect inference over the project call graph.

Classifies every function as *pure*, *reads-state* or *mutates-state* and,
orthogonally, tracks the three domain effects the semantic rules reason
about: mutating the :class:`~repro.network.road_network.RoadNetwork`,
querying the :class:`~repro.network.shortest_path.DistanceOracle`, and
refreshing it (rebuild / repair / fallback).  Local effects come from a
syntactic scan of each function body; they then propagate transitively
over the call graph with a worklist fixpoint, so a dispatcher that calls a
helper that calls ``network.remove_edge`` is itself a network mutator.

Functions with a *known signature* (the oracle/network seam) are effect
leaves: their declared signature is authoritative and their bodies are not
scanned, so the oracle's internal memoisation (query cache, statistics
counters) does not leak a ``mutates-state`` classification into every
caller that merely prices a route.

Unresolved call sites fall back to receiver-name conventions
(``...oracle.cost`` counts as an oracle query even when the receiver's
type is unknown) -- bounded, documented, and only applied when alias
tracking failed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import CallGraph, CallSite, FunctionInfo

__all__ = [
    "EFFECT_NAMES",
    "EffectMap",
    "MUTATES_MODULE",
    "MUTATES_NETWORK",
    "MUTATES_STATE",
    "QUERIES_ORACLE",
    "READS_STATE",
    "REFRESHES_ORACLE",
    "Witness",
    "classify",
    "infer_effects",
]

MUTATES_NETWORK = "mutates_network"
QUERIES_ORACLE = "queries_oracle"
REFRESHES_ORACLE = "refreshes_oracle"
MUTATES_STATE = "mutates_state"
MUTATES_MODULE = "mutates_module"
READS_STATE = "reads_state"

EFFECT_NAMES: tuple[str, ...] = (
    MUTATES_NETWORK,
    QUERIES_ORACLE,
    REFRESHES_ORACLE,
    MUTATES_STATE,
    MUTATES_MODULE,
    READS_STATE,
)

#: Known effect signatures, matched by ``Class.method`` qualname suffix.
#: These are the oracle/network seam: authoritative leaves of the analysis.
KNOWN_SIGNATURES: dict[str, frozenset[str]] = {
    "RoadNetwork.add_node": frozenset({MUTATES_NETWORK, MUTATES_STATE}),
    "RoadNetwork.add_edge": frozenset({MUTATES_NETWORK, MUTATES_STATE}),
    "RoadNetwork.remove_edge": frozenset({MUTATES_NETWORK, MUTATES_STATE}),
    "DistanceOracle.cost": frozenset({QUERIES_ORACLE, READS_STATE}),
    "DistanceOracle.path": frozenset({QUERIES_ORACLE, READS_STATE}),
    "DistanceOracle.many_to_many": frozenset({QUERIES_ORACLE, READS_STATE}),
    "DistanceOracle.prefetch": frozenset({QUERIES_ORACLE, READS_STATE}),
    "DistanceOracle.route_cost": frozenset({QUERIES_ORACLE, READS_STATE}),
    "DistanceOracle.__init__": frozenset({REFRESHES_ORACLE, MUTATES_STATE}),
    "DistanceOracle.rebuild": frozenset({REFRESHES_ORACLE, MUTATES_STATE}),
    "DistanceOracle.repair": frozenset({REFRESHES_ORACLE, MUTATES_STATE}),
    "DistanceOracle.enable_fallback": frozenset({REFRESHES_ORACLE, MUTATES_STATE}),
}

#: Receiver-name fallback for call sites alias tracking could not resolve.
NETWORK_RECEIVERS = frozenset({"network", "road_network", "net"})
ORACLE_RECEIVER_SUFFIX = "oracle"
NETWORK_MUTATOR_METHODS = frozenset({"add_node", "add_edge", "remove_edge"})
ORACLE_QUERY_METHODS = frozenset({"cost", "path", "many_to_many", "prefetch", "route_cost"})
ORACLE_REFRESH_METHODS = frozenset({"rebuild", "repair", "enable_fallback"})

#: In-place container mutators (list/set/dict/deque vocabulary).
_CONTAINER_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse",
        "add", "discard", "update", "setdefault", "popitem", "appendleft", "popleft",
    }
)


@dataclass(frozen=True)
class Witness:
    """Where an effect entered a function (for diagnostics)."""

    line: int
    detail: str


@dataclass
class FunctionEffects:
    """Inferred effect set plus one witness per effect."""

    effects: set[str] = field(default_factory=set)
    witnesses: dict[str, Witness] = field(default_factory=dict)
    #: Module-level global names this function reads / writes.
    module_reads: set[str] = field(default_factory=set)
    module_writes: set[str] = field(default_factory=set)
    seeded: bool = False

    def absorb(self, effect: str, witness: Witness) -> bool:
        if effect in self.effects:
            return False
        self.effects.add(effect)
        self.witnesses.setdefault(effect, witness)
        return True


EffectMap = dict[str, FunctionEffects]


def known_signature(qualname: str) -> frozenset[str] | None:
    for suffix, effects in KNOWN_SIGNATURES.items():
        if qualname == suffix or qualname.endswith("." + suffix):
            return effects
    return None


def fallback_effects(site: CallSite) -> frozenset[str]:
    """Receiver-name convention effects for an unresolved call site."""
    hint = site.receiver_hint.lower()
    if hint.endswith(ORACLE_RECEIVER_SUFFIX):
        if site.method in ORACLE_QUERY_METHODS:
            return frozenset({QUERIES_ORACLE})
        if site.method in ORACLE_REFRESH_METHODS:
            return frozenset({REFRESHES_ORACLE})
    if hint in NETWORK_RECEIVERS and site.method in NETWORK_MUTATOR_METHODS:
        return frozenset({MUTATES_NETWORK})
    return frozenset()


def classify(effects: set[str]) -> str:
    """Three-point lattice label: pure < reads-state < mutates-state."""
    if effects & {MUTATES_NETWORK, MUTATES_STATE, MUTATES_MODULE}:
        return "mutates-state"
    if effects & {READS_STATE, QUERIES_ORACLE, REFRESHES_ORACLE}:
        return "reads-state"
    return "pure"


def infer_effects(graph: CallGraph) -> EffectMap:
    """Local effect scan followed by a transitive worklist fixpoint."""
    result: EffectMap = {}
    for qualname, fn in graph.functions.items():
        seed = known_signature(qualname)
        if seed is not None:
            fx = FunctionEffects(effects=set(seed), seeded=True)
            for effect in seed:
                fx.witnesses[effect] = Witness(fn.lineno, "declared effect signature")
            result[qualname] = fx
        else:
            result[qualname] = _local_effects(graph, fn)

    # Fallback effects of unresolved call sites count as local too.
    for caller, sites in graph.calls.items():
        fx = result.get(caller)
        if fx is None or fx.seeded:
            continue
        for site in sites:
            if site.targets:
                continue
            for effect in fallback_effects(site):
                fx.absorb(
                    effect,
                    Witness(site.line, f"call `{site.receiver_hint}.{site.method}()`"),
                )

    # Worklist fixpoint over the call graph.
    pending = list(graph.functions)
    in_queue = set(pending)
    while pending:
        caller = pending.pop()
        in_queue.discard(caller)
        fx = result[caller]
        if fx.seeded:
            continue
        changed = False
        for site in graph.calls.get(caller, ()):  # absorb callee effects
            for target in site.targets:
                callee_fx = result.get(target)
                if callee_fx is None:
                    continue
                for effect in callee_fx.effects:
                    if fx.absorb(
                        effect, Witness(site.line, f"call to `{target}` (line {site.line})")
                    ):
                        changed = True
        if changed:
            for parent in graph.callers.get(caller, ()):  # re-examine callers
                if parent not in in_queue:
                    in_queue.add(parent)
                    pending.append(parent)
    return result


# --------------------------------------------------------------------------- #
# local (intra-function) effect scan
# --------------------------------------------------------------------------- #


def _local_effects(graph: CallGraph, fn: FunctionInfo) -> FunctionEffects:
    fx = FunctionEffects()
    module = graph.modules.get(fn.module)
    module_globals = set(module.globals_) if module is not None else set()
    import_names = set(module.imports) if module is not None else set()

    params = {arg.arg for arg in _all_args(fn.node)}
    locals_: set[str] = set()
    global_decls: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            locals_.add(node.id)
    locals_ -= global_decls

    def root_kind(expr: ast.expr) -> str:
        """Classify the root name a store/mutation reaches."""
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        if not isinstance(expr, ast.Name):
            return "other"
        name = expr.id
        if name in {"self", "cls"}:
            return "self"
        if name in global_decls or (
            name in module_globals and name not in locals_ and name not in params
        ):
            return "module:" + name
        if name in params and name not in locals_:
            return "param"
        return "local"

    def note_store(target: ast.expr, line: int, what: str) -> None:
        # A bare Name store is a local rebinding unless `global`-declared.
        if isinstance(target, ast.Name):
            if target.id in global_decls:
                fx.module_writes.add(target.id)
                fx.absorb(MUTATES_MODULE, Witness(line, f"rebinds global `{target.id}`"))
            return
        kind = root_kind(target)
        if kind == "self" or kind == "param":
            fx.absorb(MUTATES_STATE, Witness(line, what))
        elif kind.startswith("module:"):
            name = kind.partition(":")[2]
            fx.module_writes.add(name)
            fx.absorb(MUTATES_MODULE, Witness(line, f"mutates global `{name}`"))

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                note_store(target, node.lineno, _store_text(target))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            note_store(node.target, node.lineno, _store_text(node.target))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                note_store(target, node.lineno, _store_text(target))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _CONTAINER_MUTATORS:
                kind = root_kind(node.func.value)
                if kind in {"self", "param"}:
                    fx.absorb(
                        MUTATES_STATE,
                        Witness(node.lineno, f"in-place `.{node.func.attr}()` on {kind} state"),
                    )
                elif kind.startswith("module:"):
                    name = kind.partition(":")[2]
                    fx.module_writes.add(name)
                    fx.absorb(
                        MUTATES_MODULE,
                        Witness(node.lineno, f"in-place `.{node.func.attr}()` on global `{name}`"),
                    )
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if isinstance(node.value, ast.Name) and node.value.id in {"self", "cls"}:
                fx.absorb(READS_STATE, Witness(node.lineno, f"reads `self.{node.attr}`"))
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            name = node.id
            if (
                name in module_globals
                and name not in locals_
                and name not in params
                and name not in import_names
            ):
                fx.module_reads.add(name)
                fx.absorb(READS_STATE, Witness(node.lineno, f"reads global `{name}`"))
    return fx


def _all_args(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
    args = node.args
    extra = [a for a in (args.vararg, args.kwarg) if a is not None]
    return [*args.posonlyargs, *args.args, *args.kwonlyargs, *extra]


def _store_text(target: ast.expr) -> str:
    if isinstance(target, ast.Attribute):
        return f"assigns attribute `.{target.attr}`"
    if isinstance(target, ast.Subscript):
        return "assigns through a subscript"
    return "assignment"
