"""Whole-program semantic rules on top of the call graph + effect engine.

These rules need interprocedural reasoning that no per-file rule can do:

``ORA001``
    A statement path that mutates the road network and later queries a
    distance oracle with no intervening refresh/repair/fallback: the query
    prices on preprocessed structures describing a road network that no
    longer exists.
``ORA002``
    An oracle query inside a ``WorldEvent.apply`` override or timeline
    hook: events run *before* the refresh policy sees the burst, so any
    query there is potentially stale by construction; route pricing
    decisions through the refresh policy instead.
``CONC001``
    Module-level mutable state reachable from dispatch/routing entry
    points: the ROADMAP's dispatch-as-a-service and zone-sharded
    multiprocessing work will fork these modules into executor workers,
    where a module global silently becomes per-process (or, with threads,
    a data race).
``CONC002``
    A closure or default-argument capture of mutable simulation state in a
    function handed to an executor/callback seam: the capture aliases
    batch-local state across task boundaries.
``PUR001``
    A function whose name (``compute_*``/``score_*``/``estimate_*``) or
    docstring claims purity but which transitively mutates state.

The analysis is branch-insensitive apart from ``if``/``else`` joins and a
twice-unrolled loop body (which catches ``query(); ...; mutate()`` loops),
and blind to registry-style dynamic dispatch -- see DESIGN.md for the
documented unsoundness.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass, field

from .callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    _is_mutable_value,
    build_call_graph,
)
from .effects import (
    MUTATES_MODULE,
    MUTATES_NETWORK,
    MUTATES_STATE,
    QUERIES_ORACLE,
    REFRESHES_ORACLE,
    EffectMap,
    classify,
    fallback_effects,
    infer_effects,
)
from .rules import FileContext, Violation

__all__ = [
    "SEMANTIC_RULES",
    "ProjectAnalysis",
    "SemanticRule",
    "build_project",
    "call_graph_dot",
    "call_graph_json",
    "run_semantic_rules",
    "summary_tables",
]

#: Modules whose functions count as dispatch/routing entry points (CONC001);
#: the future executor boundary cuts through these packages.
ENTRY_MODULE_PREFIXES = ("repro.dispatch", "repro.network.routing")
ENTRY_FUNCTION_SUFFIXES = ("Simulator.run",)

#: Callable-handoff seams (CONC002): executor submission methods and
#: thread/process constructors taking a ``target=``.
EXECUTOR_METHODS = frozenset(
    {"submit", "apply_async", "map_async", "starmap_async", "add_done_callback",
     "run_in_executor", "call_soon", "call_later"}
)
THREAD_CLASSES = frozenset({"Thread", "Process", "Timer"})
CALLBACK_KEYWORDS = frozenset({"target", "callback", "error_callback", "func", "fn"})

_PURITY_PREFIXES = ("compute_", "score_", "estimate_")
_PURITY_DOC = re.compile(r"\bpure(?:ly)?\b(?!\s+(?:stdlib|python))", re.IGNORECASE)
_MUTATION_EFFECTS = frozenset({MUTATES_NETWORK, MUTATES_STATE, MUTATES_MODULE})


@dataclass
class ProjectAnalysis:
    """Call graph + effects + per-file contexts for the semantic rules."""

    graph: CallGraph
    effects: EffectMap
    contexts: dict[str, FileContext] = field(default_factory=dict)

    def effect_set(self, qualname: str) -> set[str]:
        fx = self.effects.get(qualname)
        return fx.effects if fx is not None else set()

    def site_effects(self, site: CallSite) -> set[str]:
        """Effects one call site may perform (resolved union or fallback)."""
        if site.targets:
            combined: set[str] = set()
            for target in site.targets:
                combined |= self.effect_set(target)
            return combined
        return set(fallback_effects(site))

    def witness_chain(self, qualname: str, effect: str, depth: int = 3) -> str:
        """Render how an effect reached a function, following call witnesses."""
        parts: list[str] = []
        current = qualname
        for _ in range(depth):
            fx = self.effects.get(current)
            if fx is None or effect not in fx.witnesses:
                break
            witness = fx.witnesses[effect]
            parts.append(witness.detail)
            match = re.match(r"call to `([^`]+)`", witness.detail)
            if match is None:
                break
            current = match.group(1)
        return " -> ".join(parts)


def build_project(contexts: list[FileContext]) -> ProjectAnalysis | None:
    """Index the project files (``src/repro/`` scope); None when empty."""
    in_scope = [ctx for ctx in contexts if ctx.path.startswith("src/repro/")]
    if not in_scope:
        return None
    graph = build_call_graph(in_scope)
    effects = infer_effects(graph)
    return ProjectAnalysis(
        graph=graph, effects=effects, contexts={ctx.path: ctx for ctx in in_scope}
    )


class SemanticRule:
    """Base class: one whole-program rule with a code and docstring."""

    code: str = ""
    autofixable: bool = False

    @classmethod
    def summary(cls) -> str:
        doc = cls.__doc__ or ""
        return doc.strip().splitlines()[0]

    def check(self, project: ProjectAnalysis) -> Iterator[Violation]:
        raise NotImplementedError
        yield  # pragma: no cover


# --------------------------------------------------------------------------- #
# ORA001: mutate-then-query with no intervening refresh
# --------------------------------------------------------------------------- #


class ORA001StaleOracleQuery(SemanticRule):
    """No oracle query after a network mutation without a refresh between.

    Preprocessed routing structures (CH shortcuts, hub labels) describe the
    network as it was at build time; a ``DistanceOracle`` query issued after
    ``RoadNetwork.add_edge``/``remove_edge``/``add_node`` -- directly or
    through any call chain -- prices against a stale view unless
    ``rebuild()``, ``repair()`` or ``enable_fallback()`` ran in between.
    The scan is per-function but the mutate/query/refresh classification of
    every callee is transitive over the project call graph; ``if``/``else``
    branches join pessimistically and loop bodies are unrolled twice so a
    ``query(); mutate()`` loop is caught on its back edge.
    """

    code = "ORA001"

    def check(self, project: ProjectAnalysis) -> Iterator[Violation]:
        for qualname, fn in sorted(project.graph.functions.items()):
            fx = project.effects.get(qualname)
            if fx is None or fx.seeded:
                continue
            effects = fx.effects
            if MUTATES_NETWORK not in effects or QUERIES_ORACLE not in effects:
                continue
            yield from self._scan_function(project, fn)

    def _scan_function(
        self, project: ProjectAnalysis, fn: FunctionInfo
    ) -> Iterator[Violation]:
        sites = {
            (site.line, site.col): site
            for site in project.graph.calls.get(fn.qualname, ())
            if not site.in_nested
        }
        found: dict[tuple[int, int], Violation] = {}
        state = _ScanState(project, fn, sites, found)
        state.scan_block(fn.node.body, _Dirty(False, 0))
        yield from (found[key] for key in sorted(found))


@dataclass(frozen=True)
class _Dirty:
    dirty: bool
    since_line: int

    def join(self, other: "_Dirty") -> "_Dirty":
        if self.dirty:
            return self
        return other


@dataclass
class _ScanState:
    project: ProjectAnalysis
    fn: FunctionInfo
    sites: dict[tuple[int, int], CallSite]
    found: dict[tuple[int, int], Violation]

    def scan_block(self, stmts: list[ast.stmt], dirty: _Dirty) -> _Dirty:
        for stmt in stmts:
            dirty = self.scan_statement(stmt, dirty)
        return dirty

    def scan_statement(self, stmt: ast.stmt, dirty: _Dirty) -> _Dirty:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return dirty  # deferred execution; scanned on its own if indexed
        if isinstance(stmt, ast.If):
            dirty = self.apply_expressions([stmt.test], dirty)
            then_out = self.scan_block(stmt.body, dirty)
            else_out = self.scan_block(stmt.orelse, dirty)
            return then_out.join(else_out)
        if isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
            header: list[ast.expr] = []
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                header = [stmt.iter]
            else:
                header = [stmt.test]
            dirty = self.apply_expressions(header, dirty)
            once = self.scan_block(stmt.body, dirty)
            # Second unroll catches query-before-mutate on the back edge.
            twice = self.scan_block(stmt.body, once)
            return self.scan_block(stmt.orelse, dirty.join(twice))
        if isinstance(stmt, ast.Try):
            out = self.scan_block(stmt.body, dirty)
            merged = out
            for handler in stmt.handlers:
                merged = merged.join(self.scan_block(handler.body, out))
            merged = self.scan_block(stmt.orelse, merged)
            return self.scan_block(stmt.finalbody, merged)
        # Generic statement: evaluate its expressions, then nested bodies.
        exprs = [
            value
            for name, value in ast.iter_fields(stmt)
            if name not in {"body", "orelse", "finalbody", "handlers"}
            for value in (value if isinstance(value, list) else [value])
            if isinstance(value, ast.expr)
        ]
        dirty = self.apply_expressions(exprs, dirty)
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                dirty = self.scan_block(block, dirty)
        return dirty

    def apply_expressions(self, exprs: list[ast.expr], dirty: _Dirty) -> _Dirty:
        calls: list[ast.Call] = []
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    calls.append(node)
        for call in sorted(calls, key=lambda c: (c.lineno, c.col_offset)):
            site = self.sites.get((call.lineno, call.col_offset))
            if site is None:
                continue
            effects = self.project.site_effects(site)
            # Optimistic per-call ordering: a callee that both queries and
            # mutates (or mutates and refreshes) is assumed internally
            # consistent -- its own body is scanned separately -- so the
            # caller sees query first and refresh last.
            if QUERIES_ORACLE in effects and dirty.dirty:
                key = (call.lineno, call.col_offset)
                if key not in self.found:
                    callee = site.targets[0] if site.targets else (
                        f"{site.receiver_hint}.{site.method}"
                    )
                    self.found[key] = Violation(
                        code="ORA001",
                        path=self.fn.path,
                        line=call.lineno,
                        column=call.col_offset,
                        message=(
                            f"oracle query via `{callee}` on a path where the network "
                            f"was mutated (line {dirty.since_line}) with no "
                            "rebuild/repair/enable_fallback in between"
                        ),
                    )
            if MUTATES_NETWORK in effects:
                dirty = _Dirty(True, call.lineno)
            if REFRESHES_ORACLE in effects:
                dirty = _Dirty(False, 0)
        return dirty


# --------------------------------------------------------------------------- #
# ORA002: oracle queries inside world-event application
# --------------------------------------------------------------------------- #


class ORA002QueryInEventHook(SemanticRule):
    """No oracle queries inside ``WorldEvent.apply`` or timeline hooks.

    Events of one batch boundary are applied *before* the refresh policy
    sees the mutation burst, so an oracle query issued from an ``apply``
    override (or an ``on_applied`` timeline probe) can observe the previous
    burst's staleness no matter how careful the event itself is.  Pricing
    reactions to world changes belong after the refresh policy has run --
    in the dispatcher or in a dedicated post-refresh hook.
    """

    code = "ORA002"

    def check(self, project: ProjectAnalysis) -> Iterator[Violation]:
        graph = project.graph
        for qualname, fn in sorted(graph.functions.items()):
            if not self._is_event_hook(graph, fn):
                continue
            effects = project.effect_set(qualname)
            if QUERIES_ORACLE not in effects:
                continue
            chain = project.witness_chain(qualname, QUERIES_ORACLE)
            detail = f" ({chain})" if chain else ""
            yield Violation(
                code="ORA002",
                path=fn.path,
                line=fn.lineno,
                column=fn.node.col_offset,
                message=(
                    f"`{fn.name}` runs before the refresh policy sees the burst "
                    f"but transitively queries the oracle{detail}; route pricing "
                    "through the refresh policy instead"
                ),
            )

    def _is_event_hook(self, graph: CallGraph, fn: FunctionInfo) -> bool:
        if fn.name == "on_applied":
            return True
        if fn.name != "apply" or fn.cls is None:
            return False
        cls = graph.classes.get(fn.cls)
        if cls is None or cls.name == "WorldEvent":
            return False
        return graph.inherits_from(fn.cls, "WorldEvent")


# --------------------------------------------------------------------------- #
# CONC001: shared module state on the executor boundary
# --------------------------------------------------------------------------- #


class CONC001SharedModuleState(SemanticRule):
    """No mutable module-level state reachable from dispatch/routing paths.

    The dispatch-as-a-service and zone-sharded multiprocessing work will
    run dispatch and routing code inside executor workers.  A module-level
    container that any reachable function mutates (or a global rebound via
    ``global``) is shared mutable state today and divergent per-process
    state tomorrow -- results would then depend on worker placement.  Keep
    such state on instances owned by one run, or make it an immutable
    constant; deliberate process-local singletons need a reasoned waiver.
    """

    code = "CONC001"

    def check(self, project: ProjectAnalysis) -> Iterator[Violation]:
        graph = project.graph
        entries = self._entry_points(project)
        reachable = self._reachable(graph, entries)
        for module_name in sorted(graph.modules):
            module = graph.modules[module_name]
            for name in sorted(module.globals_):
                binding = module.globals_[name]
                writers = [
                    qualname
                    for qualname, fx in project.effects.items()
                    if name in fx.module_writes
                    and graph.functions[qualname].module == module_name
                ]
                if not writers:
                    continue
                if not binding.mutable_value and not any(
                    self._rebinds_global(graph.functions[w].node, name) for w in writers
                ):
                    continue
                users = [
                    qualname
                    for qualname, fx in project.effects.items()
                    if (name in fx.module_reads or name in fx.module_writes)
                    and graph.functions[qualname].module == module_name
                ]
                hot = sorted(u for u in users if u in reachable)
                if not hot:
                    continue
                yield Violation(
                    code="CONC001",
                    path=binding.path,
                    line=binding.line,
                    column=0,
                    message=(
                        f"module-level mutable state `{name}` (mutated by "
                        f"`{writers[0]}`) is reachable from dispatch/routing via "
                        f"`{hot[0]}`; move it onto a per-run instance before the "
                        "executor boundary or waive with a reason"
                    ),
                )

    def _entry_points(self, project: ProjectAnalysis) -> set[str]:
        graph = project.graph
        entries: set[str] = set()
        for qualname, fn in graph.functions.items():
            if fn.module.startswith(ENTRY_MODULE_PREFIXES):
                entries.add(qualname)
            elif any(qualname.endswith(suffix) for suffix in ENTRY_FUNCTION_SUFFIXES):
                entries.add(qualname)
            elif (
                fn.cls is not None
                and fn.name == "dispatch"
                and graph.inherits_from(fn.cls, "Dispatcher")
            ):
                entries.add(qualname)
        return entries

    def _reachable(self, graph: CallGraph, entries: set[str]) -> set[str]:
        seen = set(entries)
        stack = list(entries)
        while stack:
            for site in graph.calls.get(stack.pop(), ()):
                for target in site.targets:
                    if target not in seen:
                        seen.add(target)
                        stack.append(target)
        return seen

    def _rebinds_global(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, name: str
    ) -> bool:
        return any(
            isinstance(child, ast.Global) and name in child.names
            for child in ast.walk(node)
        )


# --------------------------------------------------------------------------- #
# CONC002: mutable capture handed to executors/callbacks
# --------------------------------------------------------------------------- #


class CONC002MutableCapture(SemanticRule):
    """No mutable-state capture in callables handed to executors/callbacks.

    A lambda or nested function submitted to an executor (``submit``,
    ``apply_async``, ``Thread(target=...)``, ``add_done_callback``) that
    closes over a mutable container -- or over ``self`` -- aliases live
    simulation state across the task boundary; by the time the task runs,
    the batch that created the capture has moved on.  The same applies to
    mutable default arguments on the handed-off function.  Pass immutable
    snapshots (tuples, frozen dataclasses) or per-task copies instead.
    """

    code = "CONC002"

    def check(self, project: ProjectAnalysis) -> Iterator[Violation]:
        for path in sorted(project.contexts):
            ctx = project.contexts[path]
            for scope in ast.walk(ctx.tree):
                if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                yield from self._scan_scope(ctx, scope)

    def _scan_scope(
        self, ctx: FileContext, scope: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        mutable_names = self._mutable_bindings(scope)
        local_defs = {
            child.name: child
            for child in ast.walk(scope)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) and child is not scope
        }
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            for candidate in self._handed_callables(node):
                yield from self._check_callable(
                    ctx, node, candidate, mutable_names, local_defs
                )

    def _handed_callables(self, call: ast.Call) -> Iterator[ast.expr]:
        func = call.func
        is_executor = isinstance(func, ast.Attribute) and func.attr in EXECUTOR_METHODS
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        is_thread = name in THREAD_CLASSES
        if is_executor and call.args:
            yield call.args[0]
        for keyword in call.keywords:
            if keyword.arg in CALLBACK_KEYWORDS and (is_executor or is_thread):
                yield keyword.value

    def _check_callable(
        self,
        ctx: FileContext,
        handoff: ast.Call,
        candidate: ast.expr,
        mutable_names: set[str],
        local_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> Iterator[Violation]:
        if isinstance(candidate, ast.Call):  # functools.partial(fn, ...)
            if candidate.args:
                yield from self._check_callable(
                    ctx, handoff, candidate.args[0], mutable_names, local_defs
                )
            return
        body: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef | None = None
        label = "<lambda>"
        if isinstance(candidate, ast.Lambda):
            body = candidate
        elif isinstance(candidate, ast.Name) and candidate.id in local_defs:
            body = local_defs[candidate.id]
            label = candidate.id
        if body is None:
            return
        for default in self._mutable_defaults(body):
            yield Violation(
                code="CONC002",
                path=ctx.path,
                line=handoff.lineno,
                column=handoff.col_offset,
                message=(
                    f"`{label}` handed to an executor/callback carries a mutable "
                    f"default argument (line {default.lineno}); defaults are "
                    "shared across every task"
                ),
            )
        captured = sorted(self._free_names(body) & (mutable_names | {"self"}))
        for name in captured:
            yield Violation(
                code="CONC002",
                path=ctx.path,
                line=handoff.lineno,
                column=handoff.col_offset,
                message=(
                    f"`{label}` handed to an executor/callback closes over mutable "
                    f"`{name}`; pass an immutable snapshot or per-task copy instead"
                ),
            )

    def _mutable_bindings(self, scope: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and _is_mutable_value(node.value):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _is_mutable_value(node.value):
                    names.add(node.target.id)
        return names

    def _mutable_defaults(
        self, node: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[ast.expr]:
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is not None and _is_mutable_value(default):
                yield default

    def _free_names(
        self, node: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        params = {
            arg.arg
            for arg in [
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
                *(a for a in (node.args.vararg, node.args.kwarg) if a is not None),
            ]
        }
        bound: set[str] = set(params)
        loaded: set[str] = set()
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            for child in ast.walk(stmt):
                if isinstance(child, ast.Name):
                    if isinstance(child.ctx, ast.Store):
                        bound.add(child.id)
                    elif isinstance(child.ctx, ast.Load):
                        loaded.add(child.id)
        return loaded - bound


# --------------------------------------------------------------------------- #
# PUR001: purity claims vs inferred effects
# --------------------------------------------------------------------------- #


class PUR001PurityClaim(SemanticRule):
    """Functions claiming purity must not transitively mutate state.

    A public name starting ``compute_``/``score_``/``estimate_`` -- or a
    docstring describing the function as *pure* -- is a contract: callers
    reorder, cache and parallelise such functions freely.  The rule checks
    the claim against the transitive effect inference; leading-underscore
    helpers are exempt (their statefulness is an implementation detail of
    the enclosing seam, e.g. memoisation counters).
    """

    code = "PUR001"

    def check(self, project: ProjectAnalysis) -> Iterator[Violation]:
        for qualname, fn in sorted(project.graph.functions.items()):
            fx = project.effects.get(qualname)
            if fx is None or fx.seeded:
                continue
            claim = self._purity_claim(fn)
            if claim is None:
                continue
            hit = sorted(fx.effects & _MUTATION_EFFECTS)
            if not hit:
                continue
            chain = project.witness_chain(qualname, hit[0])
            detail = f": {chain}" if chain else ""
            yield Violation(
                code="PUR001",
                path=fn.path,
                line=fn.lineno,
                column=fn.node.col_offset,
                message=(
                    f"`{fn.name}` claims purity ({claim}) but transitively "
                    f"{hit[0].replace('_', ' ')}{detail}"
                ),
            )

    def _purity_claim(self, fn: FunctionInfo) -> str | None:
        if fn.name.startswith("_"):
            return None
        if fn.name.startswith(_PURITY_PREFIXES):
            return f"name prefix `{fn.name.split('_', 1)[0]}_`"
        doc_first = fn.docstring.strip().splitlines()[0] if fn.docstring else ""
        if _PURITY_DOC.search(doc_first):
            return "docstring"
        return None


#: Ordered semantic-rule catalog (merged into the full catalog by
#: :func:`repro.analysis.rules.rule_catalog`).
SEMANTIC_RULES: tuple[type[SemanticRule], ...] = (
    ORA001StaleOracleQuery,
    ORA002QueryInEventHook,
    CONC001SharedModuleState,
    CONC002MutableCapture,
    PUR001PurityClaim,
)


def run_semantic_rules(project: ProjectAnalysis) -> list[Violation]:
    violations: list[Violation] = []
    for rule_cls in SEMANTIC_RULES:
        violations.extend(rule_cls().check(project))
    return violations


# --------------------------------------------------------------------------- #
# call-graph export (CLI `--call-graph` + markdown summary tables)
# --------------------------------------------------------------------------- #


def call_graph_json(project: ProjectAnalysis) -> dict[str, object]:
    """Machine-readable call graph + effects (versioned, sorted, stable)."""
    fan_in = project.graph.fan_in()
    functions = []
    for qualname in sorted(project.graph.functions):
        fn = project.graph.functions[qualname]
        fx = project.effects[qualname]
        functions.append(
            {
                "qualname": qualname,
                "path": fn.path,
                "line": fn.lineno,
                "effects": sorted(fx.effects),
                "classification": classify(fx.effects),
                "seeded": fx.seeded,
                "fan_in": fan_in.get(qualname, 0),
                "calls": [
                    {"line": site.line, "targets": list(site.targets), "method": site.method}
                    for site in project.graph.calls.get(qualname, ())
                    if site.targets or fallback_effects(site)
                ],
            }
        )
    return {"version": 1, "functions": functions}


def call_graph_dot(project: ProjectAnalysis) -> str:
    """GraphViz DOT of the resolved edges, colour-coded by classification."""
    colors = {"pure": "gray70", "reads-state": "steelblue", "mutates-state": "firebrick"}
    lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box, fontsize=9];"]
    for qualname in sorted(project.graph.functions):
        fx = project.effects[qualname]
        label = qualname.removeprefix("repro.")
        color = colors[classify(fx.effects)]
        lines.append(f'  "{label}" [color={color}];')
    for caller in sorted(project.graph.calls):
        caller_label = caller.removeprefix("repro.")
        seen: set[str] = set()
        for site in project.graph.calls[caller]:
            for target in site.targets:
                target_label = target.removeprefix("repro.")
                if target_label not in seen:
                    seen.add(target_label)
                    lines.append(f'  "{caller_label}" -> "{target_label}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def summary_tables(project: ProjectAnalysis, top: int = 10) -> str:
    """Markdown "top mutators / top fan-in" tables for the CI job summary."""
    fan_in = project.graph.fan_in()

    def row(qualname: str) -> str:
        fx = project.effects[qualname]
        effects = ", ".join(sorted(fx.effects)) or "pure"
        return (
            f"| `{qualname.removeprefix('repro.')}` | {fan_in.get(qualname, 0)} "
            f"| {classify(fx.effects)} | {effects} |"
        )

    by_fan_in = sorted(
        project.graph.functions, key=lambda q: (-fan_in.get(q, 0), q)
    )[:top]
    mutators = [
        qualname
        for qualname in sorted(
            project.graph.functions, key=lambda q: (-fan_in.get(q, 0), q)
        )
        if project.effects[qualname].effects & _MUTATION_EFFECTS
    ][:top]
    header = "| function | fan-in | class | effects |\n| --- | ---: | --- | --- |"
    lines = [
        "### Call graph",
        "",
        f"{len(project.graph.functions)} functions, "
        f"{sum(len(s) for s in project.graph.calls.values())} call sites, "
        f"{len(project.graph.classes)} classes.",
        "",
        "**Top fan-in**",
        "",
        header,
        *[row(q) for q in by_fan_in],
        "",
        "**Top mutators**",
        "",
        header,
        *[row(q) for q in mutators],
        "",
    ]
    return "\n".join(lines)
