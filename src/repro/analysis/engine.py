"""repro-lint engine: file discovery, waiver parsing and rule dispatch.

The engine is deliberately small: it parses each file once, hands the
shared :class:`~repro.analysis.rules.FileContext` to every applicable rule,
then applies per-line waivers.  Baseline filtering happens one layer up
(:mod:`repro.analysis.baseline`) so unit tests can exercise raw rule output
directly.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from .rules import RULES, FileContext, Rule, Violation
from .semantic_rules import ProjectAnalysis, build_project, run_semantic_rules

__all__ = [
    "FileReport",
    "WAIVER_PATTERN",
    "analyze_path",
    "analyze_paths",
    "analyze_project",
    "attach_semantic",
    "iter_python_files",
]

#: ``# repro-lint: disable=<CODE>[,<CODE>] <reason>`` -- the reason is
#: mandatory (enforced as WVR001, not by the regex, so a reasonless waiver
#: still suppresses while the missing reason is reported).
WAIVER_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z]{3,4}\d{3}(?:\s*,\s*[A-Z]{3,4}\d{3})*)"
    r"[ \t]*(?P<reason>[^#]*)"
)

#: Directory names never descended into when expanding directory arguments.
#: ``lint_fixtures`` holds deliberately-violating test fixtures; explicitly
#: named files are always analyzed, so the fixture tests are unaffected.
EXCLUDED_DIRS = frozenset({".git", "__pycache__", ".venv", "build", "dist", "lint_fixtures"})


@dataclass(frozen=True)
class Waiver:
    line: int
    codes: tuple[str, ...]
    reason: str


@dataclass
class FileReport:
    """Violations for one file, after waivers but before the baseline."""

    path: str
    violations: list[Violation] = field(default_factory=list)
    waivers: list[Waiver] = field(default_factory=list)
    parse_error: str | None = None
    #: Parsed context, kept so the semantic pass can reuse the one parse.
    context: FileContext | None = field(default=None, repr=False)

    def line_text(self, line: int) -> str:
        return self._lines[line - 1] if 0 < line <= len(self._lines) else ""

    _lines: list[str] = field(default_factory=list, repr=False)


def parse_waivers(lines: list[str]) -> dict[int, Waiver]:
    waivers: dict[int, Waiver] = {}
    for lineno, text in enumerate(lines, start=1):
        match = WAIVER_PATTERN.search(text)
        if match is None:
            continue
        codes = tuple(code.strip() for code in match.group("codes").split(","))
        reason = match.group("reason").strip()
        waivers[lineno] = Waiver(line=lineno, codes=codes, reason=reason)
    return waivers


def analyze_source(path: str, source: str, rules: tuple[type[Rule], ...] = RULES) -> FileReport:
    """Run every applicable rule over *source*, applying per-line waivers."""
    lines = source.splitlines()
    report = FileReport(path=path, _lines=lines)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.parse_error = f"{exc.msg} (line {exc.lineno})"
        report.violations.append(
            Violation(
                code="PARSE",
                path=path,
                line=exc.lineno or 1,
                column=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return report

    ctx = FileContext(path=path, source=source, tree=tree, lines=lines)
    report.context = ctx
    waivers = parse_waivers(lines)
    report.waivers = sorted(waivers.values(), key=lambda w: w.line)

    raw: list[Violation] = []
    for rule_cls in rules:
        rule = rule_cls()
        if rule.applies_to(path):
            raw.extend(rule.check(ctx))

    for violation in raw:
        waiver = waivers.get(violation.line)
        if waiver is not None and violation.code in waiver.codes:
            continue  # suppressed; WVR001 below still enforces the reason
        report.violations.append(violation)

    for waiver in report.waivers:
        if not waiver.reason:
            report.violations.append(
                Violation(
                    code="WVR001",
                    path=path,
                    line=waiver.line,
                    column=0,
                    message=(
                        "waiver without a reason; write `# repro-lint: "
                        "disable=<CODE> <why this line is exempt>`"
                    ),
                )
            )

    report.violations.sort(key=lambda v: (v.line, v.column, v.code))
    return report


def analyze_path(path: Path, root: Path, rules: tuple[type[Rule], ...] = RULES) -> FileReport:
    rel = relative_posix(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        report = FileReport(path=rel, parse_error=str(exc))
        report.violations.append(
            Violation(code="PARSE", path=rel, line=1, column=0, message=f"unreadable: {exc}")
        )
        return report
    return analyze_source(rel, source, rules)


def analyze_paths(
    paths: list[Path], root: Path, rules: tuple[type[Rule], ...] = RULES
) -> list[FileReport]:
    files = iter_python_files(paths)
    return [analyze_path(path, root, rules) for path in files]


def attach_semantic(reports: list[FileReport]) -> ProjectAnalysis | None:
    """Run the whole-program pass and merge its findings into *reports*.

    Builds the call graph + effect map from the already-parsed contexts
    (``src/repro/`` scope only), runs the semantic rules, applies each
    file's per-line waivers to the new findings, and re-sorts.  Returns the
    :class:`ProjectAnalysis` for ``--call-graph``/summary export, or
    ``None`` when no in-scope file was analyzed.
    """
    contexts = [report.context for report in reports if report.context is not None]
    project = build_project(contexts)
    if project is None:
        return None
    by_path = {report.path: report for report in reports}
    touched: set[str] = set()
    for violation in run_semantic_rules(project):
        report = by_path.get(violation.path)
        if report is None:
            continue
        waived = any(
            waiver.line == violation.line and violation.code in waiver.codes
            for waiver in report.waivers
        )
        if waived:
            continue
        report.violations.append(violation)
        touched.add(report.path)
    for path in sorted(touched):
        by_path[path].violations.sort(key=lambda v: (v.line, v.column, v.code))
    return project


def analyze_project(
    paths: list[Path],
    root: Path,
    rules: tuple[type[Rule], ...] = RULES,
    *,
    semantic: bool = True,
) -> tuple[list[FileReport], ProjectAnalysis | None]:
    """Lexical pass plus (by default) the interprocedural semantic pass."""
    reports = analyze_paths(paths, root, rules)
    project = attach_semantic(reports) if semantic else None
    return reports, project


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Directories are walked recursively, skipping :data:`EXCLUDED_DIRS`;
    explicitly named files are always included (this is how the fixture
    tests lint files living under the otherwise-excluded directory).
    """
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in EXCLUDED_DIRS for part in candidate.parts):
                    continue
                seen.setdefault(candidate.resolve(), None)
        elif path.suffix == ".py":
            seen.setdefault(path.resolve(), None)
    return sorted(seen)


def relative_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
