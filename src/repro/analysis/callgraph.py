"""Project call-graph builder for the semantic analysis pass.

Builds a whole-program view of ``src/repro/`` from the per-file ASTs the
lexical pass already parsed: which modules define which classes and
functions, who inherits from whom, and -- the part no per-file rule can see
-- which function calls which.  Resolution is *bounded alias tracking*, not
type inference: parameter/attribute annotations, ``self.attr = <annotated
param>`` constructor assignments and ``x = ClassName(...)`` locals give each
expression a best-effort nominal type, and method calls resolve against
that type's class plus every subclass override (a dynamic-dispatch union).

Everything that cannot be resolved is recorded as an *unresolved* call site
carrying the receiver's trailing identifier (``self.oracle.cost`` ->
``oracle``/``cost``), which the effect engine matches against well-known
receiver-name conventions.  Known unsoundness is documented in
DESIGN.md: registry-driven dynamic dispatch (``REFRESH_POLICIES``-style
string lookups), monkey-patching, and callables passed as values are
invisible to the graph.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from .rules import FileContext

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "GlobalBinding",
    "ModuleInfo",
    "TypeRef",
    "build_call_graph",
    "module_name_for",
]

#: Maximum alias-chain hops followed while resolving an imported name.
_RESOLVE_FUEL = 16

#: Container constructors whose values are mutable (CONC-rule relevance).
MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)

#: Subscripted annotation heads treated as sequences of their first argument.
_SEQUENCE_HEADS = frozenset(
    {"list", "List", "tuple", "Tuple", "set", "Set", "frozenset", "FrozenSet",
     "Sequence", "Iterable", "Iterator", "Collection", "deque"}
)
_MAPPING_HEADS = frozenset({"dict", "Dict", "Mapping", "MutableMapping", "defaultdict"})
_OPTIONAL_HEADS = frozenset({"Optional"})


@dataclass(frozen=True)
class TypeRef:
    """Best-effort nominal type of an expression.

    ``qualname`` is a resolved project class; containers carry the element
    type reached by iteration (``elem``) and, for mappings, the value type
    reached by subscription (``value``).
    """

    qualname: str | None = None
    elem: "TypeRef | None" = None
    value: "TypeRef | None" = None


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    cls: str | None  # owning class qualname, None for module-level functions
    name: str
    path: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def docstring(self) -> str:
        return ast.get_docstring(self.node) or ""


@dataclass
class ClassInfo:
    """One class definition with resolved bases and attribute types."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    bases_raw: list[str] = field(default_factory=list)
    bases: list[str] = field(default_factory=list)  # resolved class qualnames
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    attr_types: dict[str, TypeRef] = field(default_factory=dict)


@dataclass(frozen=True)
class GlobalBinding:
    """A module-level name binding (CONC001 raw material)."""

    module: str
    name: str
    path: str
    line: int
    mutable_value: bool


@dataclass(frozen=True)
class CallSite:
    """One call expression, resolved as far as alias tracking allows."""

    caller: str  # qualname of the enclosing indexed function
    line: int
    col: int
    targets: tuple[str, ...]  # resolved function qualnames (dynamic union)
    receiver_hint: str  # trailing identifier of the receiver ("" for plain names)
    method: str  # called attribute / function name
    in_nested: bool  # inside a nested def/lambda (deferred execution)


@dataclass
class ModuleInfo:
    """Per-module symbol tables feeding resolution."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool
    imports: dict[str, str] = field(default_factory=dict)  # alias -> absolute dotted
    symbols: dict[str, str] = field(default_factory=dict)  # top-level name -> qualname
    globals_: dict[str, GlobalBinding] = field(default_factory=dict)


def module_name_for(path: str, src_prefix: str = "src/") -> str | None:
    """``src/repro/a/b.py`` -> ``repro.a.b`` (``__init__.py`` -> package)."""
    if not path.endswith(".py") or not path.startswith(src_prefix):
        return None
    trimmed = path.removeprefix(src_prefix)
    parts = trimmed[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or not all(part.isidentifier() for part in parts):
        return None
    return ".".join(parts)


def _dotted_text(node: ast.expr) -> str:
    """``a.b.c`` attribute chain as text ("" when not a plain chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _trailing_name(node: ast.expr) -> str:
    """Last identifier of a receiver expression, underscores stripped."""
    if isinstance(node, ast.Attribute):
        return node.attr.lstrip("_")
    if isinstance(node, ast.Name):
        return node.id.lstrip("_")
    if isinstance(node, ast.Call):
        return _trailing_name(node.func)
    return ""


def _is_mutable_value(node: ast.expr | None) -> bool:
    """Syntactically mutable container value (list/dict/set and kin)."""
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.ListComp, ast.Dict, ast.DictComp, ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in MUTABLE_CONSTRUCTORS
    return False


class CallGraph:
    """Resolved project call graph plus the symbol tables behind it."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self.subclasses: dict[str, set[str]] = {}
        self.callers: dict[str, set[str]] = {}

    # ------------------------------------------------------------------ #
    # symbol resolution
    # ------------------------------------------------------------------ #
    def resolve_symbol(self, dotted: str) -> str | None:
        """Follow import/re-export aliases to a definition qualname."""
        seen: set[str] = set()
        current = dotted
        for _ in range(_RESOLVE_FUEL):
            if current in seen:
                return None
            seen.add(current)
            if current in self.functions or current in self.classes:
                return current
            redirected = self._redirect(current)
            if redirected is None:
                return None
            current = redirected
        return None

    def _redirect(self, dotted: str) -> str | None:
        """One alias hop: ``pkg.re_export`` -> its import target."""
        head, _, tail = dotted.rpartition(".")
        module = self.modules.get(head)
        if module is not None and tail:
            if tail in module.imports:
                return module.imports[tail]
            if tail in module.symbols:
                target = module.symbols[tail]
                return target if target != dotted else None
        # Try progressively shorter module prefixes ("repro.a.b.C.m").
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.modules.get(prefix)
            if module is None:
                continue
            rest = parts[cut:]
            if rest[0] in module.imports:
                return ".".join([module.imports[rest[0]], *rest[1:]])
            if rest[0] in module.symbols:
                target = module.symbols[rest[0]]
                return ".".join([target, *rest[1:]])
            return None
        return None

    def resolve_class(self, dotted: str) -> ClassInfo | None:
        resolved = self.resolve_symbol(dotted)
        return self.classes.get(resolved) if resolved else None

    # ------------------------------------------------------------------ #
    # class hierarchy
    # ------------------------------------------------------------------ #
    def mro(self, class_qualname: str) -> Iterator[ClassInfo]:
        """Best-effort linearisation: the class then its bases, depth-first."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            yield info
            stack.extend(info.bases)

    def transitive_subclasses(self, class_qualname: str) -> set[str]:
        result: set[str] = set()
        stack = [class_qualname]
        while stack:
            for sub in self.subclasses.get(stack.pop(), ()):
                if sub not in result:
                    result.add(sub)
                    stack.append(sub)
        return result

    def inherits_from(self, class_qualname: str, base_name: str) -> bool:
        """Does the class derive (transitively) from a class *named* base_name?"""
        return any(info.name == base_name for info in self.mro(class_qualname))

    def resolve_method(self, class_qualname: str, method: str) -> str | None:
        """Static lookup: first definition of *method* along the MRO."""
        for info in self.mro(class_qualname):
            if method in info.methods:
                return info.methods[method]
        return None

    def resolve_method_union(self, class_qualname: str, method: str) -> tuple[str, ...]:
        """Dynamic-dispatch union: static target plus subclass overrides."""
        targets: list[str] = []
        static = self.resolve_method(class_qualname, method)
        if static is not None:
            targets.append(static)
        for sub in sorted(self.transitive_subclasses(class_qualname)):
            info = self.classes.get(sub)
            if info is not None and method in info.methods:
                if info.methods[method] not in targets:
                    targets.append(info.methods[method])
        return tuple(targets)

    def attr_type(self, class_qualname: str, attr: str) -> TypeRef | None:
        """Declared/inferred type of an attribute along the MRO."""
        for info in self.mro(class_qualname):
            if attr in info.attr_types:
                return info.attr_types[attr]
        return None

    def fan_in(self) -> dict[str, int]:
        """Number of distinct callers per function."""
        return {qualname: len(callers) for qualname, callers in self.callers.items()}


# --------------------------------------------------------------------------- #
# build pass
# --------------------------------------------------------------------------- #


def build_call_graph(contexts: list[FileContext], src_prefix: str = "src/") -> CallGraph:
    """Index every module then resolve call sites in a second pass."""
    graph = CallGraph()
    indexed: list[tuple[ModuleInfo, FileContext]] = []
    for ctx in contexts:
        name = module_name_for(ctx.path, src_prefix)
        if name is None:
            continue
        module = ModuleInfo(
            name=name,
            path=ctx.path,
            tree=ctx.tree,
            is_package=ctx.path.endswith("__init__.py"),
        )
        graph.modules[name] = module
        indexed.append((module, ctx))

    for module, _ctx in indexed:
        _index_module(graph, module)
    _resolve_bases(graph)
    for module, _ctx in indexed:
        _infer_attribute_types(graph, module)
    for module, _ctx in indexed:
        _resolve_calls(graph, module)
    return graph


def _index_module(graph: CallGraph, module: ModuleInfo) -> None:
    for node in module.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = _import_base(module, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.imports[bound] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _index_function(graph, module, node, cls=None)
        elif isinstance(node, ast.ClassDef):
            _index_class(graph, module, node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                # `X = Y` aliases re-export; other values become globals.
                aliased = _dotted_text(value) if value is not None else ""
                if aliased:
                    module.symbols.setdefault(target.id, f"{module.name}.{aliased}")
                module.globals_[target.id] = GlobalBinding(
                    module=module.name,
                    name=target.id,
                    path=module.path,
                    line=target.lineno,
                    mutable_value=_is_mutable_value(value),
                )


def _import_base(module: ModuleInfo, node: ast.ImportFrom) -> str | None:
    if node.level == 0:
        return node.module
    package_parts = module.name.split(".")
    if not module.is_package:
        package_parts = package_parts[:-1]
    ascend = node.level - 1
    if ascend > len(package_parts):
        return None
    if ascend:
        package_parts = package_parts[:-ascend]
    if node.module:
        package_parts = [*package_parts, node.module]
    return ".".join(package_parts) if package_parts else None


def _index_function(
    graph: CallGraph,
    module: ModuleInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: ClassInfo | None,
) -> None:
    if cls is None:
        qualname = f"{module.name}.{node.name}"
        module.symbols[node.name] = qualname
    else:
        qualname = f"{cls.qualname}.{node.name}"
        cls.methods[node.name] = qualname
    graph.functions[qualname] = FunctionInfo(
        qualname=qualname,
        module=module.name,
        cls=cls.qualname if cls is not None else None,
        name=node.name,
        path=module.path,
        lineno=node.lineno,
        node=node,
    )


def _index_class(graph: CallGraph, module: ModuleInfo, node: ast.ClassDef) -> None:
    qualname = f"{module.name}.{node.name}"
    info = ClassInfo(
        qualname=qualname,
        module=module.name,
        name=node.name,
        path=module.path,
        lineno=node.lineno,
        bases_raw=[text for base in node.bases if (text := _dotted_text(base))],
    )
    graph.classes[qualname] = info
    module.symbols[node.name] = qualname
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _index_function(graph, module, child, cls=info)


def _resolve_bases(graph: CallGraph) -> None:
    for info in graph.classes.values():
        for raw in info.bases_raw:
            module = graph.modules.get(info.module)
            resolved = _resolve_in_module(graph, module, raw) if module else None
            if resolved is not None and resolved in graph.classes:
                info.bases.append(resolved)
                graph.subclasses.setdefault(resolved, set()).add(info.qualname)


def _resolve_in_module(graph: CallGraph, module: ModuleInfo | None, dotted: str) -> str | None:
    """Resolve a dotted name as seen from inside *module*."""
    if module is None or not dotted:
        return None
    head, _, rest = dotted.partition(".")
    if head in module.imports:
        absolute = module.imports[head] + (f".{rest}" if rest else "")
    elif head in module.symbols:
        absolute = module.symbols[head] + (f".{rest}" if rest else "")
    else:
        absolute = dotted
    return graph.resolve_symbol(absolute)


# --------------------------------------------------------------------------- #
# attribute types (bounded alias tracking)
# --------------------------------------------------------------------------- #


def _infer_attribute_types(graph: CallGraph, module: ModuleInfo) -> None:
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        info = graph.classes[f"{module.name}.{node.name}"]
        # Class-body annotations (dataclass fields) come first and win.
        for child in node.body:
            if isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
                ref = _annotation_type(graph, module, child.annotation)
                if ref is not None:
                    info.attr_types.setdefault(child.target.id, ref)
        # `self.attr = <annotated param>` / `= ClassName(...)` in any method.
        for child in node.body:
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            env = _parameter_env(graph, module, child, info)
            for stmt in ast.walk(child):
                target_attr: ast.Attribute | None = None
                value: ast.expr | None = None
                annotation: ast.expr | None = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    if isinstance(stmt.targets[0], ast.Attribute):
                        target_attr, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Attribute):
                    target_attr, value, annotation = stmt.target, stmt.value, stmt.annotation
                if target_attr is None:
                    continue
                if not (
                    isinstance(target_attr.value, ast.Name) and target_attr.value.id == "self"
                ):
                    continue
                ref: TypeRef | None = None
                if annotation is not None:
                    ref = _annotation_type(graph, module, annotation)
                if ref is None and value is not None:
                    ref = _infer_expr_type(graph, module, value, env, info)
                if ref is not None:
                    info.attr_types.setdefault(target_attr.attr, ref)


def _annotation_type(
    graph: CallGraph, module: ModuleInfo, node: ast.expr | None
) -> TypeRef | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return _annotation_type(graph, module, parsed)
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = _dotted_text(node)
        resolved = _resolve_in_module(graph, module, dotted)
        if resolved is not None and resolved in graph.classes:
            return TypeRef(qualname=resolved)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # `T | None`: prefer whichever side resolves.
        return _annotation_type(graph, module, node.left) or _annotation_type(
            graph, module, node.right
        )
    if isinstance(node, ast.Subscript):
        head = _dotted_text(node.value).rpartition(".")[2]
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        if head in _OPTIONAL_HEADS:
            return _annotation_type(graph, module, elements[0])
        if head in _SEQUENCE_HEADS and elements:
            return TypeRef(elem=_annotation_type(graph, module, elements[0]))
        if head in _MAPPING_HEADS and len(elements) == 2:
            return TypeRef(
                elem=_annotation_type(graph, module, elements[0]),
                value=_annotation_type(graph, module, elements[1]),
            )
        return None
    return None


def _parameter_env(
    graph: CallGraph,
    module: ModuleInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: ClassInfo | None,
) -> dict[str, TypeRef]:
    env: dict[str, TypeRef] = {}
    args = node.args
    all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    for arg in all_args:
        ref = _annotation_type(graph, module, arg.annotation)
        if ref is not None:
            env[arg.arg] = ref
    if cls is not None and all_args:
        first = all_args[0].arg
        if first in {"self", "cls"}:
            env[first] = TypeRef(qualname=cls.qualname)
    return env


def _infer_expr_type(
    graph: CallGraph,
    module: ModuleInfo,
    node: ast.expr,
    env: dict[str, TypeRef],
    cls: ClassInfo | None,
    depth: int = 0,
) -> TypeRef | None:
    if depth > 6:
        return None
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.Attribute):
        base = _infer_expr_type(graph, module, node.value, env, cls, depth + 1)
        if base is not None and base.qualname is not None:
            attr_ref = graph.attr_type(base.qualname, node.attr)
            if attr_ref is not None:
                return attr_ref
            # A @property (or plain method used as value) types as its return.
            method = graph.resolve_method(base.qualname, node.attr)
            if method is not None:
                fn = graph.functions[method]
                owner = graph.modules.get(fn.module)
                if owner is not None:
                    return _annotation_type(graph, owner, fn.node.returns)
        return None
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) or isinstance(func, ast.Attribute):
            # Constructor call?
            dotted = _dotted_text(func)
            if dotted:
                resolved = _resolve_in_module(graph, module, dotted)
                if resolved is not None and resolved in graph.classes:
                    return TypeRef(qualname=resolved)
                if resolved is not None and resolved in graph.functions:
                    fn = graph.functions[resolved]
                    owner = graph.modules.get(fn.module)
                    if owner is not None:
                        return _annotation_type(graph, owner, fn.node.returns)
        if isinstance(func, ast.Attribute):
            base = _infer_expr_type(graph, module, func.value, env, cls, depth + 1)
            if base is not None and base.qualname is not None:
                method = graph.resolve_method(base.qualname, func.attr)
                if method is not None:
                    fn = graph.functions[method]
                    owner = graph.modules.get(fn.module)
                    if owner is not None:
                        return _annotation_type(graph, owner, fn.node.returns)
            if base is not None and func.attr in {"get", "pop", "setdefault"}:
                return base.value
        return None
    if isinstance(node, ast.Subscript):
        base = _infer_expr_type(graph, module, node.value, env, cls, depth + 1)
        if base is not None:
            return base.value or base.elem
        return None
    return None


# --------------------------------------------------------------------------- #
# call resolution
# --------------------------------------------------------------------------- #


def _resolve_calls(graph: CallGraph, module: ModuleInfo) -> None:
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _resolve_function_calls(graph, module, node, cls=None)
        elif isinstance(node, ast.ClassDef):
            info = graph.classes[f"{module.name}.{node.name}"]
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _resolve_function_calls(graph, module, child, cls=info)


def _resolve_function_calls(
    graph: CallGraph,
    module: ModuleInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: ClassInfo | None,
) -> None:
    caller = (
        f"{cls.qualname}.{node.name}" if cls is not None else f"{module.name}.{node.name}"
    )
    env = _parameter_env(graph, module, node, cls)
    sites: list[CallSite] = []
    _scan_statements(graph, module, cls, caller, node.body, env, sites, nested=False)
    graph.calls[caller] = sites
    for site in sites:
        for target in site.targets:
            graph.callers.setdefault(target, set()).add(caller)


def _scan_statements(
    graph: CallGraph,
    module: ModuleInfo,
    cls: ClassInfo | None,
    caller: str,
    stmts: list[ast.stmt],
    env: dict[str, TypeRef],
    sites: list[CallSite],
    nested: bool,
) -> None:
    """Walk statements in order, updating the local type environment."""
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs: calls attributed to the enclosing function but
            # flagged `in_nested` (deferred execution).
            inner_env = dict(env)
            inner_env.update(_parameter_env(graph, module, stmt, None))
            _scan_statements(
                graph, module, cls, caller, stmt.body, inner_env, sites, nested=True
            )
            continue
        for expr in _expressions_of(stmt):
            _scan_expression(graph, module, cls, caller, expr, env, sites, nested)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                ref = _infer_expr_type(graph, module, stmt.value, env, cls)
                if ref is not None:
                    env[target.id] = ref
                else:
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ref = _annotation_type(graph, module, stmt.annotation)
            if ref is not None:
                env[stmt.target.id] = ref
        elif isinstance(stmt, ast.For) and isinstance(stmt.target, ast.Name):
            iter_ref = _infer_expr_type(graph, module, stmt.iter, env, cls)
            if iter_ref is not None and iter_ref.elem is not None:
                env[stmt.target.id] = iter_ref.elem
            else:
                env.pop(stmt.target.id, None)
        # Recurse into compound statement bodies.
        for body in _bodies_of(stmt):
            _scan_statements(graph, module, cls, caller, body, env, sites, nested)


def _bodies_of(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(stmt, "handlers", []):
        yield handler.body


def _expressions_of(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Expressions evaluated directly by *stmt* (not nested statements)."""
    for field_name, value in ast.iter_fields(stmt):
        if field_name in {"body", "orelse", "finalbody", "handlers"}:
            continue
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item


def _scan_expression(
    graph: CallGraph,
    module: ModuleInfo,
    cls: ClassInfo | None,
    caller: str,
    expr: ast.expr,
    env: dict[str, TypeRef],
    sites: list[CallSite],
    nested: bool,
) -> None:
    for node in ast.walk(expr):
        if isinstance(node, ast.Lambda):
            continue  # body walked anyway; calls inside share `nested` flag
        if not isinstance(node, ast.Call):
            continue
        site = _resolve_call(graph, module, cls, caller, node, env, nested)
        if site is not None:
            sites.append(site)


def _resolve_call(
    graph: CallGraph,
    module: ModuleInfo,
    cls: ClassInfo | None,
    caller: str,
    call: ast.Call,
    env: dict[str, TypeRef],
    nested: bool,
) -> CallSite | None:
    func = call.func
    targets: tuple[str, ...] = ()
    receiver_hint = ""
    method = ""
    if isinstance(func, ast.Name):
        method = func.id
        resolved = _resolve_in_module(graph, module, func.id)
        if resolved is not None:
            if resolved in graph.functions:
                targets = (resolved,)
            elif resolved in graph.classes:
                init = graph.resolve_method(resolved, "__init__")
                targets = (init,) if init is not None else ()
                method = "__init__"
                receiver_hint = graph.classes[resolved].name
    elif isinstance(func, ast.Attribute):
        method = func.attr
        receiver = func.value
        receiver_hint = _trailing_name(receiver)
        dotted = _dotted_text(func)
        resolved = _resolve_in_module(graph, module, dotted) if dotted else None
        if resolved is not None and resolved in graph.functions:
            targets = (resolved,)
        elif resolved is not None and resolved in graph.classes:
            init = graph.resolve_method(resolved, "__init__")
            targets = (init,) if init is not None else ()
            method = "__init__"
        else:
            base = _infer_expr_type(graph, module, receiver, env, cls)
            if base is not None and base.qualname is not None:
                targets = graph.resolve_method_union(base.qualname, method)
    else:
        return None
    return CallSite(
        caller=caller,
        line=call.lineno,
        col=call.col_offset,
        targets=targets,
        receiver_hint=receiver_hint,
        method=method,
        in_nested=nested,
    )
