"""Rule catalog for repro-lint.

Every rule is a subclass of :class:`Rule` with a unique code, a docstring
that *is* the user-facing documentation (the first line becomes the summary
shown by ``repro-lint --list-rules``), and an ``autofixable`` flag.  Rules
receive a parsed :class:`FileContext` and yield :class:`Violation` records;
they never mutate files themselves -- autofixes are declarative
:class:`Fix` edits applied by :mod:`repro.analysis.fixes`.

Detection is deliberately *syntactic*: the checker runs on every commit and
must stay dependency-free and fast, so rules pattern-match the AST plus a
small per-scope symbol table instead of doing type inference.  False
positives are expected to be rare and are handled by per-line waivers with
a written reason, never by weakening a rule.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass, field

__all__ = [
    "RULES",
    "FileContext",
    "Fix",
    "Rule",
    "Violation",
    "rule_catalog",
]


@dataclass(frozen=True)
class Fix:
    """A declarative single-span text edit plus any imports it requires."""

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str
    imports: tuple[str, ...] = ()


@dataclass(frozen=True)
class Violation:
    """One rule hit at a specific source location."""

    code: str
    path: str
    line: int
    column: int
    message: str
    fix: Fix | None = None

    def render(self) -> str:
        suffix = " [fixable]" if self.fix is not None else ""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}{suffix}"


@dataclass
class FileContext:
    """Parsed view of one file handed to every rule."""

    path: str  # repo-relative POSIX path
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def segment(self, node: ast.AST) -> str:
        return ast.get_source_segment(self.source, node) or ""


def _under(path: str, prefix: str) -> bool:
    return path == prefix.rstrip("/") or path.startswith(prefix)


class Rule:
    """Base class: one lint rule with a code, docstring and autofix flag."""

    code: str = ""
    autofixable: bool = False

    @classmethod
    def summary(cls) -> str:
        doc = cls.__doc__ or ""
        return doc.strip().splitlines()[0]

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError
        yield  # pragma: no cover


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of an expression (``a.b.c`` -> "a.b.c")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class DET001WallClock(Rule):
    """No wall-clock reads or sleeps inside ``src/repro/``.

    ``time.time()``, ``time.sleep()``, ``time.monotonic()`` and
    ``datetime.now()`` make simulation and resilience behaviour depend on
    the host clock: retries must use the *virtual* never-slept waits of
    ``resilience.retry`` and event timestamps must come from the batch
    clock.  ``time.perf_counter()`` stays legal -- it only ever measures
    durations for reporting (``wall_clock_seconds``) and never feeds
    simulation logic.  Wall-clock timestamps for run reports go through the
    allowlisted shim ``repro.experiments.timing``; tests and benchmarks are
    outside the rule's scope entirely.
    """

    code = "DET001"
    autofixable = False

    BANNED_TIME = frozenset(
        {"time", "time_ns", "sleep", "monotonic", "monotonic_ns", "localtime", "ctime"}
    )
    BANNED_DATETIME = frozenset({"now", "utcnow", "today"})
    ALLOWLIST = frozenset({"src/repro/experiments/timing.py"})

    def applies_to(self, path: str) -> bool:
        return _under(path, "src/repro/") and path not in self.ALLOWLIST

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # Names bound by `from time import ...` / `from datetime import ...`.
        from_time: set[str] = set()
        from_datetime: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    from_time.update(a.asname or a.name for a in node.names)
                elif node.module == "datetime":
                    from_datetime.update(a.asname or a.name for a in node.names)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            banned: str | None = None
            if isinstance(func, ast.Attribute):
                dotted = _dotted(func)
                head, _, attr = dotted.rpartition(".")
                if head == "time" and attr in self.BANNED_TIME:
                    banned = dotted
                elif attr in self.BANNED_DATETIME and (
                    head in {"datetime", "date", "datetime.datetime", "datetime.date"}
                    or head in from_datetime
                ):
                    banned = dotted
            elif isinstance(func, ast.Name):
                if func.id in from_time and func.id in self.BANNED_TIME:
                    banned = f"time.{func.id}"
                elif func.id in from_datetime:
                    # `from datetime import datetime` then `datetime(...)` is a
                    # constructor, not a clock read; only flag clock factories.
                    pass
            if banned is not None:
                yield Violation(
                    code=self.code,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=(
                        f"wall-clock call `{banned}` in simulation code; use the "
                        "virtual clock / retry waits, or repro.experiments.timing "
                        "for report timestamps"
                    ),
                )


class DET002ModuleRandom(Rule):
    """No module-level ``random.*`` calls; randomness must be stream-seeded.

    Calling ``random.random()``, ``random.shuffle()`` (or any function of
    the module-global generator, including ``random.seed``) couples the
    result to interpreter-global state that any import or library call can
    perturb.  Every draw must come from an explicitly seeded
    ``random.Random(seed)`` instance -- the resilience layer's
    string-seeded per-purpose streams (``FaultInjector``) are the model.
    ``random.Random`` / ``random.SystemRandom`` *construction* is allowed;
    calling through the module generator is not, anywhere in the repo.
    """

    code = "DET002"
    autofixable = False

    ALLOWED_ATTRS = frozenset({"Random", "SystemRandom"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        from_random: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 and node.module == "random":
                from_random.update(
                    a.asname or a.name for a in node.names if a.name not in self.ALLOWED_ATTRS
                )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name: str | None = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr not in self.ALLOWED_ATTRS
            ):
                name = f"random.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in from_random:
                name = f"random.{func.id}"
            if name is not None:
                yield Violation(
                    code=self.code,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=(
                        f"module-level `{name}()` uses the interpreter-global RNG; "
                        "draw from a seeded random.Random stream instead"
                    ),
                )


#: Builtins that consume an iterable without exposing its order; a generator
#: expression that is the sole argument of one of these is exempt from DET003.
_ORDER_INSENSITIVE = frozenset({"sorted", "min", "max", "sum", "any", "all", "set", "frozenset"})
#: Set methods that return a new set.
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class DET003SetIteration(Rule):
    """No order-sensitive iteration over bare ``set``s.

    Set iteration order depends on hashes and insertion history; when the
    iteration order can reach results (assignment lists, event ordering,
    metrics accumulation in floating point) two equal runs may diverge.
    Iterate ``sorted(the_set)`` or keep an ordered container (dict keys
    preserve insertion order).  Order-insensitive consumers
    (``len``/``sum``/``min``/``max``/``any``/``all``/``set``/``frozenset``)
    are exempt.  Autofix wraps the iterable in ``sorted(...)``.
    """

    code = "DET003"
    autofixable = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        exempt: set[int] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE
                and len(node.args) == 1
                and isinstance(node.args[0], ast.GeneratorExp)
            ):
                exempt.add(id(node.args[0]))
        for scope in _scopes(ctx.tree):
            bindings = _set_bindings(scope)
            for node in _scope_walk(scope):
                for iter_expr in self._ordered_iterables(node, exempt):
                    if self._is_set_expr(iter_expr, bindings):
                        yield self._violation(ctx, iter_expr)

    def _ordered_iterables(self, node: ast.AST, exempt: set[int]) -> Iterator[ast.expr]:
        # `sorted(s)` / `min(s)` / `len(s)`-style consumers are naturally
        # exempt: only the constructs below expose iteration order.  A
        # SetComp's own output is unordered, so its sources are exempt too,
        # as is a generator expression fed straight into an
        # order-insensitive builtin (`all(f(x) for x in s)`).
        if isinstance(node, ast.For):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            if id(node) not in exempt:
                for comp in node.generators:
                    yield comp.iter
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"list", "tuple", "enumerate"} and node.args:
                yield node.args[0]

    def _is_set_expr(self, node: ast.expr, bindings: _SetBindings) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return _name_is_set(bindings, node.id, node.lineno)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_RETURNING_METHODS
                and self._is_set_expr(func.value, bindings)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._is_set_expr(node.left, bindings) or self._is_set_expr(
                node.right, bindings
            )
        return False

    def _violation(self, ctx: FileContext, iter_expr: ast.expr) -> Violation:
        fix: Fix | None = None
        segment = ctx.segment(iter_expr)
        if segment and iter_expr.end_lineno is not None and iter_expr.end_col_offset is not None:
            fix = Fix(
                line=iter_expr.lineno,
                col=iter_expr.col_offset,
                end_line=iter_expr.end_lineno,
                end_col=iter_expr.end_col_offset,
                replacement=f"sorted({segment})",
            )
        return Violation(
            code=self.code,
            path=ctx.path,
            line=iter_expr.lineno,
            column=iter_expr.col_offset,
            message=(
                "iteration over a bare set leaks hash order into results; "
                "wrap in sorted(...) or use an ordered container"
            ),
            fix=fix,
        )


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield the module plus every function/method body as separate scopes."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


#: Per-name, line-ordered binding flags: ``True`` = bound to a set here.
_SetBindings = dict[str, list[tuple[int, bool]]]

#: Calls whose result is definitely not a ``set`` (rebinding one of these
#: over a set-typed name de-flags it from that line on).
_NON_SET_CALLS = frozenset({"sorted", "list", "tuple", "dict", "frozenset", "str", "len"})


def _set_bindings(scope: ast.AST) -> _SetBindings:
    """Line-ordered set-typedness of every name bound in *scope*.

    Tracks each binding separately so a name rebound from ``set`` to
    ``sorted(...)``/``list(...)`` stops counting as a set from the rebind
    onward (and vice versa).  ``frozenset`` bindings deliberately do NOT
    mark the name: in this codebase frozensets are hashed-in constants used
    for membership tests, and flagging every later ``in`` scan of them
    drowned the signal (iterating one directly is still caught by the
    expression check).  This is a heuristic symbol table, not type
    inference -- good enough because the rule exists to force explicit
    ordering at the few real sites.
    """
    bindings: _SetBindings = {}

    def record(name: str, line: int, is_set: bool) -> None:
        bindings.setdefault(name, []).append((line, is_set))

    def classify(target: ast.expr, value: ast.expr | None, annotation: ast.expr | None) -> None:
        if not isinstance(target, ast.Name):
            return
        if annotation is not None:
            ann = annotation
            if isinstance(ann, ast.Subscript):
                ann = ann.value
            if isinstance(ann, ast.Name):
                if ann.id == "set":
                    record(target.id, target.lineno, True)
                    return
                if ann.id in {"frozenset", "list", "tuple", "dict", "str"}:
                    record(target.id, target.lineno, False)
                    return
        if value is None:
            return
        if isinstance(value, (ast.Set, ast.SetComp)):
            record(target.id, target.lineno, True)
        elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            # Unknown calls count as non-set: a wrong "is a set" guess is a
            # false positive, a wrong "is not" only loses a hint.
            record(target.id, target.lineno, value.func.id == "set")
        elif isinstance(
            value,
            (ast.List, ast.ListComp, ast.Dict, ast.DictComp, ast.Tuple, ast.Constant, ast.Call),
        ):
            record(target.id, target.lineno, False)

    for node in _scope_walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                classify(target, node.value, None)
        elif isinstance(node, ast.AnnAssign):
            classify(node.target, node.value, node.annotation)
        elif isinstance(node, ast.AugAssign):
            # `s |= other` keeps s a set; `flags |= 0x4` keeps it an int.
            if isinstance(node.op, _SET_OPS) and isinstance(node.target, ast.Name):
                is_set = not isinstance(node.value, ast.Constant)
                record(node.target.id, node.target.lineno, is_set)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            # Loop targets rebind to element values, never to the set itself.
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    record(target.id, target.lineno, False)
    for entries in bindings.values():
        entries.sort()
    return bindings


def _name_is_set(bindings: _SetBindings, name: str, line: int) -> bool:
    """Was *name* last bound to a set strictly before *line*?

    Falls back to the first binding when every binding is at/after the use
    line (loops bind textually below a use on the back edge).
    """
    entries = bindings.get(name)
    if not entries:
        return False
    prior = [flag for bind_line, flag in entries if bind_line < line]
    if prior:
        return prior[-1]
    return entries[0][1]


class INV001CSRMutation(Rule):
    """CSR routing arrays are immutable outside ``network/routing/``.

    ``CSRGraph.indptr`` / ``indices`` / ``weights`` back every backend's
    inner loop and are cache-keyed by ``RoadNetwork.mutation_count``; a
    mutation that bypasses the routing layer leaves preprocessed structures
    (CH shortcuts, hub labels, snapshots) silently inconsistent with the
    graph they claim to describe.  All writes go through
    ``network/routing/`` (compilation, repair, refresh) which bumps the
    version stamps.  Flags attribute assignment, element assignment,
    deletion and in-place mutating method calls on those attributes.
    """

    code = "INV001"
    autofixable = False

    CSR_ATTRS = frozenset({"indptr", "indices", "weights"})
    MUTATORS = frozenset(
        {"append", "extend", "insert", "pop", "remove", "clear", "sort", "reverse"}
    )

    def applies_to(self, path: str) -> bool:
        return not _under(path, "src/repro/network/routing/")

    def _csr_attr(self, node: ast.expr) -> str | None:
        """Return the attribute name if *node* reaches a CSR array store."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in self.CSR_ATTRS:
            return node.attr
        return None

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            targets: list[tuple[ast.expr, str]] = []
            if isinstance(node, ast.Assign):
                targets = [(t, "assignment") for t in node.targets]
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [(node.target, "assignment")]
            elif isinstance(node, ast.Delete):
                targets = [(t, "deletion") for t in node.targets]
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.MUTATORS
            ):
                attr = self._csr_attr(node.func.value)
                if attr is not None:
                    yield Violation(
                        code=self.code,
                        path=ctx.path,
                        line=node.lineno,
                        column=node.col_offset,
                        message=(
                            f"in-place `{node.func.attr}` on CSR array `.{attr}` outside "
                            "network/routing/; route mutations through the routing layer"
                        ),
                    )
                continue
            for target, kind in targets:
                attr = self._csr_attr(target)
                if attr is not None:
                    yield Violation(
                        code=self.code,
                        path=ctx.path,
                        line=target.lineno,
                        column=target.col_offset,
                        message=(
                            f"{kind} to CSR array `.{attr}` outside network/routing/; "
                            "route mutations through the routing layer"
                        ),
                    )


_COSTY = re.compile(
    r"(?:^|_)(cost|costs|weight|weights|dist|distance|distances|loss|fare|"
    r"price|penalty|detour|eta)(?:$|_)",
    re.IGNORECASE,
)
_INF_NAMES = re.compile(r"(?:^|_)INF(?:$|_)|infinity", re.IGNORECASE)


class INV002FloatCostEquality(Rule):
    """No ``==`` / ``!=`` on float cost or weight expressions.

    Costs are sums of float edge weights; two mathematically equal routes
    can differ in the last ulp depending on summation order, backend and
    repair history -- exact comparison makes acceptance decisions
    backend-dependent.  Use ``repro.numeric.costs_equal`` /
    ``costs_differ`` (relative+absolute tolerance) or ``math.isclose``.
    Comparisons against infinity are exempt (IEEE infinity is exact and is
    the idiomatic unreachable sentinel).  Autofix rewrites the comparison
    to ``costs_equal(a, b)`` / ``not costs_equal(a, b)`` and inserts the
    import.
    """

    code = "INV002"
    autofixable = True

    def applies_to(self, path: str) -> bool:
        return _under(path, "src/repro/")

    def _costy(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return bool(_COSTY.search(node.id)) and not _INF_NAMES.search(node.id)
        if isinstance(node, ast.Attribute):
            return bool(_COSTY.search(node.attr)) and not _INF_NAMES.search(node.attr)
        if isinstance(node, ast.Subscript):
            return self._costy(node.value)
        if isinstance(node, ast.Call):
            return self._costy(node.func)
        if isinstance(node, ast.BinOp):
            return self._costy(node.left) or self._costy(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._costy(node.operand)
        return False

    def _infinite(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "float" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    return "inf" in arg.value.lower()
        if isinstance(node, ast.Attribute):
            return node.attr == "inf" or bool(_INF_NAMES.search(node.attr))
        if isinstance(node, ast.Name):
            return bool(_INF_NAMES.search(node.id))
        if isinstance(node, ast.UnaryOp):
            return self._infinite(node.operand)
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if not (self._costy(left) or self._costy(right)):
                    continue
                if self._infinite(left) or self._infinite(right):
                    continue
                yield self._violation(ctx, node, op, left, right)

    def _violation(
        self,
        ctx: FileContext,
        compare: ast.Compare,
        op: ast.cmpop,
        left: ast.expr,
        right: ast.expr,
    ) -> Violation:
        fix: Fix | None = None
        if len(compare.ops) == 1 and compare.end_lineno is not None:
            left_seg = ctx.segment(left)
            right_seg = ctx.segment(right)
            if left_seg and right_seg:
                call = f"costs_equal({left_seg}, {right_seg})"
                if isinstance(op, ast.NotEq):
                    call = f"not {call}"
                fix = Fix(
                    line=compare.lineno,
                    col=compare.col_offset,
                    end_line=compare.end_lineno,
                    end_col=compare.end_col_offset or 0,
                    replacement=call,
                    imports=("from repro.numeric import costs_equal",),
                )
        symbol = "==" if isinstance(op, ast.Eq) else "!="
        return Violation(
            code=self.code,
            path=ctx.path,
            line=compare.lineno,
            column=compare.col_offset,
            message=(
                f"exact float `{symbol}` on a cost/weight expression; use "
                "repro.numeric.costs_equal/costs_differ (or math.isclose)"
            ),
            fix=fix,
        )


class STY001BroadExcept(Rule):
    """No bare ``except:`` / broad ``except Exception`` without re-raise.

    A handler that swallows ``Exception`` hides injected faults, probe
    failures and genuine bugs alike, defeating the typed-exception ladder
    of the resilience layer (``ReproError`` subclasses chained with
    ``raise ... from``).  Catch the narrowest :class:`repro.exceptions`
    type that models the failure, or re-raise (possibly wrapped in a typed
    error) inside the handler.  Broad handlers that *do* contain a
    ``raise`` are accepted.
    """

    code = "STY001"
    autofixable = False

    BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Name):
            return type_node.id in self.BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(el) for el in type_node.elts)
        return False

    def _reraises(self, handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    break
                if isinstance(node, ast.Raise):
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if node.type is not None and self._reraises(node):
                continue
            what = "bare `except:`" if node.type is None else "broad `except Exception`"
            yield Violation(
                code=self.code,
                path=ctx.path,
                line=node.lineno,
                column=node.col_offset,
                message=(
                    f"{what} swallows typed failures; catch a repro.exceptions "
                    "type or re-raise a typed wrap inside the handler"
                ),
            )


class WVR001WaiverReason(Rule):
    """Every ``# repro-lint: disable=...`` waiver must carry a written reason.

    A waiver is a reviewed, documented exception to a rule -- the reason
    text after the code(s) is what the reviewer signs off on.  Waivers
    without a reason fail the build; this rule is emitted by the engine's
    waiver parser (it has no AST pattern of its own) and cannot itself be
    waived.
    """

    code = "WVR001"
    autofixable = False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())


#: Ordered rule catalog; the engine instantiates each once per run.
RULES: tuple[type[Rule], ...] = (
    DET001WallClock,
    DET002ModuleRandom,
    DET003SetIteration,
    INV001CSRMutation,
    INV002FloatCostEquality,
    STY001BroadExcept,
    WVR001WaiverReason,
)


def rule_catalog() -> list[tuple[str, bool, str]]:
    """(code, autofixable, summary) for every registered rule, sorted by code.

    Merges the per-file rules above with the whole-program semantic rules
    (imported lazily: :mod:`repro.analysis.semantic_rules` depends on this
    module for :class:`FileContext`/:class:`Violation`).
    """
    from .semantic_rules import SEMANTIC_RULES

    entries = [(rule.code, rule.autofixable, rule.summary()) for rule in RULES]
    entries += [(rule.code, rule.autofixable, rule.summary()) for rule in SEMANTIC_RULES]
    return sorted(entries)
