"""Configuration objects for simulations and experiments.

The parameter names follow Table II / Table III of the paper:

* ``gamma`` -- deadline parameter: the deadline of request *r* is
  ``release_time + gamma * cost(source, destination)``.
* ``penalty_coefficient`` (``pr``) -- multiplier applied to the direct travel
  cost of every unserved request inside the unified cost (Equation 3).
* ``batch_period`` (``Delta``) -- length of a batch in seconds.
* ``capacity`` (``c``) -- number of seats of a vehicle.
* ``max_wait`` -- maximum time a rider is willing to wait for pick-up
  (the paper uses 5 minutes, following Santi et al.).
* ``angle_threshold`` (``delta``) -- angle pruning threshold in radians used
  by the shareability-graph builder; ``None`` disables the pruning rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from .exceptions import ConfigurationError

#: Default maximum waiting time for a pick-up, in seconds (5 minutes).
DEFAULT_MAX_WAIT = 300.0

#: Routing backends accepted by ``SimulationConfig.routing_backend`` (must
#: match :data:`repro.network.routing.BACKEND_NAMES`; duplicated here so the
#: config layer stays import-free of the network package).
ROUTING_BACKENDS = ("dijkstra", "alt", "ch", "hub_label")

#: Default angle pruning threshold, in radians (pi / 2 as used in the paper).
DEFAULT_ANGLE_THRESHOLD = math.pi / 2.0


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters controlling one simulated day of batched dispatching.

    The defaults reproduce the bold entries of Table III in the paper,
    scaled to a laptop-sized synthetic workload.  All durations are in
    seconds and all travel costs are in seconds of travel time.
    """

    #: Deadline parameter gamma (> 1): deadline = release + gamma * direct cost.
    gamma: float = 1.5
    #: Penalty coefficient pr for unserved requests in the unified cost.
    penalty_coefficient: float = 10.0
    #: Batch period Delta in seconds.
    batch_period: float = 3.0
    #: Vehicle capacity c (seats).  Per-vehicle overrides are possible.
    capacity: int = 3
    #: Weight alpha of the travel-cost term in the unified cost (paper fixes 1).
    alpha: float = 1.0
    #: Maximum rider waiting time before pick-up, in seconds.
    max_wait: float = DEFAULT_MAX_WAIT
    #: Angle pruning threshold delta in radians; ``None`` disables pruning.
    angle_threshold: float | None = DEFAULT_ANGLE_THRESHOLD
    #: Side length (number of cells per axis) of the grid index.
    grid_cells: int = 32
    #: Random seed used by stochastic components (tie-breaking, baselines).
    seed: int = 42
    #: Hard cap on group size enumerated by batch dispatchers (defaults to
    #: the vehicle capacity when ``None``).
    max_group_size: int | None = None
    #: Keep unassigned requests in the working pool until they expire.
    retain_unassigned: bool = True
    #: Routing backend answering ``cost(u, v)`` queries: ``"dijkstra"``
    #: (per-query CSR search), ``"alt"`` (landmark-directed search),
    #: ``"ch"`` (contraction hierarchies) or ``"hub_label"`` (hub labels
    #: extracted from the hierarchy -- the paper's oracle).
    routing_backend: str = "dijkstra"

    def __post_init__(self) -> None:
        if self.gamma <= 1.0:
            raise ConfigurationError(
                f"gamma must be > 1 (got {self.gamma}); a deadline equal to the "
                "direct travel time leaves no room for detours"
            )
        if self.penalty_coefficient < 0:
            raise ConfigurationError("penalty_coefficient must be non-negative")
        if self.batch_period <= 0:
            raise ConfigurationError("batch_period must be positive")
        if self.capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        if self.alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        if self.max_wait < 0:
            raise ConfigurationError("max_wait must be non-negative")
        if self.angle_threshold is not None and not 0 < self.angle_threshold <= math.pi:
            raise ConfigurationError(
                "angle_threshold must be in (0, pi] radians or None to disable"
            )
        if self.grid_cells < 1:
            raise ConfigurationError("grid_cells must be at least 1")
        if self.max_group_size is not None and self.max_group_size < 1:
            raise ConfigurationError("max_group_size must be at least 1 or None")
        if self.routing_backend not in ROUTING_BACKENDS:
            raise ConfigurationError(
                f"routing_backend must be one of {ROUTING_BACKENDS} "
                f"(got {self.routing_backend!r})"
            )

    @property
    def group_size_limit(self) -> int:
        """Largest request group a batch dispatcher will enumerate."""
        if self.max_group_size is None:
            return self.capacity
        return min(self.max_group_size, self.capacity)

    def with_overrides(self, **overrides: Any) -> "SimulationConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a synthetic workload used to stand in for the real traces.

    The three presets (``chengdu_like``, ``nyc_like``, ``cainiao_like``)
    differ only in these knobs; see :mod:`repro.workloads.presets`.
    """

    #: Identifier used in reports ("CHD", "NYC", "Cainiao", ...).
    name: str = "synthetic"
    #: Number of requests to generate.
    num_requests: int = 2000
    #: Number of vehicles.
    num_vehicles: int = 60
    #: Length of the request-arrival horizon in seconds.  Ignored when
    #: ``arrival_rate`` is positive (the horizon is then derived from it).
    horizon: float = 1800.0
    #: Mean request arrival rate in requests per second.  When positive the
    #: horizon becomes ``num_requests / arrival_rate`` so that scaling the
    #: request count up or down preserves the per-batch request density --
    #: the property batch-mode dispatchers are sensitive to.
    arrival_rate: float = 0.0
    #: Mean of ln(trip travel time) for the log-normal trip-length model.
    trip_log_mean: float = math.log(420.0)
    #: Standard deviation of ln(trip travel time).
    trip_log_sigma: float = 0.55
    #: Number of demand hotspots (origin/destination clusters).
    num_hotspots: int = 6
    #: Fraction of requests whose origin is drawn from a hotspot.
    hotspot_fraction: float = 0.7
    #: Mean number of riders per request (1 rider with prob ~ 1/mean tail).
    mean_riders: float = 1.3
    #: Random seed for workload generation.
    seed: int = 7
    #: Standard deviation sigma of the vehicle-capacity distribution
    #: (paper Appendix C); 0 means every vehicle has the default capacity.
    capacity_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.num_requests < 0:
            raise ConfigurationError("num_requests must be non-negative")
        if self.num_vehicles < 0:
            raise ConfigurationError("num_vehicles must be non-negative")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.arrival_rate < 0:
            raise ConfigurationError("arrival_rate must be non-negative")
        if self.trip_log_sigma < 0:
            raise ConfigurationError("trip_log_sigma must be non-negative")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ConfigurationError("hotspot_fraction must be in [0, 1]")
        if self.mean_riders < 1.0:
            raise ConfigurationError("mean_riders must be at least 1")
        if self.capacity_sigma < 0:
            raise ConfigurationError("capacity_sigma must be non-negative")

    @property
    def effective_horizon(self) -> float:
        """Arrival horizon actually used by the request generator."""
        if self.arrival_rate > 0:
            return max(self.num_requests / self.arrival_rate, 1.0)
        return self.horizon

    def with_overrides(self, **overrides: Any) -> "WorkloadConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)


@dataclass
class ExperimentConfig:
    """One experiment = a workload, a simulation config and algorithm names."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    algorithms: tuple[str, ...] = (
        "pruneGDP",
        "TicketAssign+",
        "DARM+DPRS",
        "RTV",
        "GAS",
        "SARD",
    )
    #: Human-readable label for reports ("Figure 8 (CHD)", ...).
    label: str = "experiment"
