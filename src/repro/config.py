"""Configuration objects for simulations and experiments.

The parameter names follow Table II / Table III of the paper:

* ``gamma`` -- deadline parameter: the deadline of request *r* is
  ``release_time + gamma * cost(source, destination)``.
* ``penalty_coefficient`` (``pr``) -- multiplier applied to the direct travel
  cost of every unserved request inside the unified cost (Equation 3).
* ``batch_period`` (``Delta``) -- length of a batch in seconds.
* ``capacity`` (``c``) -- number of seats of a vehicle.
* ``max_wait`` -- maximum time a rider is willing to wait for pick-up
  (the paper uses 5 minutes, following Santi et al.).
* ``angle_threshold`` (``delta``) -- angle pruning threshold in radians used
  by the shareability-graph builder; ``None`` disables the pruning rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from .exceptions import ConfigurationError

#: Default maximum waiting time for a pick-up, in seconds (5 minutes).
DEFAULT_MAX_WAIT = 300.0

#: Routing backends accepted by ``SimulationConfig.routing_backend`` (must
#: match :data:`repro.network.routing.BACKEND_NAMES`; duplicated here so the
#: config layer stays import-free of the network package).
ROUTING_BACKENDS = ("dijkstra", "alt", "ch", "hub_label")

#: Default angle pruning threshold, in radians (pi / 2 as used in the paper).
DEFAULT_ANGLE_THRESHOLD = math.pi / 2.0

#: Oracle refresh policies accepted by ``ScenarioConfig.refresh_policy``
#: (must match :data:`repro.scenarios.refresh.POLICY_NAMES`; duplicated here
#: so the config layer stays import-free of the scenario package).
REFRESH_POLICIES = ("eager", "deferred", "coalesce", "repair")

#: Admission policies accepted by ``ServiceConfig.admission_policy``:
#: ``reject`` refuses new requests while the ingestion queue is full
#: (backpressure propagates to the submitter), ``drop_oldest`` sheds the
#: longest-queued request instead (freshness wins under overload).
ADMISSION_POLICIES = ("reject", "drop_oldest")


def _require_finite(name: str, value: float) -> None:
    """Reject NaN and infinite values with a clear ConfigError.

    Comparison-based range checks silently accept NaN (every comparison with
    NaN is false), so every float knob is funnelled through this guard before
    its range is checked -- a NaN gamma or batch period would otherwise only
    blow up batches deep into a simulation.
    """
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be a finite number (got {value!r})")


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters controlling one simulated day of batched dispatching.

    The defaults reproduce the bold entries of Table III in the paper,
    scaled to a laptop-sized synthetic workload.  All durations are in
    seconds and all travel costs are in seconds of travel time.
    """

    #: Deadline parameter gamma (> 1): deadline = release + gamma * direct cost.
    gamma: float = 1.5
    #: Penalty coefficient pr for unserved requests in the unified cost.
    penalty_coefficient: float = 10.0
    #: Batch period Delta in seconds.
    batch_period: float = 3.0
    #: Vehicle capacity c (seats).  Per-vehicle overrides are possible.
    capacity: int = 3
    #: Weight alpha of the travel-cost term in the unified cost (paper fixes 1).
    alpha: float = 1.0
    #: Maximum rider waiting time before pick-up, in seconds.
    max_wait: float = DEFAULT_MAX_WAIT
    #: Angle pruning threshold delta in radians; ``None`` disables pruning.
    angle_threshold: float | None = DEFAULT_ANGLE_THRESHOLD
    #: Side length (number of cells per axis) of the grid index.
    grid_cells: int = 32
    #: Random seed used by stochastic components (tie-breaking, baselines).
    seed: int = 42
    #: Hard cap on group size enumerated by batch dispatchers (defaults to
    #: the vehicle capacity when ``None``).
    max_group_size: int | None = None
    #: Keep unassigned requests in the working pool until they expire.
    retain_unassigned: bool = True
    #: Routing backend answering ``cost(u, v)`` queries: ``"dijkstra"``
    #: (per-query CSR search), ``"alt"`` (landmark-directed search),
    #: ``"ch"`` (contraction hierarchies) or ``"hub_label"`` (hub labels
    #: extracted from the hierarchy -- the paper's oracle).
    routing_backend: str = "dijkstra"

    def __post_init__(self) -> None:
        for name in ("gamma", "penalty_coefficient", "batch_period", "alpha", "max_wait"):
            _require_finite(name, getattr(self, name))
        if self.angle_threshold is not None:
            _require_finite("angle_threshold", self.angle_threshold)
        if self.gamma <= 1.0:
            raise ConfigurationError(
                f"gamma must be > 1 (got {self.gamma}); a deadline equal to the "
                "direct travel time leaves no room for detours"
            )
        if self.penalty_coefficient < 0:
            raise ConfigurationError("penalty_coefficient must be non-negative")
        if self.batch_period <= 0:
            raise ConfigurationError("batch_period must be positive")
        if self.capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        if self.alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        if self.max_wait < 0:
            raise ConfigurationError("max_wait must be non-negative")
        if self.angle_threshold is not None and not 0 < self.angle_threshold <= math.pi:
            raise ConfigurationError(
                "angle_threshold must be in (0, pi] radians or None to disable"
            )
        if self.grid_cells < 1:
            raise ConfigurationError("grid_cells must be at least 1")
        if self.max_group_size is not None and self.max_group_size < 1:
            raise ConfigurationError("max_group_size must be at least 1 or None")
        if self.routing_backend not in ROUTING_BACKENDS:
            raise ConfigurationError(
                f"routing_backend must be one of {ROUTING_BACKENDS} "
                f"(got {self.routing_backend!r})"
            )

    @property
    def group_size_limit(self) -> int:
        """Largest request group a batch dispatcher will enumerate."""
        if self.max_group_size is None:
            return self.capacity
        return min(self.max_group_size, self.capacity)

    def with_overrides(self, **overrides: Any) -> "SimulationConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a synthetic workload used to stand in for the real traces.

    The three presets (``chengdu_like``, ``nyc_like``, ``cainiao_like``)
    differ only in these knobs; see :mod:`repro.workloads.presets`.
    """

    #: Identifier used in reports ("CHD", "NYC", "Cainiao", ...).
    name: str = "synthetic"
    #: Number of requests to generate.
    num_requests: int = 2000
    #: Number of vehicles.
    num_vehicles: int = 60
    #: Length of the request-arrival horizon in seconds.  Ignored when
    #: ``arrival_rate`` is positive (the horizon is then derived from it).
    horizon: float = 1800.0
    #: Mean request arrival rate in requests per second.  When positive the
    #: horizon becomes ``num_requests / arrival_rate`` so that scaling the
    #: request count up or down preserves the per-batch request density --
    #: the property batch-mode dispatchers are sensitive to.
    arrival_rate: float = 0.0
    #: Mean of ln(trip travel time) for the log-normal trip-length model.
    trip_log_mean: float = math.log(420.0)
    #: Standard deviation of ln(trip travel time).
    trip_log_sigma: float = 0.55
    #: Number of demand hotspots (origin/destination clusters).
    num_hotspots: int = 6
    #: Fraction of requests whose origin is drawn from a hotspot.
    hotspot_fraction: float = 0.7
    #: Mean number of riders per request (1 rider with prob ~ 1/mean tail).
    mean_riders: float = 1.3
    #: Random seed for workload generation.
    seed: int = 7
    #: Standard deviation sigma of the vehicle-capacity distribution
    #: (paper Appendix C); 0 means every vehicle has the default capacity.
    capacity_sigma: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "horizon", "arrival_rate", "trip_log_mean", "trip_log_sigma",
            "hotspot_fraction", "mean_riders", "capacity_sigma",
        ):
            _require_finite(name, getattr(self, name))
        if self.num_requests < 0:
            raise ConfigurationError("num_requests must be non-negative")
        if self.num_vehicles < 1:
            raise ConfigurationError(
                f"num_vehicles must be at least 1 (got {self.num_vehicles}); "
                "a zero fleet can serve no request -- scenario-driven fleets "
                "should start with one vehicle and use vehicle shift events"
            )
        if self.num_hotspots < 0:
            raise ConfigurationError("num_hotspots must be non-negative")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.arrival_rate < 0:
            raise ConfigurationError("arrival_rate must be non-negative")
        if self.trip_log_sigma < 0:
            raise ConfigurationError("trip_log_sigma must be non-negative")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ConfigurationError("hotspot_fraction must be in [0, 1]")
        if self.mean_riders < 1.0:
            raise ConfigurationError("mean_riders must be at least 1")
        if self.capacity_sigma < 0:
            raise ConfigurationError("capacity_sigma must be non-negative")

    @property
    def effective_horizon(self) -> float:
        """Arrival horizon actually used by the request generator."""
        if self.arrival_rate > 0:
            return max(self.num_requests / self.arrival_rate, 1.0)
        return self.horizon

    def with_overrides(self, **overrides: Any) -> "WorkloadConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class DemandSurge:
    """One demand-surge window modulating the synthetic request generator.

    During ``[start, end)`` the request arrival intensity is multiplied by
    ``rate_multiplier`` (the total request count is fixed, so other windows
    thin out proportionally -- the paper's batches then see the density
    spike).  With a ``center`` node, a ``attraction`` fraction of the
    requests released inside the window is additionally anchored to it:
    ``"outbound"`` surges draw *origins* near the center (a stadium
    emptying), ``"inbound"`` surges draw *destinations* near it (an arena
    filling up before the event).
    """

    #: Window bounds in seconds of simulated time.
    start: float
    end: float
    #: Arrival-intensity multiplier inside the window (>= 0; 0 is a lull).
    rate_multiplier: float = 1.0
    #: Node the surge demand is anchored to (``None`` leaves the spatial
    #: distribution untouched).
    center: int | None = None
    #: Fraction of in-window requests anchored to ``center``.
    attraction: float = 0.7
    #: ``"outbound"`` (origins near the center) or ``"inbound"``.
    direction: str = "outbound"

    def __post_init__(self) -> None:
        _require_finite("start", self.start)
        _require_finite("end", self.end)
        _require_finite("rate_multiplier", self.rate_multiplier)
        _require_finite("attraction", self.attraction)
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"surge window [{self.start}, {self.end}) must be non-empty "
                "and start at a non-negative time"
            )
        if self.rate_multiplier < 0:
            raise ConfigurationError(
                f"rate_multiplier must be non-negative (got {self.rate_multiplier})"
            )
        if not 0.0 <= self.attraction <= 1.0:
            raise ConfigurationError("attraction must be in [0, 1]")
        if self.direction not in ("outbound", "inbound"):
            raise ConfigurationError(
                f"direction must be 'outbound' or 'inbound' (got {self.direction!r})"
            )

    def active(self, time: float) -> bool:
        """True when ``time`` falls inside the surge window."""
        return self.start <= time < self.end


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the dynamic-world scenario presets and the refresh policy.

    The scenario presets (:mod:`repro.scenarios.presets`) derive their event
    timelines from these intensities; the refresh fields configure how the
    routing oracle is kept consistent with the mutating network (see
    :mod:`repro.scenarios.refresh`).
    """

    #: Oracle refresh policy: ``"eager"`` rebuilds after every mutation
    #: burst, ``"deferred"`` serves dirty windows via a Dijkstra fallback
    #: until a staleness budget runs out, ``"coalesce"`` folds all bursts
    #: since the last rebuild into one rebuild at the next quiet batch
    #: boundary, ``"repair"`` re-contracts only the affected cells of the
    #: contraction hierarchy (with snapshot swaps for exact reversions).
    refresh_policy: str = "coalesce"
    #: Deferred policy: rebuild after this many batches served stale.
    max_stale_batches: int = 3
    #: Repair policy: fall back to a full rebuild when the affected node
    #: set of a mutation burst exceeds this fraction of all nodes (past
    #: that point a rebuild is cheaper than splicing the repairs in).
    repair_max_fraction: float = 0.2
    #: Deferred policy: rebuild once this many queries were served by the
    #: Dijkstra fallback since the preprocessed structures went stale (the
    #: budget bounds the *total* stale-serving work, across bursts that land
    #: inside one fallback window).
    fallback_query_budget: int = 2_000
    #: Travel-time multiplier of rush-hour slowdown waves (> 1 slows down).
    slowdown_factor: float = 1.8
    #: Arrival-intensity multiplier of demand-surge windows.
    surge_multiplier: float = 2.5
    #: Closure window of the ``bridge_closure`` preset, as fractions of the
    #: request horizon.
    closure_start: float = 0.25
    closure_end: float = 0.75
    #: Seed for stochastic scenario components (cancellation sampling, ...).
    seed: int = 5

    def __post_init__(self) -> None:
        for name in (
            "slowdown_factor", "surge_multiplier", "closure_start", "closure_end",
            "repair_max_fraction",
        ):
            _require_finite(name, getattr(self, name))
        if self.refresh_policy not in REFRESH_POLICIES:
            raise ConfigurationError(
                f"refresh_policy must be one of {REFRESH_POLICIES} "
                f"(got {self.refresh_policy!r})"
            )
        if self.max_stale_batches < 1:
            raise ConfigurationError("max_stale_batches must be at least 1")
        if self.fallback_query_budget < 0:
            raise ConfigurationError("fallback_query_budget must be non-negative")
        if not 0.0 < self.repair_max_fraction <= 1.0:
            raise ConfigurationError(
                f"repair_max_fraction must be in (0, 1] (got {self.repair_max_fraction})"
            )
        if self.slowdown_factor <= 0:
            raise ConfigurationError(
                f"slowdown_factor must be positive (got {self.slowdown_factor})"
            )
        if self.surge_multiplier < 0:
            raise ConfigurationError("surge_multiplier must be non-negative")
        if not 0.0 <= self.closure_start < self.closure_end <= 1.0:
            raise ConfigurationError(
                "closure window must satisfy 0 <= closure_start < closure_end <= 1"
            )

    def with_overrides(self, **overrides: Any) -> "ScenarioConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the dispatch service (:mod:`repro.service`).

    The service wraps the batch simulator in a long-lived loop: an ingestion
    queue admits typed ride requests, a virtual-clock batch tick drains the
    queue into the dispatcher, and assignment events stream out to
    subscribers.  These knobs size the queue, pick the overload behaviour
    and state the service-rate objective the throughput benchmark reports
    against.
    """

    #: Capacity of the ingestion queue.  A full queue either rejects new
    #: requests or sheds the oldest queued one, per ``admission_policy``;
    #: async submitters using :meth:`repro.service.IngestionQueue.put` block
    #: (backpressure) instead of being rejected.
    queue_capacity: int = 512
    #: Overload behaviour of a full queue (see :data:`ADMISSION_POLICIES`).
    admission_policy: str = "reject"
    #: Assignment events buffered for late subscribers / post-hoc queries
    #: (0 keeps streaming to live subscribers but retains no history).
    event_history: int = 10_000
    #: Service-rate objective: the fraction of accepted requests that must
    #: be assigned for the service to report a healthy SLO.  The sustained
    #: requests/s number of ``bench_service_throughput`` is only meaningful
    #: at this SLO -- throughput with unbounded rejections is free.
    slo_service_rate: float = 0.75
    #: Drain queued requests (give each one a dispatch opportunity) before
    #: shutdown completes; ``False`` rejects everything still queued.
    drain_on_shutdown: bool = True
    #: Hard cap on the batches a shutdown drain may tick -- a defence
    #: against a misconfigured virtual clock never reaching the queue tail.
    max_drain_batches: int = 100_000

    def __post_init__(self) -> None:
        _require_finite("slo_service_rate", self.slo_service_rate)
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be at least 1 (got {self.queue_capacity})"
            )
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"admission_policy must be one of {ADMISSION_POLICIES} "
                f"(got {self.admission_policy!r})"
            )
        if self.event_history < 0:
            raise ConfigurationError("event_history must be non-negative")
        if not 0.0 <= self.slo_service_rate <= 1.0:
            raise ConfigurationError(
                f"slo_service_rate must be in [0, 1] (got {self.slo_service_rate})"
            )
        if self.max_drain_batches < 1:
            raise ConfigurationError("max_drain_batches must be at least 1")

    def with_overrides(self, **overrides: Any) -> "ServiceConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class ChaosConfig:
    """Per-operation fault rates driving the seeded fault injector.

    All rates are probabilities in ``[0, 1]`` evaluated independently per
    operation from RNG streams derived from ``seed``, so the same config
    produces the same fault sequence on every run (the chaos determinism
    contract).  A config with every rate at zero injects nothing --
    :attr:`enabled` is then false and the chaos oracle behaves exactly like
    a plain :class:`~repro.network.shortest_path.DistanceOracle`.
    """

    #: Seed of the injector's RNG streams (faults and latency spikes draw
    #: from separate streams so enabling spikes never shifts fault draws).
    seed: int = 17
    #: Probability that one backend rebuild raises before doing any work.
    rebuild_failure_rate: float = 0.0
    #: Probability that one incremental repair raises before doing any work.
    repair_failure_rate: float = 0.0
    #: Probability that a *successful* rebuild/repair/snapshot swap leaves
    #: the oracle silently corrupted (queries scaled by
    #: ``corruption_factor`` until a probe-triggered heal).
    corruption_rate: float = 0.0
    #: Multiplier applied to corrupted query results; must be positive and
    #: different from 1 so the corruption is parity-detectable.
    corruption_factor: float = 1.07
    #: Probability that one oracle query incurs a latency spike.
    query_spike_rate: float = 0.0
    #: Virtual seconds one latency spike charges to the batch time budget
    #: (charged, never slept, so chaos runs stay fast and deterministic).
    spike_seconds: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "rebuild_failure_rate", "repair_failure_rate", "corruption_rate",
            "corruption_factor", "query_spike_rate", "spike_seconds",
        ):
            _require_finite(name, getattr(self, name))
        for name in ("rebuild_failure_rate", "repair_failure_rate",
                     "corruption_rate", "query_spike_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1] (got {value})")
        if self.corruption_factor <= 0 or self.corruption_factor == 1.0:
            raise ConfigurationError(
                "corruption_factor must be positive and != 1 "
                f"(got {self.corruption_factor}); a factor of 1 would make "
                "corruption undetectable by parity probes"
            )
        if self.spike_seconds < 0:
            raise ConfigurationError("spike_seconds must be non-negative")

    @property
    def enabled(self) -> bool:
        """True when at least one fault rate is positive."""
        return (
            self.rebuild_failure_rate > 0
            or self.repair_failure_rate > 0
            or self.corruption_rate > 0
            or self.query_spike_rate > 0
        )

    def with_overrides(self, **overrides: Any) -> "ChaosConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the retry/backoff, circuit-breaker and probe machinery.

    The defaults are conservative: retries with exponential backoff on
    refresh failures, breakers that trip after two consecutive failures and
    probe for recovery two batches later, no batch time budget (the
    dispatcher never degrades) and no invariant probes.  Chaos harnesses
    turn the budget and probes on explicitly.
    """

    #: Total attempts (first try + retries) per rebuild/repair.
    max_attempts: int = 3
    #: First backoff pause in (virtual) seconds.
    backoff_base: float = 0.05
    #: Multiplier applied to the pause after every failed attempt.
    backoff_multiplier: float = 2.0
    #: Relative jitter applied to each pause: the pause is scaled by a
    #: factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    backoff_jitter: float = 0.25
    #: Deadline budget in seconds (real operation time + virtual backoff)
    #: after which retrying stops even if attempts remain.
    retry_deadline: float = 30.0
    #: Consecutive failures that trip a breaker open.
    breaker_threshold: int = 2
    #: Batches a tripped breaker stays open before a half-open recovery probe.
    recovery_interval: int = 2
    #: Per-batch dispatch time budget in seconds; overrunning it counts a
    #: breaker failure and eventually degrades the dispatcher.  ``None``
    #: disables the budget entirely.
    batch_time_budget: float | None = None
    #: Charge real dispatch wall-clock against the budget.  Chaos harnesses
    #: set this to False so breaker decisions depend only on injected
    #: (virtual) latency and stay reproducible across machines.
    count_real_dispatch_time: bool = True
    #: Random oracle-vs-Dijkstra cost probes per batch (0 disables probing).
    probe_pairs: int = 0
    #: Seed of the probe pair sampler and the backoff jitter stream.
    probe_seed: int = 23
    #: Self-healing rebuild attempts before probing falls back to the exact
    #: fresh-CSR Dijkstra rung.
    max_heal_attempts: int = 2
    #: Re-check every accepted assignment's leg costs against a fresh
    #: Dijkstra oracle after each dispatch (the chaos acceptance gate;
    #: expensive, so off by default).
    verify_assignments: bool = False

    def __post_init__(self) -> None:
        for name in ("backoff_base", "backoff_multiplier", "backoff_jitter",
                     "retry_deadline"):
            _require_finite(name, getattr(self, name))
        if self.batch_time_budget is not None:
            _require_finite("batch_time_budget", self.batch_time_budget)
            if self.batch_time_budget <= 0:
                raise ConfigurationError(
                    "batch_time_budget must be positive or None to disable"
                )
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be at least 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigurationError("backoff_jitter must be in [0, 1]")
        if self.retry_deadline <= 0:
            raise ConfigurationError("retry_deadline must be positive")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be at least 1")
        if self.recovery_interval < 1:
            raise ConfigurationError("recovery_interval must be at least 1")
        if self.probe_pairs < 0:
            raise ConfigurationError("probe_pairs must be non-negative")
        if self.max_heal_attempts < 1:
            raise ConfigurationError("max_heal_attempts must be at least 1")

    def with_overrides(self, **overrides: Any) -> "ResilienceConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)


@dataclass
class ExperimentConfig:
    """One experiment = a workload, a simulation config and algorithm names."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    algorithms: tuple[str, ...] = (
        "pruneGDP",
        "TicketAssign+",
        "DARM+DPRS",
        "RTV",
        "GAS",
        "SARD",
    )
    #: Human-readable label for reports ("Figure 8 (CHD)", ...).
    label: str = "experiment"
