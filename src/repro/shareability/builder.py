"""Dynamic shareability-graph builder (Algorithm 1).

For every new request ``r_a`` in the incoming batch the builder:

1. filters candidate requests through a grid index over request sources plus
   a deadline / detour-tolerance window (no shortest-path query needed),
2. applies the angle pruning rule (Theorem III.1), and
3. runs the two-request linear-insertion feasibility test to decide whether
   an edge is added.

The builder is *incremental*: the graph of the previous batch is reused and
only edges incident to newly arrived requests are probed, which is what makes
batch-mode dispatch affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from ..config import SimulationConfig
from ..insertion.pair_schedules import best_pair_schedule
from ..model.request import Request
from ..network.grid_index import GridIndex
from ..network.road_network import RoadNetwork
from ..network.shortest_path import DistanceOracle
from ..observability.trace import get_tracer
from .angle_pruning import passes_angle_filter
from .graph import ShareabilityGraph


@dataclass
class BuilderStatistics:
    """Counters describing the pruning effectiveness of the builder."""

    candidates_considered: int = 0
    pruned_by_spatial: int = 0
    pruned_by_angle: int = 0
    pairs_tested: int = 0
    edges_added: int = 0
    #: Shortest-path queries issued while testing pairs (difference of the
    #: oracle counter around the feasibility tests).
    shortest_path_queries: int = 0

    def merge(self, other: "BuilderStatistics") -> None:
        """Accumulate another statistics object into this one."""
        self.candidates_considered += other.candidates_considered
        self.pruned_by_spatial += other.pruned_by_spatial
        self.pruned_by_angle += other.pruned_by_angle
        self.pairs_tested += other.pairs_tested
        self.edges_added += other.edges_added
        self.shortest_path_queries += other.shortest_path_queries


@dataclass
class DynamicShareabilityGraphBuilder:
    """Maintains a shareability graph across batches (Algorithm 1).

    Parameters
    ----------
    network:
        Road network providing node coordinates for spatial filtering and the
        angle rule.
    oracle:
        Shortest-path oracle used by the pairwise feasibility test.
    config:
        Simulation configuration supplying the angle threshold, the vehicle
        capacity (used by the pair test) and the grid resolution.
    average_speed:
        Mean driving speed (m/s) used to convert deadline slack into a search
        radius for the spatial filter.
    """

    network: RoadNetwork
    oracle: DistanceOracle
    config: SimulationConfig
    average_speed: float = 10.0
    graph: ShareabilityGraph = field(default_factory=ShareabilityGraph)
    stats: BuilderStatistics = field(default_factory=BuilderStatistics)
    _source_index: GridIndex | None = None

    def __post_init__(self) -> None:
        if self._source_index is None:
            self._source_index = GridIndex.for_network(
                self.network, self.config.grid_cells
            )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def update(self, new_requests: Iterable[Request]) -> ShareabilityGraph:
        """Insert a batch of new requests and connect them to shareable peers.

        Returns the updated graph (the same object the builder maintains).
        """
        requests = list(new_requests)
        if not requests:
            return self.graph
        with get_tracer().span(
            "shareability.update", new_requests=len(requests)
        ) as span:
            edges_before = self.stats.edges_added
            pairs_before = self.stats.pairs_tested
            for request in requests:
                self._insert_request(request)
            span.tag("pairs_tested", self.stats.pairs_tested - pairs_before)
            span.tag("edges_added", self.stats.edges_added - edges_before)
        return self.graph

    def remove(self, request_ids: Iterable[int]) -> None:
        """Drop assigned or expired requests from the graph and the index."""
        for rid in list(request_ids):
            if rid in self.graph:
                self.graph.remove_request(rid)
            self._source_index.remove(rid)

    def reset(self) -> None:
        """Forget every request (used between independent experiments)."""
        self.graph = ShareabilityGraph()
        self._source_index = GridIndex.for_network(
            self.network, self.config.grid_cells
        )
        self.stats = BuilderStatistics()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _search_radius(self, request: Request) -> float:
        """Euclidean radius of the candidate window around a request source.

        Two requests can only share when the detour budget of one can absorb
        the hop to the other's source, so the radius is the distance a vehicle
        can drive within the request's detour budget plus waiting slack.
        """
        slack = max(request.detour_budget, 0.0) + self.config.max_wait
        return max(self.average_speed * slack, 1.0)

    def _insert_request(self, request: Request) -> None:
        if request.request_id in self.graph:
            return
        graph = self.graph
        graph.add_request(request)
        source_xy = self.network.position(request.source)
        radius = self._search_radius(request)
        candidate_ids = self._source_index.query_radius(
            source_xy[0], source_xy[1], radius
        )
        total_existing = len(graph) - 1
        self.stats.candidates_considered += total_existing
        self.stats.pruned_by_spatial += max(total_existing - len(candidate_ids), 0)
        threshold = self.config.angle_threshold
        survivors: list[Request] = []
        for candidate_id in candidate_ids:
            if candidate_id == request.request_id or candidate_id not in graph:
                continue
            candidate = graph.request(candidate_id)
            if not self._deadline_window_overlaps(request, candidate):
                self.stats.pruned_by_spatial += 1
                continue
            if not passes_angle_filter(self.network, request, candidate, threshold):
                self.stats.pruned_by_angle += 1
                continue
            survivors.append(candidate)
        if survivors:
            self._prefetch_pair_legs(request, survivors)
        for candidate in survivors:
            if self._test_pair(request, candidate):
                graph.add_edge(request.request_id, candidate.request_id)
                self.stats.edges_added += 1
        self._source_index.insert(request.request_id, source_xy[0], source_xy[1])

    def _deadline_window_overlaps(self, first: Request, second: Request) -> bool:
        """Cheap temporal filter: pick-up windows of the two requests overlap."""
        first_window = (first.release_time, first.latest_pickup)
        second_window = (second.release_time, second.latest_pickup)
        return (
            first_window[0] <= second_window[1] + 1e-9
            and second_window[0] <= first_window[1] + 1e-9
        )

    def _prefetch_pair_legs(self, request: Request, survivors: list[Request]) -> None:
        """Batch the distance legs the pairwise tests are about to evaluate.

        Instead of letting every candidate schedule issue its ``cost`` legs
        one by one, all legs incident to the anchor's endpoints are answered
        by two :meth:`DistanceOracle.prefetch` calls -- one multi-target
        search (or hub-label bucket join) per direction -- so the feasibility
        tests below run almost entirely against the warm cache.  Only the
        per-candidate direct leg (source -> destination) stays a point
        query.  Prefetching is invisible to the logical query counters, so
        the reported "#Shortest Path Queries" column is unchanged.
        """
        endpoints: list[int] = []
        for candidate in survivors:
            endpoints.append(candidate.source)
            endpoints.append(candidate.destination)
        anchor = (request.source, request.destination)
        self.oracle.prefetch(anchor, (*endpoints, request.destination))
        self.oracle.prefetch(endpoints, anchor)

    def _test_pair(self, anchor: Request, candidate: Request) -> bool:
        """Run the pairwise feasibility test, charging shortest-path queries."""
        before = self.oracle.stats.queries
        self.stats.pairs_tested += 1
        capacity = self.config.capacity
        schedule, _ = best_pair_schedule(anchor, candidate, self.oracle, capacity=capacity)
        shareable = schedule is not None
        if not shareable:
            schedule, _ = best_pair_schedule(candidate, anchor, self.oracle, capacity=capacity)
            shareable = schedule is not None
        self.stats.shortest_path_queries += self.oracle.stats.queries - before
        return shareable
