"""Clique-partition bounds and utilities supporting Theorem IV.1.

SARD's acceptance rule is justified by modelling "maximise the number of
requests that still share" as a clique partition problem on the shareability
graph.  This module implements the quantitative ingredients of that argument:

* Bhasker & Samad's upper bound on the clique partition number in terms of
  nodes and edges (Equation 6),
* Janson et al.'s estimate of the largest clique in a power-law random graph
  (Equation 7),
* the combined upper bound for partitions into cliques of size at most ``k``
  (Equation 8), and
* a greedy bounded clique partition used in tests and analysis tooling.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .graph import ShareabilityGraph


def clique_partition_upper_bound(num_nodes: int, num_edges: int) -> int:
    """Equation 6: upper bound on the clique partition number.

    ``theta_upper = floor((1 + sqrt(4n^2 - 4n - 8e + 1)) / 2)``.
    """
    if num_nodes < 0 or num_edges < 0:
        raise ConfigurationError("node and edge counts must be non-negative")
    if num_nodes == 0:
        return 0
    discriminant = 4 * num_nodes * num_nodes - 4 * num_nodes - 8 * num_edges + 1
    discriminant = max(discriminant, 0)
    return int(math.floor((1.0 + math.sqrt(discriminant)) / 2.0))


def largest_clique_estimate(num_nodes: int, exponent: float, *, constant: float = 1.0) -> float:
    """Equation 7: order of the largest clique in a power-law graph.

    For tail exponent ``eta > 2`` the clique number is a small constant (the
    paper uses 3); at ``eta = 2`` it is ``O(1)`` and below 2 it grows like
    ``n^(1 - eta/2) (log n)^(-eta/2)``.
    """
    if num_nodes < 1:
        raise ConfigurationError("num_nodes must be at least 1")
    if exponent <= 0:
        raise ConfigurationError("the power-law exponent must be positive")
    if exponent > 2.0:
        return 3.0
    if math.isclose(exponent, 2.0):
        return max(3.0, constant)
    log_n = math.log(max(num_nodes, 2))
    return constant * num_nodes ** (1.0 - exponent / 2.0) * log_n ** (-exponent / 2.0)


def bounded_clique_partition_upper_bound(
    num_nodes: int,
    num_edges: int,
    exponent: float,
    max_clique_size: int,
) -> float:
    """Equation 8: upper bound when cliques must have size at most ``k``."""
    if max_clique_size < 1:
        raise ConfigurationError("max_clique_size must be at least 1")
    base = clique_partition_upper_bound(num_nodes, num_edges)
    omega = largest_clique_estimate(max(num_nodes, 1), exponent)
    return base * math.ceil(max(omega, 1.0) / max_clique_size)


def fit_power_law_exponent(degrees: Sequence[int]) -> float:
    """Maximum-likelihood estimate of the power-law tail exponent.

    Uses the standard Hill estimator ``eta = 1 + n / sum(ln(d_i / d_min))``
    over the positive degrees, which the paper assumes when analysing the
    shareability graph's degree distribution.
    """
    positive = np.asarray([d for d in degrees if d > 0], dtype=float)
    if positive.size < 2:
        raise ConfigurationError("need at least two positive degrees to fit")
    d_min = positive.min()
    ratios = np.log(positive / d_min)
    total = float(ratios.sum())
    if total <= 0:
        return float("inf")
    return 1.0 + positive.size / total


def greedy_clique_partition(
    graph: ShareabilityGraph, max_clique_size: int
) -> list[set[int]]:
    """Greedy partition of the graph into cliques of size at most ``k``.

    Nodes are processed in ascending degree order (the scarce-shareability
    first heuristic of Observation 1); each node seeds a clique that is
    greedily extended with common neighbours.  The result is a valid
    partition: every node appears in exactly one clique.
    """
    if max_clique_size < 1:
        raise ConfigurationError("max_clique_size must be at least 1")
    unassigned = set(graph.request_ids())
    order = sorted(unassigned, key=graph.degree)
    partition: list[set[int]] = []
    for seed in order:
        if seed not in unassigned:
            continue
        clique = {seed}
        unassigned.discard(seed)
        candidates = graph.neighbors(seed) & unassigned
        while candidates and len(clique) < max_clique_size:
            # Extend with the candidate sharing the most neighbours with the
            # current clique to keep later extension possible.
            best = max(candidates, key=lambda rid: len(graph.neighbors(rid) & candidates))
            clique.add(best)
            unassigned.discard(best)
            candidates &= graph.neighbors(best)
            candidates &= unassigned
        partition.append(clique)
    return partition


def sharing_rate_of_partition(partition: Sequence[set[int]]) -> float:
    """Fraction of requests placed in a clique of size at least two."""
    total = sum(len(clique) for clique in partition)
    if total == 0:
        return 0.0
    shared = sum(len(clique) for clique in partition if len(clique) >= 2)
    return shared / total
