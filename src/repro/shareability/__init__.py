"""Shareability graph: construction, structure analysis and shareability loss.

This package implements Section III and the structural measurements of
Section IV of the paper:

* :class:`~repro.shareability.graph.ShareabilityGraph` -- the undirected
  graph whose nodes are pending requests and whose edges connect shareable
  pairs (Definition 5).
* :class:`~repro.shareability.builder.DynamicShareabilityGraphBuilder` --
  Algorithm 1: incremental construction per batch using the grid index,
  deadline filtering and the angle pruning rule (Theorem III.1).
* :mod:`~repro.shareability.angle_pruning` -- geometric predicates and the
  expected-sharing-probability analysis under a log-normal trip-length model.
* :mod:`~repro.shareability.loss` -- shareability loss (Definition 6) and the
  supernode substitution operation.
* :mod:`~repro.shareability.cliques` -- clique-partition bounds
  (Equations 6-8) supporting Theorem IV.1.
"""

from .graph import ShareabilityGraph
from .builder import DynamicShareabilityGraphBuilder, BuilderStatistics
from .angle_pruning import (
    direction_angle,
    passes_angle_filter,
    expected_sharing_probability,
    fit_lognormal,
)
from .loss import (
    residual_shareability_loss,
    shareability_loss,
    sharing_ratio,
    substitute_supernode,
)
from .cliques import (
    clique_partition_upper_bound,
    largest_clique_estimate,
    bounded_clique_partition_upper_bound,
    greedy_clique_partition,
)

__all__ = [
    "ShareabilityGraph",
    "DynamicShareabilityGraphBuilder",
    "BuilderStatistics",
    "direction_angle",
    "passes_angle_filter",
    "expected_sharing_probability",
    "fit_lognormal",
    "shareability_loss",
    "residual_shareability_loss",
    "sharing_ratio",
    "substitute_supernode",
    "clique_partition_upper_bound",
    "largest_clique_estimate",
    "bounded_clique_partition_upper_bound",
    "greedy_clique_partition",
]
