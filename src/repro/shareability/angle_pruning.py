"""Angle pruning (Theorem III.1) and its log-normal probability analysis.

Requests travelling in similar directions are more likely to share a trip.
The builder prunes a candidate pair ``(r_a, r_b)`` when the angle between the
vectors ``s_b -> e_a`` and ``s_b -> e_b`` exceeds a threshold ``delta``.
This module provides:

* the geometric predicate used by Algorithm 1 (line 6),
* the expected sharing probability ``E(theta >= delta)`` under the paper's
  log-normal trip-length model (Section III-B), evaluated by numerical
  integration, and
* a helper to fit the log-normal parameters to observed trip lengths.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np
from scipy import integrate

from ..exceptions import ConfigurationError
from ..model.request import Request
from ..network.road_network import RoadNetwork


def direction_angle(
    network: RoadNetwork, anchor: Request, candidate: Request
) -> float:
    """Angle (radians) between ``s_b -> e_a`` and ``s_b -> e_b``.

    ``anchor`` is ``r_a`` (the newly arrived request) and ``candidate`` is
    ``r_b``.  Returns 0 when either vector is degenerate (zero length), which
    makes the pruning rule permissive for co-located requests.
    """
    sb = network.position(candidate.source)
    ea = network.position(anchor.destination)
    eb = network.position(candidate.destination)
    v1 = (ea[0] - sb[0], ea[1] - sb[1])
    v2 = (eb[0] - sb[0], eb[1] - sb[1])
    norm1 = math.hypot(*v1)
    norm2 = math.hypot(*v2)
    if norm1 < 1e-12 or norm2 < 1e-12:
        return 0.0
    cosine = (v1[0] * v2[0] + v1[1] * v2[1]) / (norm1 * norm2)
    cosine = max(-1.0, min(1.0, cosine))
    return math.acos(cosine)


def passes_angle_filter(
    network: RoadNetwork,
    anchor: Request,
    candidate: Request,
    threshold: float | None,
) -> bool:
    """True when the pair survives the angle pruning rule.

    A ``None`` threshold disables pruning entirely (the SARD variant without
    pruning in Tables V/VI).  Following Algorithm 1, the pair is kept when the
    angle lies within ``[-delta/2, delta/2]``, i.e. its magnitude is at most
    ``threshold / 2``.
    """
    if threshold is None:
        return True
    angle = direction_angle(network, anchor, candidate)
    return angle <= threshold / 2.0 + 1e-12


def fit_lognormal(distances: Sequence[float]) -> tuple[float, float]:
    """Fit ``(mu, sigma)`` of a log-normal distribution to trip lengths.

    The paper observes that request trip lengths in both Chengdu and NYC
    closely follow a log-normal distribution; ``mu``/``sigma`` are the mean
    and standard deviation of ``ln(x)``.
    """
    cleaned = [d for d in distances if d > 0]
    if len(cleaned) < 2:
        raise ConfigurationError("need at least two positive distances to fit")
    logs = np.log(np.asarray(cleaned, dtype=float))
    mu = float(np.mean(logs))
    sigma = float(np.std(logs, ddof=1))
    return mu, sigma


def _lognormal_pdf(x: float, mu: float, sigma: float) -> float:
    if x <= 0:
        return 0.0
    return (
        1.0
        / (x * sigma * math.sqrt(2.0 * math.pi))
        * math.exp(-((math.log(x) - mu) ** 2) / (2.0 * sigma**2))
    )


def _lognormal_cdf(x: float, mu: float, sigma: float) -> float:
    if x <= 0:
        return 0.0
    return 0.5 * (1.0 + math.erf((math.log(x) - mu) / (sigma * math.sqrt(2.0))))


def sharing_upper_cutoff(c: float, theta: float, gamma: float) -> float:
    """The paper's ``g(c)`` bound for condition (a) of Theorem III.1.

    ``c`` is half the direct travel cost of the anchor request, ``theta`` the
    angle between the two travel directions and ``gamma`` the deadline
    parameter.  Candidate trips shorter than this bound can satisfy the
    drop-anchor-last schedule.
    """
    if gamma <= 1.0:
        raise ConfigurationError("gamma must be > 1")
    if c <= 0:
        return 0.0
    term = (math.cos(theta / 2.0) ** 2) / (gamma * c) + (
        math.sin(theta / 2.0) ** 2
    ) / ((gamma - 1.0) * c)
    if term <= 0:
        return math.inf
    return 1.0 / term


def sharing_lower_cutoff(c: float, theta: float, gamma: float) -> float:
    """The paper's ``h(c)`` bound for condition (b) of Theorem III.1.

    Candidate trips longer than this bound can satisfy the
    drop-candidate-last schedule.
    """
    if gamma <= 1.0:
        raise ConfigurationError("gamma must be > 1")
    return 2.0 * c * (1.0 - math.cos(theta)) / (gamma - 1.0)


def expected_sharing_probability(
    mu: float,
    sigma: float,
    theta: float,
    gamma: float,
    *,
    grid_points: int = 400,
) -> float:
    """Expected probability that a candidate at angle ``theta`` is shareable.

    Implements the double integral ``E(theta >= delta)`` of Section III-B:
    the anchor trip length ``x`` follows the fitted log-normal, the candidate
    trip length ``y`` follows the same distribution, and the pair is counted
    as shareable when ``y <= g(x/2)`` or ``y >= h(x/2)``.
    The paper reports ~41% for ``theta = pi/2`` and ``gamma = 1.5`` on both
    datasets.
    """
    if sigma <= 0:
        raise ConfigurationError("sigma must be positive")

    def inner(x: float) -> float:
        c = x / 2.0
        upper = sharing_upper_cutoff(c, theta, gamma)
        lower = sharing_lower_cutoff(c, theta, gamma)
        prob = _lognormal_cdf(upper, mu, sigma)
        prob += 1.0 - _lognormal_cdf(lower, mu, sigma)
        return min(prob, 1.0)

    # Integrate the anchor-length distribution over a generous quantile range.
    lo = math.exp(mu - 5.0 * sigma)
    hi = math.exp(mu + 5.0 * sigma)
    xs = np.linspace(lo, hi, grid_points)
    pdf = np.array([_lognormal_pdf(x, mu, sigma) for x in xs])
    values = np.array([inner(x) for x in xs])
    numerator = integrate.trapezoid(values * pdf, xs)
    denominator = integrate.trapezoid(pdf, xs)
    if denominator <= 0:
        return 0.0
    return float(min(max(numerator / denominator, 0.0), 1.0))
