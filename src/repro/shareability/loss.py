"""Shareability loss (Definition 6) and supernode substitution.

When a vehicle accepts a group ``G`` of requests, those requests leave the
shareability graph as individual nodes and are replaced by a single
*supernode*.  The supernode keeps an edge to an outside node only when that
node was adjacent to *every* member of ``G``.  The shareability loss measures
how many sharing opportunities the substitution destroys; SARD's acceptance
phase picks the group with the smallest loss (Theorem IV.1).

Two variants are provided:

* :func:`shareability_loss` -- the literal arithmetic of Definition 6 /
  Example 3, where ``N(v)`` is the full neighbourhood of ``v`` (group members
  included).
* :func:`residual_shareability_loss` -- the same expression evaluated on the
  neighbourhoods restricted to nodes *outside* the group.  This measures the
  loss suffered by the remaining (still unassigned) requests only, which is
  the quantity Theorem IV.1 argues about and the one that drives the group
  selection in Example 4; SARD uses it for acceptance.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..exceptions import ReproError
from ..model.request import Request
from .graph import ShareabilityGraph


def _validated_members(graph: ShareabilityGraph, group: Sequence[int]) -> list[int]:
    members = list(dict.fromkeys(group))
    if not members:
        raise ReproError("shareability loss of an empty group is undefined")
    for rid in members:
        if rid not in graph:
            raise ReproError(f"request {rid} is not a node of the shareability graph")
    return members


def _loss_from_neighbourhoods(
    members: list[int], neighbourhoods: dict[int, set[int]]
) -> float:
    """Evaluate Equation 5 given the (possibly restricted) neighbourhoods."""
    full_intersection: set[int] | None = None
    for rid in members:
        neighbours = neighbourhoods[rid]
        full_intersection = (
            set(neighbours) if full_intersection is None else full_intersection & neighbours
        )
    assert full_intersection is not None
    worst = -float("inf")
    for rid in members:
        others = [other for other in members if other != rid]
        partial: set[int] | None = None
        for other in others:
            neighbours = neighbourhoods[other]
            partial = set(neighbours) if partial is None else partial & neighbours
        partial = partial if partial is not None else set()
        loss = len(partial) + len(neighbourhoods[rid]) - len(full_intersection) - 1
        worst = max(worst, loss)
    return float(worst)


def shareability_loss(graph: ShareabilityGraph, group: Sequence[int]) -> float:
    """Shareability loss of substituting a supernode for ``group``.

    Implements Equation 5 of the paper::

        SLoss(G) = max_{r in G} ( |Intersection_{v in G - {r}} N(v)|
                                  + |N(r)| - |Intersection_{v in G} N(v)| - 1 )

    with the convention ``SLoss({r}) = deg(r)`` for singleton groups.  The
    neighbourhoods are the full adjacency sets, matching the arithmetic of
    Example 3 in the paper.
    """
    members = _validated_members(graph, group)
    if len(members) == 1:
        return float(graph.degree(members[0]))
    neighbourhoods = {rid: graph.neighbors(rid) for rid in members}
    return _loss_from_neighbourhoods(members, neighbourhoods)


def residual_shareability_loss(graph: ShareabilityGraph, group: Sequence[int]) -> float:
    """Shareability loss restricted to the requests left behind.

    Same expression as :func:`shareability_loss` but every neighbourhood is
    intersected with the complement of the group first, so the value counts
    only sharing opportunities destroyed *among the remaining requests*.
    Larger, more cohesive groups therefore score lower, which is the signal
    SARD's acceptance phase uses to prefer serving cliques together
    (Theorem IV.1, Example 4).  Singletons still score their outside degree.
    """
    members = _validated_members(graph, group)
    member_set = set(members)
    if len(members) == 1:
        return float(len(graph.neighbors(members[0]) - member_set))
    neighbourhoods = {rid: graph.neighbors(rid) - member_set for rid in members}
    return _loss_from_neighbourhoods(members, neighbourhoods)


def _neighbour_intersection(
    graph: ShareabilityGraph, members: Iterable[int], *, exclude: set[int]
) -> set[int]:
    """Common outside neighbours of ``members`` (excluding the group itself)."""
    members = list(members)
    if not members:
        return set()
    common = graph.neighbors(members[0])
    for rid in members[1:]:
        common &= graph.neighbors(rid)
        if not common:
            break
    return common - exclude


def substitute_supernode(
    graph: ShareabilityGraph,
    group: Sequence[int],
    *,
    supernode_request: Request | None = None,
) -> ShareabilityGraph:
    """Return a copy of ``graph`` with ``group`` merged into a supernode.

    The supernode is connected to an outside node exactly when that node was
    adjacent to every member of the group.  When ``supernode_request`` is
    omitted, the request object of the first group member represents the
    merged node (its identifier is reused).
    """
    members = _validated_members(graph, group)
    member_set = set(members)
    survivors = _neighbour_intersection(graph, members, exclude=member_set)
    representative = supernode_request or graph.request(members[0])
    result = graph.copy()
    result.remove_requests(members)
    result.add_request(representative)
    for neighbour in survivors:
        if neighbour in result:
            result.add_edge(representative.request_id, neighbour)
    return result


def sharing_ratio(graph: ShareabilityGraph, group: Sequence[int], total_cost: float) -> float:
    """Tie-breaking score used by SARD's acceptance phase (Example 4).

    When two groups have the same shareability loss, the vehicle prefers the
    group whose planned travel cost is smaller relative to the sum of its
    members' direct trips: a lower ratio means more of the trip is genuinely
    shared.
    """
    members = list(dict.fromkeys(group))
    direct = sum(graph.request(rid).direct_cost for rid in members)
    if direct <= 0:
        return 0.0
    return total_cost / direct
