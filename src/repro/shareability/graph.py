"""The shareability graph data structure (Definition 5).

Nodes are request identifiers; an undirected edge ``(r_a, r_b)`` means the
two requests can be served together on one trip.  The structure supports the
operations the StructRide framework needs: degree ("shareability") queries,
neighbourhood intersections for the shareability loss, clique tests for the
grouping algorithm, and removal of assigned or expired requests.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from ..exceptions import ReproError
from ..model.request import Request


class ShareabilityGraph:
    """Undirected graph over pending requests with adjacency sets.

    The graph stores the :class:`~repro.model.request.Request` objects
    themselves so that dispatchers can recover request metadata from a node
    identifier without a separate lookup table.
    """

    def __init__(self) -> None:
        self._requests: dict[int, Request] = {}
        self._adjacency: dict[int, set[int]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # construction / maintenance
    # ------------------------------------------------------------------ #
    def add_request(self, request: Request) -> None:
        """Add a node for ``request`` (idempotent)."""
        rid = request.request_id
        if rid not in self._requests:
            self._requests[rid] = request
            self._adjacency[rid] = set()

    def add_edge(self, first_id: int, second_id: int) -> None:
        """Add the undirected edge between two existing nodes."""
        if first_id == second_id:
            raise ReproError("a request cannot share with itself")
        if first_id not in self._adjacency or second_id not in self._adjacency:
            raise ReproError(
                f"both requests must be nodes before adding edge ({first_id}, {second_id})"
            )
        if second_id not in self._adjacency[first_id]:
            self._adjacency[first_id].add(second_id)
            self._adjacency[second_id].add(first_id)
            self._num_edges += 1

    def remove_request(self, request_id: int) -> None:
        """Remove a node and all incident edges; missing nodes are ignored."""
        if request_id not in self._adjacency:
            return
        for neighbour in self._adjacency[request_id]:
            self._adjacency[neighbour].discard(request_id)
            self._num_edges -= 1
        del self._adjacency[request_id]
        del self._requests[request_id]

    def remove_requests(self, request_ids: Iterable[int]) -> None:
        """Remove several nodes."""
        for rid in list(request_ids):
            self.remove_request(rid)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of request nodes."""
        return len(self._requests)

    @property
    def num_edges(self) -> int:
        """Number of undirected shareability edges."""
        return self._num_edges

    def __contains__(self, request_id: int) -> bool:
        return request_id in self._requests

    def __len__(self) -> int:
        return len(self._requests)

    def request_ids(self) -> Iterator[int]:
        """Iterate over node identifiers."""
        return iter(self._requests)

    def requests(self) -> list[Request]:
        """All request objects currently in the graph."""
        return list(self._requests.values())

    def request(self, request_id: int) -> Request:
        """The request object of a node."""
        try:
            return self._requests[request_id]
        except KeyError as exc:
            raise ReproError(f"request {request_id} is not in the graph") from exc

    def has_edge(self, first_id: int, second_id: int) -> bool:
        """True when the two requests are shareable."""
        return second_id in self._adjacency.get(first_id, ())

    def neighbors(self, request_id: int) -> set[int]:
        """Identifiers of the requests shareable with ``request_id``."""
        try:
            return set(self._adjacency[request_id])
        except KeyError as exc:
            raise ReproError(f"request {request_id} is not in the graph") from exc

    def degree(self, request_id: int) -> int:
        """The *shareability* of a request (Observation 1): its degree."""
        try:
            return len(self._adjacency[request_id])
        except KeyError as exc:
            raise ReproError(f"request {request_id} is not in the graph") from exc

    def degrees(self) -> dict[int, int]:
        """Degree of every node."""
        return {rid: len(neigh) for rid, neigh in self._adjacency.items()}

    def is_clique(self, request_ids: Iterable[int]) -> bool:
        """True when the nodes are pairwise shareable (Observation 2)."""
        members = list(request_ids)
        for index, first in enumerate(members):
            if first not in self._adjacency:
                return False
            neighbours = self._adjacency[first]
            for second in members[index + 1:]:
                if second not in neighbours:
                    return False
        return True

    def common_neighbors(self, request_ids: Iterable[int]) -> set[int]:
        """Nodes adjacent to every request in ``request_ids``."""
        members = list(request_ids)
        if not members:
            return set()
        common = set(self._adjacency.get(members[0], set()))
        for rid in members[1:]:
            common &= self._adjacency.get(rid, set())
            if not common:
                break
        return common - set(members)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected edges once each (``u < v``)."""
        for u, neighbours in self._adjacency.items():
            for v in neighbours:
                if u < v:
                    yield u, v

    def subgraph(self, request_ids: Iterable[int]) -> "ShareabilityGraph":
        """Induced subgraph on the given request identifiers."""
        keep = {rid for rid in request_ids if rid in self._requests}
        sub = ShareabilityGraph()
        for rid in sorted(keep):
            sub.add_request(self._requests[rid])
        for rid in sorted(keep):
            for neighbour in self._adjacency[rid]:
                if neighbour in keep and rid < neighbour:
                    sub.add_edge(rid, neighbour)
        return sub

    def copy(self) -> "ShareabilityGraph":
        """Deep copy of the graph structure (requests are shared, immutable)."""
        duplicate = ShareabilityGraph()
        duplicate._requests = dict(self._requests)
        duplicate._adjacency = {rid: set(neigh) for rid, neigh in self._adjacency.items()}
        duplicate._num_edges = self._num_edges
        return duplicate

    def connected_components(self) -> list[set[int]]:
        """Connected components as sets of request identifiers."""
        unvisited = set(self._requests)
        components: list[set[int]] = []
        while unvisited:
            seed = unvisited.pop()
            component = {seed}
            frontier = [seed]
            while frontier:
                node = frontier.pop()
                for neighbour in self._adjacency[node]:
                    if neighbour in unvisited:
                        unvisited.discard(neighbour)
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(component)
        return components

    def to_networkx(self) -> Any:
        """Export as an undirected :class:`networkx.Graph` (tests / analysis)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self._requests)
        graph.add_edges_from(self.edges())
        return graph

    def estimated_memory_bytes(self) -> int:
        """Rough memory footprint (for the memory study of Figure 14)."""
        return 120 * len(self._requests) + 60 * 2 * self._num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ShareabilityGraph(nodes={self.num_nodes}, edges={self.num_edges})"
