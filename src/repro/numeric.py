"""Float tolerance helpers for cost/weight comparisons.

Costs in this codebase are sums of float edge weights; two mathematically
equal routes can differ in the last ulp depending on summation order,
routing backend and repair history.  Exact ``==`` on such values makes
acceptance decisions backend-dependent, so repro-lint rule ``INV002`` bans
it inside ``src/repro/`` and points here.

The default tolerances mirror the long-standing ad-hoc constants already
used across the codebase: ``1e-9`` relative (schedule feasibility slack)
with a small absolute floor so comparisons against zero behave.  Infinity
is handled exactly -- two infinite costs are equal, an infinite and a
finite cost never are -- which keeps the idiomatic unreachable sentinel
working without special-casing at call sites.
"""

from __future__ import annotations

import math

__all__ = ["COST_ABS_TOL", "COST_REL_TOL", "costs_close", "costs_differ", "costs_equal"]

#: Relative tolerance for cost equality, matching the schedule slack used
#: since the seed (``deadline + 1e-9``).
COST_REL_TOL = 1e-9

#: Absolute floor so ``costs_equal(x, 0.0)`` is meaningful for tiny x.
COST_ABS_TOL = 1e-12


def costs_equal(
    a: float, b: float, *, rel_tol: float = COST_REL_TOL, abs_tol: float = COST_ABS_TOL
) -> bool:
    """True when two costs are equal up to tolerance (infinity compared exactly)."""
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def costs_differ(
    a: float, b: float, *, rel_tol: float = COST_REL_TOL, abs_tol: float = COST_ABS_TOL
) -> bool:
    """Negation of :func:`costs_equal`; reads better in guard clauses."""
    return not costs_equal(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def costs_close(
    a: float, b: float, *, rel_tol: float = 1e-6, abs_tol: float = 0.0
) -> bool:
    """Looser comparison used by parity probes and assignment verification.

    The probes compare costs computed by *different algorithms* (hub-label
    merge vs fresh Dijkstra), where accumulated error is larger than the
    within-backend tolerance of :func:`costs_equal`.
    """
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
