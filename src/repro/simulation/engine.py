"""The batched dynamic ridesharing simulator.

One :class:`Simulator` instance runs one algorithm over one workload:

1. requests are partitioned into batches of ``Delta`` seconds,
2. at every batch boundary the vehicles advance along their schedules,
   requests that can no longer be picked up expire (and incur the penalty),
3. world events due at the boundary are applied (scenario engine): traffic
   waves, closures/reopenings, cancellations, vehicle shifts -- and the
   oracle refresh policy decides whether the mutation burst triggers a
   backend rebuild, a Dijkstra-fallback window or a coalesced rebuild later,
4. the dispatcher is called with the pending pool and returns assignments,
5. assignments are applied to the vehicles and the grid index is refreshed,
6. after the last batch the refresh policy finalizes (no stale tail), the
   vehicles finish their remaining schedules and the final metrics are
   computed.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..config import SimulationConfig
from ..dispatch.base import DispatchContext, Dispatcher
from ..exceptions import DispatchError
from ..model.batch import Batch, BatchStream
from ..model.request import Request
from ..model.vehicle import Vehicle
from ..network.grid_index import GridIndex
from ..network.road_network import RoadNetwork
from ..network.shortest_path import DistanceOracle
from ..observability.trace import get_tracer
from ..resilience.degrade import ResilienceManager
from ..scenarios.events import WorldView
from ..scenarios.refresh import OracleRefreshPolicy, make_refresh_policy
from ..scenarios.timeline import ScenarioTimeline
from .events import Event, EventKind, EventLog
from .metrics import BatchRecord, MetricsCollector, unified_cost


@dataclass
class SimulationResult:
    """Everything a benchmark or experiment needs from one simulation run."""

    algorithm: str
    metrics: MetricsCollector
    events: EventLog
    config: SimulationConfig

    @property
    def unified_cost(self) -> float:
        """Unified cost (Equation 3) of the run."""
        return self.metrics.unified_cost

    @property
    def service_rate(self) -> float:
        """Fraction of requests assigned to vehicles."""
        return self.metrics.service_rate

    @property
    def running_time(self) -> float:
        """Total dispatching time in seconds (the paper's "running time")."""
        return self.metrics.dispatch_seconds

    def summary(self) -> dict[str, float]:
        """Flat metric dictionary, prefixed by the algorithm name elsewhere."""
        return self.metrics.summary()


@dataclass
class RunState:
    """Mutable state of one in-flight run (stepwise execution).

    Created by :meth:`Simulator.begin_run` and consumed batch by batch via
    :meth:`Simulator.process_batch` until :meth:`Simulator.end_run` closes
    the run.  The service layer (:mod:`repro.service`) drives this interface
    directly, which is why the classic :meth:`Simulator.run` is a thin loop
    over the same three calls -- service-mode and batch-mode runs execute
    identical code per batch.
    """

    metrics: MetricsCollector
    events: EventLog
    pending: dict[int, Request]
    vehicles_by_id: dict[int, Vehicle]
    #: End time of the last processed batch (the scenario drain anchor).
    last_time: float
    start_wall: float
    #: Count released requests into ``metrics.total_requests`` as batches
    #: arrive (service mode: the trace is not known up front).
    track_released: bool


# The simulator rejects positional construction: every call site names its
# collaborators (``network=``, ``oracle=``, ``config=``), the keyword
# convention shared with DistanceOracle and DispatchService.
@dataclass(kw_only=True)
class Simulator:
    """Drives one dispatcher over one workload."""

    network: RoadNetwork
    oracle: DistanceOracle
    vehicles: list[Vehicle]
    requests: list[Request]
    dispatcher: Dispatcher
    config: SimulationConfig
    average_speed: float = 10.0
    record_events: bool = True
    #: Dynamic-world scenario: timed events applied at batch boundaries.
    timeline: ScenarioTimeline | None = None
    #: How the oracle follows network mutations; a policy name or instance
    #: (defaults to ``coalesce`` whenever a timeline is present).  A bare
    #: name uses that policy's *default* knobs -- to apply a
    #: ``ScenarioConfig``'s staleness budgets / repair fraction cap, pass
    #: ``make_refresh_policy(config=scenario.config)`` instead.
    refresh_policy: OracleRefreshPolicy | str | None = None
    #: Resilience layer: retries, circuit breakers, invariant probes and
    #: dispatcher degradation (see :mod:`repro.resilience`).  ``None`` runs
    #: the classic unguarded pipeline.
    resilience: ResilienceManager | None = None
    _vehicle_index: GridIndex = field(init=False)
    _run: RunState | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if len({v.vehicle_id for v in self.vehicles}) != len(self.vehicles):
            raise DispatchError("vehicle identifiers must be unique")
        if len({r.request_id for r in self.requests}) != len(self.requests):
            raise DispatchError("request identifiers must be unique")
        if isinstance(self.refresh_policy, str):
            self.refresh_policy = make_refresh_policy(self.refresh_policy)
        if self.refresh_policy is None and self.timeline is not None:
            self.refresh_policy = make_refresh_policy("coalesce")
        self._vehicle_index = GridIndex.for_network(self.network, self.config.grid_cells)

    # ------------------------------------------------------------------ #
    @property
    def run_state(self) -> RunState:
        """The in-flight run's state (stepwise mode only)."""
        if self._run is None:
            raise DispatchError("no run in progress; call begin_run() first")
        return self._run

    def run(self) -> SimulationResult:
        """Execute the whole simulation and return the collected metrics.

        Batch mode is stepwise mode with the trace known up front: slice the
        requests into a :class:`BatchStream` and feed every batch through
        :meth:`process_batch`.
        """
        stream = BatchStream(self.requests, self.config.batch_period)
        self.begin_run(start_time=stream.start_time)
        for batch in stream:
            self.process_batch(batch)
        return self.end_run()

    def begin_run(
        self, *, start_time: float = 0.0, track_released: bool = False
    ) -> None:
        """Initialise a stepwise run (dispatcher, oracle stats, run state).

        With ``track_released`` the metrics count requests as their batches
        arrive instead of from ``self.requests`` -- service mode, where the
        trace is fed in incrementally by :class:`repro.service.DispatchService`.
        """
        if self._run is not None:
            raise DispatchError(
                "a run is already in progress; finish it with end_run() first"
            )
        start_wall = time.perf_counter()
        metrics = MetricsCollector(
            total_requests=0 if track_released else len(self.requests)
        )
        events = EventLog(max_events=200_000 if self.record_events else 0)
        self.dispatcher.reset()
        self.oracle.stats.reset()
        resilience = self.resilience
        if resilience is not None:

            def _record_resilience(
                now: float, kind: str, subject: int, other: int | None = None
            ) -> None:
                if self.record_events:
                    events.record(Event(now, EventKind(kind), subject, other))

            resilience.begin_run(recorder=_record_resilience)
            if self.refresh_policy is not None:
                self.refresh_policy.resilience = resilience

        vehicles_by_id = {vehicle.vehicle_id: vehicle for vehicle in self.vehicles}
        self._refresh_vehicle_index()
        # Original costs whose restoration found the edge closed; shared by
        # every WorldView of this run so the reopening can apply them (see
        # WorldView.cost_restores).
        self._cost_restores: dict[tuple[int, int], float] = {}
        self._run = RunState(
            metrics=metrics,
            events=events,
            pending={},
            vehicles_by_id=vehicles_by_id,
            last_time=start_time,
            start_wall=start_wall,
            track_released=track_released,
        )

    def process_batch(self, batch: Batch) -> BatchRecord | None:
        """Advance the world to ``batch.end_time`` and dispatch its pool.

        Returns the per-batch record, or ``None`` when the pending pool was
        empty and no dispatch ran (the clock still advances).
        """
        state = self.run_state
        metrics, events, pending = state.metrics, state.events, state.pending
        state.last_time = batch.end_time
        if state.track_released:
            metrics.total_requests += len(batch)
        tracer = get_tracer()
        tracer.set_sim_time(batch.end_time)
        with tracer.span("sim.advance", batch=batch.index):
            self._advance_vehicles(batch.end_time, metrics, events)
            self._expire_pending(pending, batch.end_time, metrics, events)
        for request in batch:
            pending[request.request_id] = request
            if self.record_events:
                events.record(
                    Event(request.release_time, EventKind.REQUEST_RELEASED,
                          request.request_id)
                )
        with tracer.span("scenario.step", batch=batch.index):
            self._scenario_step(
                batch.end_time, pending, state.vehicles_by_id, metrics, events
            )
        if self.resilience is not None:
            # Recovery probes + invariant probes run between the scenario
            # step (the only place corruption can be injected) and the
            # dispatch, so assignments are always priced on a
            # probe-verified oracle.
            with tracer.span("resilience.before_dispatch", batch=batch.index):
                self.resilience.before_dispatch(
                    self.network, self.oracle, batch.end_time
                )
            if (
                self.refresh_policy is not None
                and not self.oracle.serving_fallback
                and not self.oracle.is_stale
            ):
                # A breaker recovery probe may have rebuilt the oracle
                # outside the refresh policy; stop its stale clock.
                self.refresh_policy.stats.clear_stale()
        if not pending:
            return None
        record = self._dispatch_batch(
            batch, pending, state.vehicles_by_id, metrics, events
        )
        metrics.record_batch(record)
        return record

    def end_run(self) -> SimulationResult:
        """Close the run: drain the scenario tail, finish the fleet, total up.

        Fast-forwards the scenario tail -- events scheduled past the last
        batch (wave recoveries, reopenings, shift ends) are applied at the
        stream's end so paired events always balance out; a workload's
        network is shared across runs and must not stay mutated.  Then
        rebuilds anything still stale so the run's tail (vehicles finishing
        their schedules) is served from fresh structures, and lets the
        fleet finish every remaining stop.
        """
        state = self.run_state
        metrics, events, pending = state.metrics, state.events, state.pending
        last_time = state.last_time
        resilience = self.resilience
        if self.timeline is not None and self.timeline.remaining:
            self._scenario_step(
                last_time, pending, state.vehicles_by_id, metrics, events,
                drain=True,
            )
        if self.refresh_policy is not None:
            self.refresh_policy.finalize(self.oracle)
        if resilience is not None:
            resilience.finalize(self.network, self.oracle, last_time)
        self._advance_vehicles(math.inf, metrics, events)
        self._expire_pending(pending, math.inf, metrics, events)
        metrics.total_travel_time = sum(v.total_travel_time for v in self.vehicles)
        metrics.completed_requests = sum(len(v.completed) for v in self.vehicles)
        metrics.shortest_path_queries = self.oracle.stats.queries
        metrics.oracle_searches = self.oracle.stats.searches
        metrics.oracle_settled_nodes = self.oracle.stats.settled_nodes
        metrics.oracle_fallback_queries = self.oracle.stats.fallback_queries
        if self.refresh_policy is not None:
            refresh = self.refresh_policy.stats
            metrics.oracle_rebuilds = refresh.rebuilds
            metrics.oracle_rebuild_seconds = refresh.rebuild_seconds
            metrics.oracle_stale_seconds = refresh.stale_seconds
            metrics.oracle_repairs = refresh.repairs
            metrics.oracle_repair_seconds = refresh.repair_seconds
            metrics.oracle_snapshot_hits = refresh.snapshot_hits
            metrics.oracle_nodes_recontracted = refresh.nodes_recontracted
            metrics.oracle_shortcuts_replaced = refresh.shortcuts_replaced
        if resilience is not None:
            rstats = resilience.stats
            metrics.faults_injected = resilience.faults_injected
            metrics.oracle_retries = rstats.retries
            metrics.breaker_trips = resilience.breaker_trips
            metrics.degraded_batches = rstats.degraded_batches
            metrics.batch_overruns = rstats.batch_overruns
            metrics.probe_failures = rstats.probe_failures
            metrics.self_heals = rstats.self_heals
            metrics.recovery_seconds = rstats.recovery_seconds
        metrics.wall_clock_seconds = time.perf_counter() - state.start_wall
        metrics.observe_memory(self._memory_estimate())
        # ``penalty`` has been accumulated as requests expired; recompute the
        # final unified cost to make sure the invariant holds.
        assert math.isclose(
            metrics.unified_cost,
            metrics.total_travel_time + metrics.penalty,
            rel_tol=1e-9,
        )
        self._run = None
        return SimulationResult(
            algorithm=self.dispatcher.name,
            metrics=metrics,
            events=events,
            config=self.config,
        )

    # ------------------------------------------------------------------ #
    # scenario engine
    # ------------------------------------------------------------------ #
    def _scenario_step(
        self,
        now: float,
        pending: dict[int, Request],
        vehicles_by_id: dict[int, Vehicle],
        metrics: MetricsCollector,
        events: EventLog,
        *,
        drain: bool = False,
    ) -> None:
        """Apply due world events and drive the oracle refresh policy.

        With ``drain`` every remaining event is applied at ``now`` (the
        post-stream fast-forward); the per-batch policy hook is skipped then
        because ``finalize`` runs right after.
        """
        timeline, policy = self.timeline, self.refresh_policy

        def record(kind: str, subject: int, other: int | None = None) -> None:
            if self.record_events:
                events.record(Event(now, EventKind(kind), subject, other))

        if policy is not None and not drain:
            rebuilds_before = policy.stats.rebuilds
            more_due = timeline.has_due(now) if timeline is not None else False
            policy.on_batch_start(self.oracle, now, more_due)
            if policy.stats.rebuilds > rebuilds_before:
                record(EventKind.ORACLE_REBUILT.value, 0)
        if timeline is None:
            return
        due = timeline.pop_due(math.inf if drain else now)
        if not due:
            return

        world = WorldView(
            now=now,
            network=self.network,
            oracle=self.oracle,
            vehicles=self.vehicles,
            vehicles_by_id=vehicles_by_id,
            pending=pending,
            vehicle_index=self._vehicle_index,
            metrics=metrics,
            record=record,
            cost_restores=self._cost_restores,
        )
        mutations = 0
        for event in due:
            mutations += event.apply(world)
            metrics.scenario_events += 1
        if mutations and policy is not None:
            rebuilds_before = policy.stats.rebuilds
            repairs_before = policy.stats.repairs
            policy.on_mutations(self.oracle, now, mutations)
            if policy.stats.rebuilds > rebuilds_before:
                record(EventKind.ORACLE_REBUILT.value, mutations)
            if policy.stats.repairs > repairs_before:
                record(EventKind.ORACLE_REPAIRED.value, mutations)
        timeline.notify(world)

    # ------------------------------------------------------------------ #
    # batch processing
    # ------------------------------------------------------------------ #
    def _dispatch_batch(
        self,
        batch: Batch,
        pending: dict[int, Request],
        vehicles_by_id: dict[int, Vehicle],
        metrics: MetricsCollector,
        events: EventLog,
    ) -> BatchRecord:
        dispatcher = self.dispatcher
        degraded = False
        if self.resilience is not None:
            dispatcher, degraded = self.resilience.select_dispatcher(self.dispatcher)
            self.resilience.start_batch()
        context = DispatchContext(
            current_time=batch.end_time,
            batch=batch,
            pending=list(pending.values()),
            vehicles=[v for v in self.vehicles if v.on_shift],
            network=self.network,
            oracle=self.oracle,
            vehicle_index=self._vehicle_index,
            config=self.config,
            average_speed=self.average_speed,
        )
        # The span brackets exactly the same window as ``dispatch_seconds``,
        # so the dispatcher's stage spans (its direct children) sum to the
        # recorded batch latency -- the property the observability tests pin.
        dispatch_start = time.perf_counter()
        with get_tracer().span(
            "dispatch.batch",
            batch=batch.index,
            algorithm=dispatcher.name,
            pending=len(context.pending),
            vehicles=len(context.vehicles),
            degraded=degraded,
        ):
            result = dispatcher.dispatch(context)
        dispatch_seconds = time.perf_counter() - dispatch_start
        if self.resilience is not None:
            self.resilience.observe_batch(
                dispatch_seconds, degraded=degraded, now=batch.end_time
            )
            if self.resilience.config.verify_assignments:
                self.resilience.verify_assignments(
                    self.network, self.oracle, result.assignments, vehicles_by_id
                )

        assigned_ids: set[int] = set()
        for assignment in result.assignments:
            vehicle = vehicles_by_id.get(assignment.vehicle_id)
            if vehicle is None:
                raise DispatchError(
                    f"{self.dispatcher.name} assigned to unknown vehicle "
                    f"{assignment.vehicle_id}"
                )
            new_requests = [
                request
                for request in assignment.new_requests
                if request.request_id in pending
            ]
            if not new_requests:
                continue
            vehicle.assign_schedule(assignment.schedule, new_requests, batch.end_time)
            for request in new_requests:
                assigned_ids.add(request.request_id)
                del pending[request.request_id]
                if self.record_events:
                    events.record(
                        Event(batch.end_time, EventKind.REQUEST_ASSIGNED,
                              request.request_id, vehicle.vehicle_id)
                    )
        metrics.assigned_requests += len(assigned_ids)

        for request in result.rejected:
            if request.request_id in pending:
                del pending[request.request_id]
                metrics.rejected_requests += 1
                metrics.penalty += (
                    self.config.penalty_coefficient * request.direct_cost
                )
                if self.record_events:
                    events.record(
                        Event(batch.end_time, EventKind.REQUEST_REJECTED,
                              request.request_id)
                    )

        metrics.observe_memory(self._memory_estimate())
        if self.record_events:
            events.record(
                Event(batch.end_time, EventKind.BATCH_DISPATCHED, batch.index)
            )
        return BatchRecord(
            index=batch.index,
            start_time=batch.start_time,
            end_time=batch.end_time,
            released=len(batch),
            assigned=len(assigned_ids),
            pending_after=len(pending),
            dispatch_seconds=dispatch_seconds,
            degraded=degraded,
        )

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def _advance_vehicles(
        self, until: float, metrics: MetricsCollector, events: EventLog
    ) -> None:
        for vehicle in self.vehicles:
            completed = vehicle.advance_to(until, self.oracle)
            for request, drop_time in completed:
                if self.record_events:
                    events.record(
                        Event(drop_time, EventKind.REQUEST_COMPLETED,
                              request.request_id, vehicle.vehicle_id)
                    )
        self._refresh_vehicle_index()

    def _expire_pending(
        self,
        pending: dict[int, Request],
        now: float,
        metrics: MetricsCollector,
        events: EventLog,
    ) -> None:
        expired = [r for r in pending.values() if r.is_expired(now)]
        for request in expired:
            del pending[request.request_id]
            metrics.expired_requests += 1
            metrics.penalty += self.config.penalty_coefficient * request.direct_cost
            if self.record_events:
                events.record(
                    Event(now if math.isfinite(now) else request.latest_pickup,
                          EventKind.REQUEST_EXPIRED, request.request_id)
                )

    def _refresh_vehicle_index(self) -> None:
        for vehicle in self.vehicles:
            if vehicle.on_shift:
                x, y = self.network.position(vehicle.location)
                self._vehicle_index.move(vehicle.vehicle_id, x, y)
            else:
                self._vehicle_index.remove(vehicle.vehicle_id)

    def _memory_estimate(self) -> int:
        vehicles = sum(v.estimated_memory_bytes() for v in self.vehicles)
        return (
            self.dispatcher.estimated_memory_bytes()
            + self._vehicle_index.estimated_memory_bytes()
            + vehicles
        )
