"""Batched dynamic ridesharing simulator.

The simulator drives one "day" of operations: it slices the request trace
into batches, advances vehicles along their schedules between batches, calls
the dispatcher once per batch, applies the returned assignments and collects
the paper's three headline metrics (unified cost, service rate, running
time) plus the ablation counters (shortest-path queries, memory estimate).
"""

from .engine import RunState, SimulationResult, Simulator
from .events import Event, EventKind, EventLog
from .metrics import MetricsCollector, unified_cost

__all__ = [
    "Simulator",
    "SimulationResult",
    "RunState",
    "Event",
    "EventKind",
    "EventLog",
    "MetricsCollector",
    "unified_cost",
]
