"""Metric collection: unified cost, service rate, running time and counters.

The unified cost (Equation 3 of the paper) is::

    U(W, P) = alpha * sum_{w in W} travel_cost(w)  +  sum_{unserved r} p_r

with ``p_r = pr * cost(r.source, r.destination)``, i.e. the penalty of an
unserved request is proportional to its direct travel time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from ..config import SimulationConfig
from ..model.request import Request
from ..observability.registry import LATENCY_BUCKETS_S, MetricRegistry


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile over pre-sorted raw samples."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * fraction


def unified_cost(
    total_travel_time: float,
    unserved: Iterable[Request],
    config: SimulationConfig,
) -> float:
    """Equation 3: weighted travel cost plus penalties for unserved requests."""
    penalty = config.penalty_coefficient * sum(r.direct_cost for r in unserved)
    return config.alpha * total_travel_time + penalty


@dataclass
class BatchRecord:
    """Per-batch accounting used for debugging and fine-grained reporting."""

    index: int
    start_time: float
    end_time: float
    released: int
    assigned: int
    pending_after: int
    dispatch_seconds: float
    #: True when the resilience layer ran this batch on the degraded
    #: dispatcher (its dispatch breaker was open).
    degraded: bool = False


@dataclass
class MetricsCollector:
    """Mutable accumulator the simulator fills in while running."""

    total_requests: int = 0
    assigned_requests: int = 0
    completed_requests: int = 0
    expired_requests: int = 0
    rejected_requests: int = 0
    total_travel_time: float = 0.0
    penalty: float = 0.0
    dispatch_seconds: float = 0.0
    wall_clock_seconds: float = 0.0
    shortest_path_queries: int = 0
    #: Backend work behind the logical queries: searches actually executed
    #: and nodes settled / label entries scanned, straight from
    #: :class:`~repro.network.shortest_path.QueryStatistics`.  Unlike
    #: ``shortest_path_queries`` these depend on the routing backend, which
    #: is exactly why they are recorded -- ordering / preprocessing
    #: regressions show up here while the logical column stays fixed.
    oracle_searches: int = 0
    oracle_settled_nodes: int = 0
    #: Dynamic-world accounting (scenario engine): requests cancelled by
    #: riders while pending, world events applied, and the oracle refresh
    #: overhead -- full backend rebuilds with their wall-clock cost, queries
    #: served by the exact Dijkstra fallback while the preprocessed
    #: structures were dirty, and the wall-clock time spent in that stale
    #: window ("stale-serving time").
    cancelled_requests: int = 0
    scenario_events: int = 0
    oracle_rebuilds: int = 0
    oracle_rebuild_seconds: float = 0.0
    oracle_fallback_queries: int = 0
    oracle_stale_seconds: float = 0.0
    #: Incremental-repair accounting (``repair`` refresh policy): bursts
    #: absorbed without a full rebuild (snapshot swaps included) with their
    #: wall-clock cost, and the hierarchy work actually performed --
    #: nodes re-contracted and overlay effects spliced.
    oracle_repairs: int = 0
    oracle_repair_seconds: float = 0.0
    oracle_snapshot_hits: int = 0
    oracle_nodes_recontracted: int = 0
    oracle_shortcuts_replaced: int = 0
    #: Resilience-layer accounting (chaos runs; all zero otherwise): faults
    #: injected by the chaos injector, refresh retries performed, circuit
    #: breaker trips (oracle + dispatch), batches run on the degraded
    #: dispatcher, batches whose charged time overran the budget, invariant
    #: probe mismatches, self-healing rebuilds triggered by them, and the
    #: wall-clock spent inside failure handling (recovery latency).
    faults_injected: int = 0
    oracle_retries: int = 0
    breaker_trips: int = 0
    degraded_batches: int = 0
    batch_overruns: int = 0
    probe_failures: int = 0
    self_heals: int = 0
    recovery_seconds: float = 0.0
    peak_memory_bytes: int = 0
    num_batches: int = 0
    proposal_rounds: int = 0
    batch_records: list[BatchRecord] = field(default_factory=list)

    @property
    def service_rate(self) -> float:
        """Fraction of requests assigned to a vehicle (the paper's metric)."""
        if self.total_requests == 0:
            return 0.0
        return self.assigned_requests / self.total_requests

    @property
    def unified_cost(self) -> float:
        """Unified cost computed from the accumulated travel time and penalty."""
        return self.total_travel_time + self.penalty

    def record_batch(self, record: BatchRecord) -> None:
        """Register per-batch accounting."""
        self.batch_records.append(record)
        self.num_batches += 1
        self.dispatch_seconds += record.dispatch_seconds

    def observe_memory(self, estimate_bytes: int) -> None:
        """Track the peak estimated working-set size."""
        self.peak_memory_bytes = max(self.peak_memory_bytes, estimate_bytes)

    def dispatch_latency(self) -> dict[str, float]:
        """Per-batch dispatch-latency distribution (p50 / p95 / max seconds).

        Computed from the raw :class:`BatchRecord` samples so the tails are
        exact, not bucketed -- a single slow batch (an oracle rebuild landing
        inside the dispatch window, a degraded-mode fallback) shows up in
        ``max`` even when the medians look healthy.
        """
        samples = sorted(record.dispatch_seconds for record in self.batch_records)
        return {
            "dispatch_p50_seconds": _percentile(samples, 50.0),
            "dispatch_p95_seconds": _percentile(samples, 95.0),
            "dispatch_max_seconds": samples[-1] if samples else 0.0,
        }

    def as_registry(self) -> MetricRegistry:
        """Export the collected metrics as a typed registry.

        This is the facade bridge to :mod:`repro.observability`: every scalar
        counter becomes a registry counter, the distribution-worthy fields
        become gauges, and the per-batch dispatch latencies populate a
        histogram -- so :func:`repro.observability.prometheus_text` can
        render a finished run without the collector knowing about exposition
        formats.
        """
        registry = MetricRegistry()
        counters = {
            "requests.total": (self.total_requests, "Requests released"),
            "requests.assigned": (self.assigned_requests, "Requests assigned"),
            "requests.completed": (self.completed_requests, "Requests completed"),
            "requests.expired": (self.expired_requests, "Requests expired unserved"),
            "requests.cancelled": (self.cancelled_requests, "Requests cancelled"),
            "oracle.queries": (
                self.shortest_path_queries, "Logical shortest-path queries"
            ),
            "oracle.searches": (self.oracle_searches, "Backend searches executed"),
            "oracle.settled_nodes": (
                self.oracle_settled_nodes, "Nodes settled / label entries scanned"
            ),
            "oracle.rebuilds": (self.oracle_rebuilds, "Full oracle rebuilds"),
            "oracle.repairs": (self.oracle_repairs, "Incremental oracle repairs"),
            "oracle.fallback_queries": (
                self.oracle_fallback_queries, "Queries served by the Dijkstra fallback"
            ),
            "scenario.events": (self.scenario_events, "World events applied"),
            "resilience.faults_injected": (self.faults_injected, "Faults injected"),
            "resilience.breaker_trips": (self.breaker_trips, "Circuit-breaker trips"),
            "resilience.degraded_batches": (
                self.degraded_batches, "Batches run on the degraded dispatcher"
            ),
            "sim.batches": (self.num_batches, "Dispatch batches run"),
        }
        for name, (value, description) in counters.items():
            registry.counter(name, description).inc(value)
        gauges = {
            "sim.service_rate": (self.service_rate, "Fraction of requests assigned"),
            "sim.unified_cost": (self.unified_cost, "Unified cost (Equation 3)"),
            "sim.peak_memory_bytes": (
                float(self.peak_memory_bytes), "Peak estimated working set"
            ),
            "sim.wall_clock_seconds": (
                self.wall_clock_seconds, "End-to-end run wall clock"
            ),
        }
        for name, (value, description) in gauges.items():
            registry.gauge(name, description).set(value)
        latency = registry.histogram(
            "dispatch.batch_seconds",
            "Per-batch dispatch latency",
            buckets=LATENCY_BUCKETS_S,
        )
        for record in self.batch_records:
            latency.observe(record.dispatch_seconds)
        return registry

    def summary(self) -> dict[str, float]:
        """Flat dictionary used by the reporting layer."""
        return {
            "total_requests": float(self.total_requests),
            "assigned_requests": float(self.assigned_requests),
            "completed_requests": float(self.completed_requests),
            "expired_requests": float(self.expired_requests),
            "service_rate": self.service_rate,
            "total_travel_time": self.total_travel_time,
            "penalty": self.penalty,
            "unified_cost": self.unified_cost,
            "dispatch_seconds": self.dispatch_seconds,
            "wall_clock_seconds": self.wall_clock_seconds,
            "shortest_path_queries": float(self.shortest_path_queries),
            "oracle_searches": float(self.oracle_searches),
            "oracle_settled_nodes": float(self.oracle_settled_nodes),
            "cancelled_requests": float(self.cancelled_requests),
            "scenario_events": float(self.scenario_events),
            "oracle_rebuilds": float(self.oracle_rebuilds),
            "oracle_rebuild_seconds": self.oracle_rebuild_seconds,
            "oracle_fallback_queries": float(self.oracle_fallback_queries),
            "oracle_stale_seconds": self.oracle_stale_seconds,
            "oracle_repairs": float(self.oracle_repairs),
            "oracle_repair_seconds": self.oracle_repair_seconds,
            "oracle_snapshot_hits": float(self.oracle_snapshot_hits),
            "oracle_nodes_recontracted": float(self.oracle_nodes_recontracted),
            "oracle_shortcuts_replaced": float(self.oracle_shortcuts_replaced),
            "faults_injected": float(self.faults_injected),
            "oracle_retries": float(self.oracle_retries),
            "breaker_trips": float(self.breaker_trips),
            "degraded_batches": float(self.degraded_batches),
            "batch_overruns": float(self.batch_overruns),
            "probe_failures": float(self.probe_failures),
            "self_heals": float(self.self_heals),
            "recovery_seconds": self.recovery_seconds,
            "peak_memory_bytes": float(self.peak_memory_bytes),
            "num_batches": float(self.num_batches),
            **self.dispatch_latency(),
        }
