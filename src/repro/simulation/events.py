"""Lightweight event log for simulation runs.

Events are informational: they let tests and examples inspect *why* a run
produced its metrics (which requests expired, when vehicles picked riders
up) without the simulator having to expose its internals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Iterator


class EventKind(enum.Enum):
    """The kinds of events recorded during a simulation."""

    REQUEST_RELEASED = "request_released"
    REQUEST_ASSIGNED = "request_assigned"
    REQUEST_COMPLETED = "request_completed"
    REQUEST_EXPIRED = "request_expired"
    REQUEST_REJECTED = "request_rejected"
    BATCH_DISPATCHED = "batch_dispatched"
    # Dynamic-world scenario events (values match the kind strings world
    # events emit; see :mod:`repro.scenarios.events`).
    REQUEST_CANCELLED = "request_cancelled"
    EDGES_RESCALED = "edges_rescaled"
    ROAD_CLOSED = "road_closed"
    ROAD_REOPENED = "road_reopened"
    VEHICLE_SHIFT_STARTED = "vehicle_shift_started"
    VEHICLE_SHIFT_ENDED = "vehicle_shift_ended"
    ORACLE_REBUILT = "oracle_rebuilt"
    ORACLE_REPAIRED = "oracle_repaired"
    # Resilience-layer events (values match the kind strings the
    # :class:`repro.resilience.degrade.ResilienceManager` emits; ``subject``
    # is the breaker index for breaker events -- 0 oracle, 1 dispatch --
    # the retry attempt for ORACLE_RETRY and the failing-pair count for
    # PROBE_FAILED / ORACLE_SELF_HEALED).
    ORACLE_RETRY = "oracle_retry"
    BREAKER_OPENED = "breaker_opened"
    BREAKER_CLOSED = "breaker_closed"
    DISPATCH_DEGRADED = "dispatch_degraded"
    PROBE_FAILED = "probe_failed"
    ORACLE_SELF_HEALED = "oracle_self_healed"


@dataclass(frozen=True)
class Event:
    """One timestamped simulation event."""

    time: float
    kind: EventKind
    #: Request id, vehicle id or batch index depending on the kind.
    subject: int
    #: Secondary identifier (e.g. the vehicle serving an assigned request).
    other: int | None = None


@dataclass
class EventLog:
    """Append-only list of events with small query helpers."""

    events: list[Event] = field(default_factory=list)
    #: Hard cap to keep memory bounded on large runs; ``None`` disables it.
    max_events: int | None = 200_000
    #: Events rejected because the cap was reached -- so a truncated log is
    #: detectable (a zero count for some kind may just mean it was dropped).
    dropped: int = 0

    def record(self, event: Event) -> None:
        """Append an event (counted in :attr:`dropped` once the cap is hit)."""
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def of_kind(
        self,
        kind: EventKind,
        *,
        start: float | None = None,
        end: float | None = None,
    ) -> list[Event]:
        """All recorded events of one kind, optionally clipped to a window.

        ``start`` / ``end`` are inclusive bounds on the event time; either
        side may be omitted for a half-open window.
        """
        return [
            event
            for event in self.events
            if event.kind is kind
            and (start is None or event.time >= start)
            and (end is None or event.time <= end)
        ]

    def in_window(self, start: float, end: float) -> list[Event]:
        """Every event with ``start <= time <= end``, in record order."""
        if end < start:
            raise ValueError(f"empty window: start={start} > end={end}")
        return [event for event in self.events if start <= event.time <= end]

    def count(self, kind: EventKind) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for event in self.events if event.kind is kind)

    def counts_by_kind(self) -> dict[EventKind, int]:
        """Histogram of recorded events over the kinds actually present."""
        counts: dict[EventKind, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
