"""Exception hierarchy for the StructRide reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with one ``except`` clause while still being able to
distinguish configuration problems from infeasible-schedule conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """Raised when a configuration value is missing, inconsistent or invalid."""


#: Short alias used throughout the scenario engine docs and messages.
ConfigError = ConfigurationError


class ScenarioError(ReproError):
    """Raised when a scenario timeline or world event is inconsistent."""


class NetworkError(ReproError):
    """Raised for malformed road networks (unknown nodes, negative costs, ...)."""


class UnreachableError(NetworkError):
    """Raised when a shortest-path query is made between disconnected nodes."""


class ScheduleError(ReproError):
    """Raised when a schedule violates a structural constraint."""


class InfeasibleInsertionError(ScheduleError):
    """Raised when a request cannot be inserted into a schedule feasibly."""


class DispatchError(ReproError):
    """Raised when a dispatcher receives inconsistent simulation state."""


class WorkloadError(ReproError):
    """Raised when a workload generator cannot satisfy the requested shape."""


class ResilienceError(ReproError):
    """Raised when the resilience layer cannot keep a run serviceable.

    This is the terminal error of the degradation ladder: every rung below
    it (retry, eager rebuild, exact Dijkstra fallback, self-healing probe
    rebuild) has been exhausted and the oracle still cannot serve exact
    costs.
    """


class OracleBuildError(ResilienceError):
    """Raised when an oracle rebuild keeps failing after retry is exhausted."""


class OracleRepairError(ResilienceError):
    """Raised when an incremental repair keeps failing after retry is exhausted."""


class ServiceError(ReproError):
    """Raised when the dispatch service is driven outside its lifecycle.

    Examples: submitting to a service that was never started, ticking a
    stopped service, or a drain that exceeds the configured batch budget.
    """


class SchemaError(ServiceError):
    """Raised when a service request/response payload fails validation.

    Covers both construction-time validation (a :class:`RideRequest` with
    zero riders) and wire-format problems (unknown fields, an incompatible
    ``schema_version``, malformed JSON).
    """


class InjectedFaultError(ReproError):
    """Raised by the fault injector to simulate a backend build/repair crash.

    Deliberately *not* a :class:`ResilienceError`: injected faults model the
    transient failures the retry/degradation machinery is supposed to absorb,
    so they must be caught by the same handlers that catch real backend
    errors, not by handlers watching for resilience exhaustion.
    """
