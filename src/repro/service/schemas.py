"""Typed, versioned request/response/event models of the dispatch service.

The service boundary speaks these schemas instead of the internal data
model: a :class:`RideRequest` is what a client submits, an
:class:`AssignmentEvent` is what streams back out, and a
:class:`ServiceStats` snapshot is what the stats endpoint returns.  All
three are dependency-free dataclasses mirroring the pydantic
request/response shape of the NES-Van-Route service (SNIPPETS.md Snippet
3): field validation at construction, explicit ``schema_version`` stamps,
and loss-free ``dict`` / JSON round-trips.

Stability policy (documented in DESIGN.md): within one major
``SCHEMA_VERSION`` fields are only ever *added* with defaults, so payloads
written by an older minor revision keep parsing; an incompatible change
bumps the version and :func:`check_schema_version` rejects the mismatch
loudly instead of misreading the payload.
"""

from __future__ import annotations

import enum
import json
import math
from dataclasses import asdict, dataclass, fields
from typing import Any

from ..config import SimulationConfig
from ..exceptions import SchemaError, UnreachableError
from ..model.request import Request
from ..network.shortest_path import DistanceOracle

#: Major version stamped on every payload this module writes.
SCHEMA_VERSION = 1


def check_schema_version(payload: dict[str, Any], *, kind: str) -> None:
    """Reject payloads written by an incompatible schema major version."""
    version = payload.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int) or version < 1:
        raise SchemaError(f"{kind}: schema_version must be a positive integer")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"{kind}: incompatible schema_version {version} "
            f"(this build speaks version {SCHEMA_VERSION})"
        )


def _from_payload(cls: type, payload: dict[str, Any], *, kind: str) -> Any:
    """Shared ``from_dict`` body: version gate + unknown-key rejection."""
    if not isinstance(payload, dict):
        raise SchemaError(f"{kind}: payload must be an object")
    check_schema_version(payload, kind=kind)
    known = {field.name for field in fields(cls)}
    unknown = [key for key in payload if key not in known]
    if unknown:
        raise SchemaError(f"{kind}: unknown fields {sorted(unknown)!r}")
    return cls(**payload)


def _loads(text: str, *, kind: str) -> dict[str, Any]:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{kind}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SchemaError(f"{kind}: JSON payload must be an object")
    return payload


class RejectionReason(enum.Enum):
    """Why the service refused (or failed) to serve a request."""

    #: The ingestion queue was full and the admission policy is ``reject``.
    QUEUE_FULL = "queue_full"
    #: The queue was full and ``drop_oldest`` shed this (older) request.
    SHED_OLDEST = "shed_oldest"
    #: A request with the same ``request_id`` was already admitted.
    DUPLICATE_REQUEST = "duplicate_request"
    #: Origin or destination is not a node of the service's road network.
    UNKNOWN_NODE = "unknown_node"
    #: No route exists from origin to destination.
    UNREACHABLE = "unreachable"
    #: The service is shutting down and no longer admits requests.
    SHUTTING_DOWN = "shutting_down"
    #: The dispatcher rejected the request (online baselines reject
    #: requests they cannot place immediately).
    DISPATCH_REJECTED = "dispatch_rejected"
    #: The request expired in the pending pool before any pick-up fit.
    EXPIRED = "expired"


class AssignmentEventKind(enum.Enum):
    """Lifecycle stages an admitted request streams to subscribers."""

    ASSIGNED = "assigned"
    REJECTED = "rejected"
    EXPIRED = "expired"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class RideRequest:
    """One ride request as submitted over the service boundary.

    Only the trip itself is mandatory; ``deadline`` / ``direct_cost`` /
    ``max_wait`` may be supplied by the client (replay of a recorded trace
    keeps batch-mode parity exact) or left ``None`` for the service to
    derive from its oracle and simulation configuration at admission.
    """

    request_id: int
    origin: int
    destination: int
    release_time: float
    riders: int = 1
    max_wait: float | None = None
    deadline: float | None = None
    direct_cost: float | None = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise SchemaError("request_id must be non-negative")
        if self.origin < 0 or self.destination < 0:
            raise SchemaError(
                f"request {self.request_id}: node ids must be non-negative"
            )
        if self.riders < 1:
            raise SchemaError(
                f"request {self.request_id} must carry at least one rider"
            )
        if not math.isfinite(self.release_time):
            raise SchemaError(
                f"request {self.request_id}: release_time must be finite"
            )
        if self.max_wait is not None and self.max_wait < 0:
            raise SchemaError(
                f"request {self.request_id}: max_wait must be non-negative"
            )
        if self.deadline is not None and self.deadline < self.release_time:
            raise SchemaError(
                f"request {self.request_id}: deadline precedes release_time"
            )
        if self.direct_cost is not None and (
            not math.isfinite(self.direct_cost) or self.direct_cost < 0
        ):
            raise SchemaError(
                f"request {self.request_id}: direct_cost must be finite "
                "and non-negative"
            )
        if self.schema_version != SCHEMA_VERSION:
            raise SchemaError(
                f"request {self.request_id}: incompatible schema_version "
                f"{self.schema_version} (this build speaks {SCHEMA_VERSION})"
            )

    # ------------------------------------------------------------------ #
    # wire format
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict payload (JSON-safe, round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RideRequest":
        """Parse a payload, rejecting unknown fields and version mismatches."""
        return _from_payload(cls, payload, kind="RideRequest")

    def to_json(self) -> str:
        """JSON string of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RideRequest":
        """Parse a JSON string written by :meth:`to_json`."""
        return cls.from_dict(_loads(text, kind="RideRequest"))

    # ------------------------------------------------------------------ #
    # bridges to the internal data model
    # ------------------------------------------------------------------ #
    @classmethod
    def from_request(cls, request: Request) -> "RideRequest":
        """Wrap an internal :class:`~repro.model.request.Request` loss-free.

        Deadline, direct cost and waiting budget are carried along, so
        converting back with :meth:`to_request` reproduces the request
        exactly -- the property the service/batch parity gate relies on.
        """
        return cls(
            request_id=request.request_id,
            origin=request.source,
            destination=request.destination,
            release_time=request.release_time,
            riders=request.riders,
            max_wait=request.max_wait,
            deadline=request.deadline,
            direct_cost=request.direct_cost,
        )

    def to_request(
        self, *, oracle: DistanceOracle, config: SimulationConfig
    ) -> Request:
        """Materialise the internal request the dispatcher operates on.

        Missing fields are derived the same way the workload generator
        derives them: ``direct_cost`` from the service oracle,
        ``deadline = release + gamma * direct_cost`` and ``max_wait`` from
        the simulation configuration.  Raises
        :class:`~repro.exceptions.UnreachableError` when no route exists.
        """
        direct_cost = self.direct_cost
        if direct_cost is None:
            direct_cost = oracle.cost(self.origin, self.destination)
            if math.isinf(direct_cost):
                raise UnreachableError(
                    f"request {self.request_id}: no route "
                    f"{self.origin} -> {self.destination}"
                )
        deadline = self.deadline
        if deadline is None:
            deadline = self.release_time + config.gamma * direct_cost
        max_wait = self.max_wait
        if max_wait is None:
            max_wait = config.max_wait
        return Request(
            request_id=self.request_id,
            source=self.origin,
            destination=self.destination,
            riders=self.riders,
            release_time=self.release_time,
            deadline=deadline,
            direct_cost=direct_cost,
            max_wait=max_wait,
        )


@dataclass(frozen=True)
class AssignmentEvent:
    """One lifecycle event of an admitted request, streamed to subscribers."""

    event: AssignmentEventKind
    time: float
    request_id: int
    #: Serving vehicle for ``assigned`` / ``completed`` events.
    vehicle_id: int | None = None
    #: Index of the dispatch batch that produced the event, when batch-bound.
    batch_index: int | None = None
    #: Rejection reason for ``rejected`` / ``expired`` events.
    reason: RejectionReason | None = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not isinstance(self.event, AssignmentEventKind):
            raise SchemaError(f"event must be an AssignmentEventKind, got {self.event!r}")
        if self.reason is not None and not isinstance(self.reason, RejectionReason):
            raise SchemaError(f"reason must be a RejectionReason, got {self.reason!r}")
        if not math.isfinite(self.time):
            raise SchemaError("event time must be finite")
        if self.request_id < 0:
            raise SchemaError("request_id must be non-negative")
        if self.event is AssignmentEventKind.ASSIGNED and self.vehicle_id is None:
            raise SchemaError(
                f"assigned event for request {self.request_id} needs a vehicle_id"
            )
        if self.schema_version != SCHEMA_VERSION:
            raise SchemaError(
                f"incompatible schema_version {self.schema_version} "
                f"(this build speaks {SCHEMA_VERSION})"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict payload with enums flattened to their wire values."""
        payload = asdict(self)
        payload["event"] = self.event.value
        payload["reason"] = self.reason.value if self.reason is not None else None
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AssignmentEvent":
        """Parse a payload written by :meth:`to_dict`."""
        if not isinstance(payload, dict):
            raise SchemaError("AssignmentEvent: payload must be an object")
        payload = dict(payload)
        try:
            if "event" in payload:
                payload["event"] = AssignmentEventKind(payload["event"])
            if payload.get("reason") is not None:
                payload["reason"] = RejectionReason(payload["reason"])
        except ValueError as exc:
            raise SchemaError(f"AssignmentEvent: {exc}") from exc
        return _from_payload(cls, payload, kind="AssignmentEvent")

    def to_json(self) -> str:
        """JSON string of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AssignmentEvent":
        """Parse a JSON string written by :meth:`to_json`."""
        return cls.from_dict(_loads(text, kind="AssignmentEvent"))


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time snapshot returned by the service's stats endpoint."""

    #: Requests offered to the service (accepted + rejected at admission).
    received: int = 0
    #: Requests admitted into the ingestion queue.
    accepted: int = 0
    #: Admission rejections by :class:`RejectionReason` wire value.
    rejected: dict[str, int] | None = None
    #: Requests assigned to a vehicle so far.
    assigned: int = 0
    #: Requests dropped off so far.
    completed: int = 0
    #: Requests that expired in the pending pool.
    expired: int = 0
    #: Requests the dispatcher rejected outright.
    dispatch_rejected: int = 0
    #: Dispatch batches processed.
    batches: int = 0
    #: Requests currently queued, and the queue's high-water mark.
    queue_depth: int = 0
    queue_high_watermark: int = 0
    #: Assignment events dropped because the history buffer was full.
    events_dropped: int = 0
    #: Virtual time of the last processed batch boundary.
    sim_time: float = 0.0
    #: Assigned / accepted so far (1.0 while nothing was accepted yet).
    service_rate: float = 1.0
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        for name in (
            "received", "accepted", "assigned", "completed", "expired",
            "dispatch_rejected", "batches", "queue_depth",
            "queue_high_watermark", "events_dropped",
        ):
            if getattr(self, name) < 0:
                raise SchemaError(f"{name} must be non-negative")
        if not 0.0 <= self.service_rate <= 1.0:
            raise SchemaError(
                f"service_rate must be in [0, 1] (got {self.service_rate})"
            )
        if self.schema_version != SCHEMA_VERSION:
            raise SchemaError(
                f"incompatible schema_version {self.schema_version} "
                f"(this build speaks {SCHEMA_VERSION})"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict payload (JSON-safe, round-trips via :meth:`from_dict`)."""
        payload = asdict(self)
        payload["rejected"] = dict(self.rejected or {})
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ServiceStats":
        """Parse a payload written by :meth:`to_dict`."""
        return _from_payload(cls, payload, kind="ServiceStats")

    def to_json(self) -> str:
        """JSON string of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServiceStats":
        """Parse a JSON string written by :meth:`to_json`."""
        return cls.from_dict(_loads(text, kind="ServiceStats"))


__all__ = [
    "SCHEMA_VERSION",
    "AssignmentEvent",
    "AssignmentEventKind",
    "RejectionReason",
    "RideRequest",
    "ServiceStats",
    "check_schema_version",
]
