"""The dispatch service: a long-lived, event-streaming front of the simulator.

:class:`DispatchService` turns the batch :class:`~repro.simulation.Simulator`
into a request/response service: clients submit typed
:class:`~repro.service.schemas.RideRequest` payloads through a bounded
:class:`~repro.service.queue.IngestionQueue`, a virtual-clock batch tick
drains everything due into the dispatcher, and typed
:class:`~repro.service.schemas.AssignmentEvent` records stream to
subscribers.  Health and stats endpoints expose the run through the
observability registry (PR 8) and the resilience breaker states (PR 6).

Parity with batch mode is by construction, not by re-implementation: the
service drives the simulator's stepwise interface (``begin_run`` /
``process_batch`` / ``end_run``) -- the very calls ``Simulator.run`` makes
-- and its tick builds batch windows with the same alignment rule as
:class:`~repro.model.batch.BatchStream` (first window starts at
``floor(first_release / Delta) * Delta``; half-open ``[start, end)``
membership; empty windows between occupied ones are processed too).  Feed
the same trace through :meth:`DispatchService.serve` and through
``Simulator.run`` and the assignments are identical.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from ..config import ServiceConfig, SimulationConfig
from ..dispatch.base import Dispatcher
from ..exceptions import ServiceError, UnreachableError
from ..model.batch import Batch
from ..model.request import Request
from ..model.vehicle import Vehicle
from ..network.road_network import RoadNetwork
from ..network.shortest_path import DistanceOracle
from ..observability.registry import MetricRegistry
from ..resilience.degrade import BreakerState, ResilienceManager
from ..scenarios.refresh import OracleRefreshPolicy
from ..scenarios.timeline import ScenarioTimeline
from ..simulation.engine import SimulationResult, Simulator
from ..simulation.events import EventKind, EventLog
from ..simulation.metrics import BatchRecord, MetricsCollector
from .queue import Admission, IngestionQueue
from .schemas import (
    AssignmentEvent,
    AssignmentEventKind,
    RejectionReason,
    RideRequest,
    ServiceStats,
)

#: How simulator event-log kinds translate to service assignment events:
#: ``kind -> (service kind, rejection reason, other-field-is-vehicle)``.
#: Read-only constant -- per-run state lives on the service instance.
_EVENT_MAP: dict[
    EventKind, tuple[AssignmentEventKind, RejectionReason | None, bool]
] = {
    EventKind.REQUEST_ASSIGNED: (AssignmentEventKind.ASSIGNED, None, True),
    EventKind.REQUEST_COMPLETED: (AssignmentEventKind.COMPLETED, None, True),
    EventKind.REQUEST_EXPIRED: (
        AssignmentEventKind.EXPIRED, RejectionReason.EXPIRED, False
    ),
    EventKind.REQUEST_REJECTED: (
        AssignmentEventKind.REJECTED, RejectionReason.DISPATCH_REJECTED, False
    ),
    EventKind.REQUEST_CANCELLED: (AssignmentEventKind.CANCELLED, None, False),
}


@dataclass(frozen=True)
class ServiceResult:
    """Everything a service run produced, returned by ``shutdown``/``serve``."""

    #: The underlying simulation result (metrics, event log, config).
    simulation: SimulationResult
    #: Final admission/throughput snapshot.
    stats: ServiceStats
    #: Retained assignment-event history (bounded by ``event_history``).
    events: tuple[AssignmentEvent, ...]
    #: The service-rate objective the run was held to.
    slo_service_rate: float

    @property
    def unified_cost(self) -> float:
        """Unified cost (Equation 3) of the underlying run."""
        return self.simulation.unified_cost

    @property
    def service_rate(self) -> float:
        """Assigned / accepted requests (the service-boundary rate)."""
        return self.stats.service_rate

    @property
    def slo_met(self) -> bool:
        """True when the run's service rate reached the configured SLO."""
        return self.stats.service_rate >= self.slo_service_rate


class DispatchService:
    """Long-lived dispatch loop: admit, batch on a virtual clock, stream.

    Construction is keyword-only and uses the same collaborator names as
    :class:`~repro.simulation.Simulator` and
    :class:`~repro.network.shortest_path.DistanceOracle` (``network=``,
    ``oracle=``, ``config=``).  A service instance runs once:
    :meth:`start`, any number of :meth:`submit` / :meth:`tick` rounds,
    :meth:`shutdown`; construct a new instance for a new run.
    """

    def __init__(
        self,
        *,
        network: RoadNetwork,
        oracle: DistanceOracle,
        vehicles: list[Vehicle],
        dispatcher: Dispatcher,
        config: SimulationConfig,
        service_config: ServiceConfig | None = None,
        timeline: ScenarioTimeline | None = None,
        refresh_policy: OracleRefreshPolicy | str | None = None,
        resilience: ResilienceManager | None = None,
        average_speed: float = 10.0,
        record_events: bool = True,
    ) -> None:
        self.network = network
        self.oracle = oracle
        self.config = config
        self.service_config = service_config or ServiceConfig()
        self._sim = Simulator(
            network=network,
            oracle=oracle,
            vehicles=vehicles,
            requests=[],
            dispatcher=dispatcher,
            config=config,
            average_speed=average_speed,
            record_events=record_events,
            timeline=timeline,
            refresh_policy=refresh_policy,
            resilience=resilience,
        )
        self._queue = IngestionQueue(
            capacity=self.service_config.queue_capacity,
            policy=self.service_config.admission_policy,
        )
        self._started = False
        self._stopped = False
        self._result: ServiceResult | None = None
        self._final_metrics: MetricsCollector | None = None
        #: Start of the next batch window; aligned on the first tick.
        self._next_start: float | None = None
        self._next_index = 0
        self._batches = 0
        self._sim_time = 0.0
        #: Read cursor into the simulator's event log (service translation).
        self._event_log: EventLog | None = None
        self._event_cursor = 0
        self._history: deque[AssignmentEvent] = deque(
            maxlen=self.service_config.event_history or None
        )
        self._retain_history = self.service_config.event_history > 0
        self._events_dropped = 0
        self._subscribers: list[Callable[[AssignmentEvent], None]] = []

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        """True once :meth:`start` ran (stays true after shutdown)."""
        return self._started

    @property
    def stopped(self) -> bool:
        """True once :meth:`shutdown` completed."""
        return self._stopped

    @property
    def queue(self) -> IngestionQueue:
        """The ingestion queue (introspection; submit via the service)."""
        return self._queue

    @property
    def vehicles(self) -> list[Vehicle]:
        """The fleet the service dispatches over."""
        return self._sim.vehicles

    @property
    def dispatcher(self) -> Dispatcher:
        """The primary dispatcher."""
        return self._sim.dispatcher

    def start(self) -> None:
        """Begin the run: reset collaborators, open the dispatch loop."""
        if self._stopped:
            raise ServiceError(
                "service instances run once; construct a new DispatchService"
            )
        if self._started:
            raise ServiceError("service already started")
        self._sim.begin_run(track_released=True)
        self._event_log = self._sim.run_state.events
        self._started = True

    def shutdown(self) -> ServiceResult:
        """Stop admitting, drain (per config), close the run, total up.

        With ``drain_on_shutdown`` every queued request still gets its
        dispatch opportunity (the virtual clock ticks forward until the
        queue is empty, capped at ``max_drain_batches``); otherwise the
        queue's remainder is rejected with
        :attr:`RejectionReason.SHUTTING_DOWN`.
        """
        self._require_running()
        self._queue.close()
        if self.service_config.drain_on_shutdown:
            drained = 0
            while self._queue.depth > 0:
                if drained >= self.service_config.max_drain_batches:
                    raise ServiceError(
                        f"shutdown drain exceeded max_drain_batches="
                        f"{self.service_config.max_drain_batches} with "
                        f"{self._queue.depth} request(s) still queued"
                    )
                self.tick()
                drained += 1
        else:
            for ride in self._queue.take_due(math.inf):
                self._queue.counters.reject(RejectionReason.SHUTTING_DOWN)
                self._emit(AssignmentEvent(
                    event=AssignmentEventKind.REJECTED,
                    time=max(self._sim_time, ride.release_time),
                    request_id=ride.request_id,
                    reason=RejectionReason.SHUTTING_DOWN,
                ))
        simulation = self._sim.end_run()
        self._final_metrics = simulation.metrics
        self._pump_events(batch_index=None)
        self._stopped = True
        self._result = ServiceResult(
            simulation=simulation,
            stats=self.stats(),
            events=tuple(self._history),
            slo_service_rate=self.service_config.slo_service_rate,
        )
        return self._result

    @property
    def result(self) -> ServiceResult:
        """The finished run's result (only after :meth:`shutdown`)."""
        if self._result is None:
            raise ServiceError("service has not been shut down yet")
        return self._result

    def _require_running(self) -> None:
        if not self._started:
            raise ServiceError("service not started; call start() first")
        if self._stopped:
            raise ServiceError("service already stopped")

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit(self, request: RideRequest | Request) -> Admission:
        """Offer one request for admission (non-blocking).

        Internal :class:`~repro.model.request.Request` objects are wrapped
        loss-free; payloads whose endpoints are not nodes of the service's
        road network are refused with :attr:`RejectionReason.UNKNOWN_NODE`
        before touching the queue.  Every rejection (including a request
        shed under ``drop_oldest``) is also streamed as a ``rejected``
        assignment event.
        """
        self._require_running()
        ride = self._coerce(request)
        invalid = self._validate_nodes(ride)
        if invalid is not None:
            return invalid
        admission = self._queue.offer(ride)
        self._emit_admission(ride, admission)
        return admission

    async def asubmit(self, request: RideRequest | Request) -> Admission:
        """Admit one request, awaiting while the queue is full.

        The async twin of :meth:`submit`: under the ``reject`` policy a
        full queue blocks the submitter (backpressure) until a tick frees
        space, instead of returning a ``QUEUE_FULL`` rejection.
        """
        self._require_running()
        ride = self._coerce(request)
        invalid = self._validate_nodes(ride)
        if invalid is not None:
            return invalid
        admission = await self._queue.put(ride)
        self._emit_admission(ride, admission)
        return admission

    def _coerce(self, request: RideRequest | Request) -> RideRequest:
        if isinstance(request, Request):
            return RideRequest.from_request(request)
        return request

    def _validate_nodes(self, ride: RideRequest) -> Admission | None:
        if self.network.has_node(ride.origin) and self.network.has_node(
            ride.destination
        ):
            return None
        admission = self._queue.refuse(RejectionReason.UNKNOWN_NODE)
        self._emit(AssignmentEvent(
            event=AssignmentEventKind.REJECTED,
            time=ride.release_time,
            request_id=ride.request_id,
            reason=RejectionReason.UNKNOWN_NODE,
        ))
        return admission

    def _emit_admission(self, ride: RideRequest, admission: Admission) -> None:
        if admission.shed is not None:
            self._emit(AssignmentEvent(
                event=AssignmentEventKind.REJECTED,
                time=max(self._sim_time, admission.shed.release_time),
                request_id=admission.shed.request_id,
                reason=RejectionReason.SHED_OLDEST,
            ))
        if not admission.accepted and admission.reason is not None:
            self._emit(AssignmentEvent(
                event=AssignmentEventKind.REJECTED,
                time=ride.release_time,
                request_id=ride.request_id,
                reason=admission.reason,
            ))

    # ------------------------------------------------------------------ #
    # the batch tick
    # ------------------------------------------------------------------ #
    def tick(self) -> BatchRecord | None:
        """Process the next batch window on the virtual clock.

        A no-op while the queue is empty.  Otherwise the window
        ``[next_start, next_start + Delta)`` is built exactly like
        :class:`~repro.model.batch.BatchStream` builds it (the first window
        is aligned to ``floor(first_release / Delta) * Delta``), its due
        requests are materialised against the service oracle and fed
        through ``Simulator.process_batch`` -- empty windows between
        occupied ones are processed too, so pending-pool retries and
        scenario steps happen exactly as in batch mode.  Returns the batch
        record, or ``None`` when no dispatch ran.
        """
        self._require_running()
        if self._queue.depth == 0:
            return None
        period = self.config.batch_period
        if self._next_start is None:
            first = self._queue.peek_next_release()
            assert first is not None  # depth > 0
            self._next_start = math.floor(first / period) * period
        start = self._next_start
        end = start + period
        index = self._next_index
        requests: list[Request] = []
        for ride in self._queue.take_due(end):
            converted = self._materialise(ride, index, end)
            if converted is not None:
                requests.append(converted)
        batch = Batch(
            index=index, start_time=start, end_time=end,
            requests=tuple(requests),
        )
        record = self._sim.process_batch(batch)
        self._next_start = end
        self._next_index += 1
        self._batches += 1
        self._sim_time = end
        self._pump_events(batch_index=index)
        return record

    def _materialise(
        self, ride: RideRequest, index: int, end: float
    ) -> Request | None:
        try:
            return ride.to_request(oracle=self.oracle, config=self.config)
        except UnreachableError:
            # Admitted but unroutable (no client-supplied direct cost and
            # the oracle found no path): reject at materialisation time.
            self._queue.counters.reject(RejectionReason.UNREACHABLE)
            self._emit(AssignmentEvent(
                event=AssignmentEventKind.REJECTED,
                time=end,
                request_id=ride.request_id,
                batch_index=index,
                reason=RejectionReason.UNREACHABLE,
            ))
            return None

    def serve(
        self, requests: Iterable[RideRequest | Request]
    ) -> ServiceResult:
        """Run one whole trace through the service and shut down.

        The convenience entry point mirroring ``Simulator.run``: start,
        submit the trace in release order (ticking the clock forward when
        the queue fills up), drain, shut down.  With a queue sized for the
        trace's bursts the resulting batch sequence -- and therefore every
        assignment -- is identical to batch mode's.
        """
        if not self._started:
            self.start()
        ordered = sorted(
            (self._coerce(request) for request in requests),
            key=lambda ride: (ride.release_time, ride.request_id),
        )
        for ride in ordered:
            admission = self.submit(ride)
            while (
                not admission.accepted
                and admission.reason is RejectionReason.QUEUE_FULL
            ):
                self.tick()
                admission = self.submit(ride)
        return self.shutdown()

    # ------------------------------------------------------------------ #
    # event streaming
    # ------------------------------------------------------------------ #
    def subscribe(
        self, callback: Callable[[AssignmentEvent], None]
    ) -> Callable[[], None]:
        """Stream every assignment event to ``callback``; returns unsubscribe."""

        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    def events(self) -> list[AssignmentEvent]:
        """Snapshot of the retained assignment-event history."""
        return list(self._history)

    def _pump_events(self, *, batch_index: int | None) -> None:
        """Translate newly-logged simulator events into assignment events."""
        log = self._event_log
        if log is None:
            return
        entries = log.events
        for entry in entries[self._event_cursor:]:
            mapped = _EVENT_MAP.get(entry.kind)
            if mapped is None:
                continue
            kind, reason, other_is_vehicle = mapped
            self._emit(AssignmentEvent(
                event=kind,
                time=entry.time,
                request_id=entry.subject,
                vehicle_id=entry.other if other_is_vehicle else None,
                batch_index=batch_index,
                reason=reason,
            ))
        self._event_cursor = len(entries)

    def _emit(self, event: AssignmentEvent) -> None:
        if self._retain_history:
            if (
                self._history.maxlen is not None
                and len(self._history) >= self._history.maxlen
            ):
                self._events_dropped += 1
            self._history.append(event)
        else:
            self._events_dropped += 1
        for callback in self._subscribers:
            callback(event)

    # ------------------------------------------------------------------ #
    # health / stats endpoints
    # ------------------------------------------------------------------ #
    def _metrics(self) -> MetricsCollector | None:
        if self._final_metrics is not None:
            return self._final_metrics
        if self._started and not self._stopped:
            return self._sim.run_state.metrics
        return None

    def stats(self) -> ServiceStats:
        """Point-in-time service snapshot (works in every lifecycle phase).

        ``rejected`` merges admission-time refusals (queue full, shed,
        duplicate, unknown node, shutdown) with materialisation-time
        ``unreachable`` rejections -- the latter also count in ``accepted``
        since the request did enter the queue.
        """
        counters = self._queue.counters
        metrics = self._metrics()
        assigned = metrics.assigned_requests if metrics is not None else 0
        expired = metrics.expired_requests if metrics is not None else 0
        dispatch_rejected = (
            metrics.rejected_requests if metrics is not None else 0
        )
        completed = sum(len(v.completed) for v in self._sim.vehicles)
        service_rate = (
            assigned / counters.accepted if counters.accepted else 1.0
        )
        return ServiceStats(
            received=counters.received,
            accepted=counters.accepted,
            rejected=dict(counters.rejected),
            assigned=assigned,
            completed=completed,
            expired=expired,
            dispatch_rejected=dispatch_rejected,
            batches=self._batches,
            queue_depth=self._queue.depth,
            queue_high_watermark=counters.high_watermark,
            events_dropped=self._events_dropped,
            sim_time=self._sim_time,
            service_rate=min(service_rate, 1.0),
        )

    def health(self) -> dict[str, object]:
        """Liveness/readiness snapshot for operators and the benchmark.

        ``status`` is ``stopped`` outside the running window, ``draining``
        once shutdown closed the queue, ``degraded`` while the oracle
        serves stale/fallback answers or a resilience breaker is not
        closed, and ``ok`` otherwise.
        """
        degraded = self.oracle.serving_fallback or self.oracle.is_stale
        breakers: dict[str, str] = {}
        resilience = self._sim.resilience
        if resilience is not None:
            breakers = {
                "oracle": resilience.oracle_breaker.state.value,
                "dispatch": resilience.dispatch_breaker.state.value,
            }
            degraded = degraded or any(
                state != BreakerState.CLOSED.value
                for state in breakers.values()
            )
        if not self._started or self._stopped:
            status = "stopped"
        elif self._queue.closed:
            status = "draining"
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        stats = self.stats()
        payload: dict[str, object] = {
            "status": status,
            "started": self._started,
            "stopped": self._stopped,
            "backend": self.oracle.backend_name,
            "oracle_stale": self.oracle.is_stale,
            "oracle_fallback": self.oracle.serving_fallback,
            "queue_depth": self._queue.depth,
            "queue_capacity": self._queue.capacity,
            "queue_closed": self._queue.closed,
            "pending": (
                len(self._sim.run_state.pending)
                if self._started and not self._stopped
                else 0
            ),
            "batches": self._batches,
            "sim_time": self._sim_time,
            "service_rate": stats.service_rate,
            "slo_service_rate": self.service_config.slo_service_rate,
            "slo_met": (
                stats.service_rate >= self.service_config.slo_service_rate
            ),
        }
        if breakers:
            payload["breakers"] = breakers
        return payload

    def registry(self) -> MetricRegistry:
        """Typed metric registry: simulation metrics + service gauges.

        The simulation half is :meth:`MetricsCollector.as_registry` (so
        anything that renders a finished run -- ``prometheus_text``, the
        JSON exporter -- renders a live service identically); the
        ``service.*`` half adds the admission and queue state only the
        service knows.
        """
        metrics = self._metrics()
        registry = (
            metrics.as_registry() if metrics is not None else MetricRegistry()
        )
        counters = self._queue.counters
        registry.counter(
            "service.received", "Requests offered to the service"
        ).inc(counters.received)
        registry.counter(
            "service.accepted", "Requests admitted into the queue"
        ).inc(counters.accepted)
        registry.counter(
            "service.rejected", "Requests rejected (all reasons)"
        ).inc(sum(counters.rejected.values()))
        registry.counter(
            "service.events_dropped", "Assignment events past the history cap"
        ).inc(self._events_dropped)
        registry.counter(
            "service.batches", "Batch windows the service ticked"
        ).inc(self._batches)
        depth = registry.gauge(
            "service.queue_depth", "Requests currently queued"
        )
        depth.set(counters.high_watermark)  # records the peak
        depth.set(self._queue.depth)
        registry.gauge(
            "service.sim_time", "Virtual time of the last batch boundary"
        ).set(self._sim_time)
        return registry


__all__ = ["DispatchService", "ServiceResult"]
