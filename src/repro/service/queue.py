"""Bounded ingestion queue feeding the dispatch service's batch tick.

The queue is the admission boundary of :class:`repro.service.DispatchService`:
clients :meth:`~IngestionQueue.offer` typed :class:`RideRequest` payloads,
the service's virtual-clock tick :meth:`~IngestionQueue.take_due` drains
everything released up to the batch boundary, and overload is handled by an
explicit admission policy instead of unbounded buffering:

* ``reject`` -- a full queue refuses the new request
  (:attr:`RejectionReason.QUEUE_FULL`); async submitters using
  :meth:`~IngestionQueue.put` *block* until space frees (backpressure).
* ``drop_oldest`` -- a full queue shes the longest-queued request
  (:attr:`RejectionReason.SHED_OLDEST`) so the freshest demand wins.

Everything is deterministic: requests drain in ``(release_time,
request_id)`` order regardless of submission interleaving, and the queue
never consults a wall clock -- time only enters through the
``release_time`` fields and the ``until`` horizon the service passes in.
"""

from __future__ import annotations

import asyncio
import heapq
from dataclasses import dataclass, field

from ..config import ADMISSION_POLICIES
from ..exceptions import ConfigurationError
from .schemas import RejectionReason, RideRequest


@dataclass(frozen=True)
class Admission:
    """Outcome of one admission decision (offer/put/close-time rejection)."""

    #: Whether the request entered the queue.
    accepted: bool
    #: Why it did not, for rejections (``None`` on acceptance).
    reason: RejectionReason | None = None
    #: Queue depth right after the decision.
    queue_depth: int = 0
    #: Request shed to make room (``drop_oldest`` policy only).
    shed: RideRequest | None = None


@dataclass
class _QueueCounters:
    """Admission bookkeeping surfaced through ``ServiceStats``."""

    received: int = 0
    accepted: int = 0
    #: Rejections keyed by :class:`RejectionReason` wire value.
    rejected: dict[str, int] = field(default_factory=dict)
    high_watermark: int = 0

    def reject(self, reason: RejectionReason) -> None:
        self.rejected[reason.value] = self.rejected.get(reason.value, 0) + 1


class IngestionQueue:
    """Bounded, deduplicating, release-time-ordered request queue."""

    def __init__(self, *, capacity: int = 512, policy: str = "reject") -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"queue capacity must be at least 1 (got {capacity})"
            )
        if policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"admission policy must be one of {ADMISSION_POLICIES} "
                f"(got {policy!r})"
            )
        self.capacity = capacity
        self.policy = policy
        self.counters = _QueueCounters()
        #: Min-heap of ``(release_time, request_id, request)`` -- drains in
        #: deterministic release order regardless of submission order.
        self._heap: list[tuple[float, int, RideRequest]] = []
        #: Every request id ever admitted (including already-consumed ones),
        #: so a retry of a served request is flagged as a duplicate instead
        #: of being dispatched twice.
        self._seen: set[int] = set()
        self._closed = False
        #: Lazily-created wakeup for async submitters blocked on a full
        #: queue; set whenever space frees or the queue closes.
        self._space: asyncio.Event | None = None

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def offer(self, request: RideRequest) -> Admission:
        """Try to admit ``request`` without blocking."""
        self.counters.received += 1
        if self._closed:
            return self._reject(RejectionReason.SHUTTING_DOWN)
        if request.request_id in self._seen:
            return self._reject(RejectionReason.DUPLICATE_REQUEST)
        shed: RideRequest | None = None
        if len(self._heap) >= self.capacity:
            if self.policy == "reject":
                return self._reject(RejectionReason.QUEUE_FULL)
            # drop_oldest: shed the longest-queued request (smallest
            # release time; ties by id) so the freshest demand is kept.
            _, _, shed = heapq.heappop(self._heap)
            self.counters.reject(RejectionReason.SHED_OLDEST)
        heapq.heappush(
            self._heap, (request.release_time, request.request_id, request)
        )
        self._seen.add(request.request_id)
        self.counters.accepted += 1
        self.counters.high_watermark = max(
            self.counters.high_watermark, len(self._heap)
        )
        return Admission(
            accepted=True, queue_depth=len(self._heap), shed=shed
        )

    async def put(self, request: RideRequest) -> Admission:
        """Admit ``request``, blocking while the queue is full.

        Under the ``reject`` policy a full queue makes this coroutine wait
        until :meth:`take_due` frees space (backpressure propagates to the
        submitter); terminal rejections (duplicate, shutdown) return
        immediately.  Under ``drop_oldest`` this never blocks.
        """
        while True:
            if (
                self._closed
                or request.request_id in self._seen
                or len(self._heap) < self.capacity
                or self.policy == "drop_oldest"
            ):
                return self.offer(request)
            if self._space is None:
                self._space = asyncio.Event()
            self._space.clear()
            await self._space.wait()

    def refuse(self, reason: RejectionReason) -> Admission:
        """Count an externally-decided rejection (service-side validation).

        The service validates payload semantics it alone can judge (node
        membership in its road network) *before* offering to the queue;
        routing those refusals through here keeps them inside the same
        admission counters as queue-decided ones.
        """
        self.counters.received += 1
        return self._reject(reason)

    def _reject(self, reason: RejectionReason) -> Admission:
        self.counters.reject(reason)
        return Admission(
            accepted=False, reason=reason, queue_depth=len(self._heap)
        )

    # ------------------------------------------------------------------ #
    # consumption (the service's batch tick)
    # ------------------------------------------------------------------ #
    def take_due(self, until: float) -> list[RideRequest]:
        """Remove and return every request released strictly before ``until``.

        The bound is exclusive because ``until`` is a batch *end* boundary
        and batch windows are half-open ``[start, end)`` -- a request
        released exactly at the boundary belongs to the next batch.  Results
        are ordered by ``(release_time, request_id)``, the order
        :class:`repro.model.batch.BatchStream` presents a pre-sorted trace
        in, which is what makes service-mode batches identical to
        batch-mode ones.
        """
        due: list[RideRequest] = []
        while self._heap and self._heap[0][0] < until:
            due.append(heapq.heappop(self._heap)[2])
        if due:
            self._wake_waiters()
        return due

    def peek_next_release(self) -> float | None:
        """Release time of the earliest queued request, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0][0]

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop admitting; queued requests remain drainable via take_due."""
        self._closed = True
        self._wake_waiters()

    def _wake_waiters(self) -> None:
        if self._space is not None:
            self._space.set()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called."""
        return self._closed

    @property
    def depth(self) -> int:
        """Number of requests currently queued."""
        return len(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        # A queue is truthy like any object; depth checks must be explicit
        # (``if queue`` reading as ``if queue.depth`` has bitten before).
        return True


__all__ = ["Admission", "IngestionQueue"]
