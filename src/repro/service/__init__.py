"""Dispatch-as-a-service: typed API, ingestion queue, long-lived loop.

The service layer is the ROADMAP's "dispatch-as-a-service" milestone: it
wraps the batch simulator behind a versioned request/response API
(:mod:`repro.service.schemas`), a bounded admission-controlled ingestion
queue (:mod:`repro.service.queue`) and a long-lived orchestration loop with
health/stats endpoints and event streaming (:mod:`repro.service.server`).

Quickstart::

    from repro import DispatchService, RideRequest

    service = DispatchService(
        network=network, oracle=oracle, vehicles=vehicles,
        dispatcher=dispatcher, config=config,
    )
    service.start()
    service.submit(RideRequest(request_id=0, origin=3, destination=41,
                               release_time=2.0))
    service.tick()                 # one virtual-clock batch
    result = service.shutdown()    # drains the queue, totals up
"""

from .queue import Admission, IngestionQueue
from .schemas import (
    SCHEMA_VERSION,
    AssignmentEvent,
    AssignmentEventKind,
    RejectionReason,
    RideRequest,
    ServiceStats,
    check_schema_version,
)
from .server import DispatchService, ServiceResult

__all__ = [
    "SCHEMA_VERSION",
    "Admission",
    "AssignmentEvent",
    "AssignmentEventKind",
    "DispatchService",
    "IngestionQueue",
    "RejectionReason",
    "RideRequest",
    "ServiceResult",
    "ServiceStats",
    "check_schema_version",
]
