"""Two-request shareability test (the edge predicate of the shareability graph).

Two requests ``r_a`` and ``r_b`` are *shareable* when at least one feasible
schedule serves both on the same trip (Definition 5).  Following the paper's
construction (Section III-B), only schedules whose first way-point is the
source of ``r_a`` are considered, which avoids counting each unordered pair
twice:

* ``<s_a, s_b, e_a, e_b>`` (interleaved, drop the anchor last),
* ``<s_a, s_b, e_b, e_a>`` (interleaved, drop the candidate last),
* ``<s_a, e_a, s_b, e_b>`` (sequential service -- Definition 5 only asks for
  *some* feasible schedule serving both, which the paper's builder tests with
  two linear insertions and therefore includes back-to-back service).

The test is optimistic about the vehicle: it assumes a vehicle is available
at ``s_a`` when ``r_a`` is released, which matches how shareability graphs
are built in prior work (Santi et al., Alonso-Mora et al.).
"""

from __future__ import annotations

import math

from ..model.request import Request
from ..model.schedule import Schedule, Waypoint, WaypointKind
from ..network.shortest_path import DistanceOracle


def pair_orderings(first: Request, second: Request) -> list[Schedule]:
    """The candidate joint schedules that start with ``first``'s pick-up."""
    pickup_a = Waypoint(first, WaypointKind.PICKUP)
    dropoff_a = Waypoint(first, WaypointKind.DROPOFF)
    pickup_b = Waypoint(second, WaypointKind.PICKUP)
    dropoff_b = Waypoint(second, WaypointKind.DROPOFF)
    return [
        Schedule((pickup_a, pickup_b, dropoff_a, dropoff_b)),
        Schedule((pickup_a, pickup_b, dropoff_b, dropoff_a)),
        Schedule((pickup_a, dropoff_a, pickup_b, dropoff_b)),
    ]


def best_pair_schedule(
    first: Request,
    second: Request,
    oracle: DistanceOracle,
    *,
    capacity: int | None = None,
) -> tuple[Schedule | None, float]:
    """Cheapest feasible joint schedule anchored at ``first``'s source.

    Returns ``(schedule, travel_cost)`` or ``(None, inf)`` when the two
    requests cannot share a trip in this orientation.
    """
    seats = capacity if capacity is not None else first.riders + second.riders
    if first.riders + second.riders > seats:
        return None, math.inf
    best_schedule: Schedule | None = None
    best_cost = math.inf
    for candidate in pair_orderings(first, second):
        evaluation = candidate.evaluate(
            oracle,
            origin=first.source,
            departure_time=first.release_time,
            capacity=seats,
            initial_load=0,
        )
        if evaluation.feasible and evaluation.travel_cost < best_cost:
            best_schedule = candidate
            best_cost = evaluation.travel_cost
    return best_schedule, best_cost


def are_shareable(
    first: Request,
    second: Request,
    oracle: DistanceOracle,
    *,
    capacity: int | None = None,
) -> bool:
    """True when the two requests can share a vehicle in either orientation.

    Shareability is symmetric: the pair is checked with each request as the
    anchor (first pick-up) and the edge exists if either orientation admits a
    feasible joint schedule.
    """
    schedule, _ = best_pair_schedule(first, second, oracle, capacity=capacity)
    if schedule is not None:
        return True
    schedule, _ = best_pair_schedule(second, first, oracle, capacity=capacity)
    return schedule is not None
