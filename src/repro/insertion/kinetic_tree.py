"""Kinetic-tree style exhaustive scheduling (the exact reference operator).

Huang et al. [7] maintain every feasible stop ordering of a vehicle in a
"kinetic tree" so that inserting a new request always yields the globally
optimal schedule.  This module provides the same capability through a
depth-first branch-and-bound over stop orderings.  It is exponential in the
number of stops, which is exactly the trade-off the paper discusses; the
reproduction uses it as the exact baseline in tests and in the
insertion-order study (Section IV-A), never on large instances.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..model.request import Request
from ..model.schedule import Schedule, Waypoint, WaypointKind
from ..model.vehicle import RouteState
from ..network.shortest_path import DistanceOracle
from ..observability.trace import get_tracer


class KineticTreeScheduler:
    """Exhaustive optimal scheduler over the stops of a vehicle.

    Parameters
    ----------
    oracle:
        The shortest-path oracle used to evaluate leg costs.
    max_stops:
        Safety limit on the number of stops enumerated; beyond this the
        search refuses to run (the caller should fall back to linear
        insertion), mirroring the ``(2m)!/2^m`` blow-up the paper points out.
    """

    def __init__(self, oracle: DistanceOracle, *, max_stops: int = 14) -> None:
        self._oracle = oracle
        self._max_stops = max_stops

    def optimal_schedule(
        self,
        route: RouteState,
        new_requests: Sequence[Request],
    ) -> Schedule | None:
        """Best feasible ordering of the route's stops plus ``new_requests``.

        Existing stops may be reordered freely (subject to pick-up before
        drop-off); stops of onboard requests (drop-off only) can be placed
        anywhere.  Returns ``None`` when no feasible ordering exists.
        """
        pending: list[Waypoint] = list(route.schedule.waypoints)
        for request in new_requests:
            pending.append(Waypoint(request, WaypointKind.PICKUP))
            pending.append(Waypoint(request, WaypointKind.DROPOFF))
        if len(pending) > self._max_stops:
            raise ValueError(
                f"kinetic-tree search limited to {self._max_stops} stops, "
                f"got {len(pending)}"
            )
        if not pending:
            return Schedule.empty()

        # When the vehicle has committed to its next stop, that stop stays first.
        committed: list[Waypoint] = []
        if route.min_insert_position > 0 and route.schedule:
            committed = [route.schedule[0]]
            pending.remove(route.schedule[0])

        oracle = self._oracle
        best_cost = math.inf
        best_order: list[Waypoint] | None = None

        # Requests whose pick-up is in the pending set must be picked before
        # their drop-off; drop-offs without a pick-up belong to onboard riders.
        pickup_pending = {
            wp.request.request_id for wp in pending if wp.kind is WaypointKind.PICKUP
        }

        def recurse(
            order: list[Waypoint],
            remaining: list[Waypoint],
            node: int,
            clock: float,
            load: int,
            cost: float,
            picked: set[int],
        ) -> None:
            nonlocal best_cost, best_order
            if cost >= best_cost:
                return
            if not remaining:
                best_cost = cost
                best_order = list(order)
                return
            for index, wp in enumerate(remaining):
                rid = wp.request.request_id
                if (
                    wp.kind is WaypointKind.DROPOFF
                    and rid in pickup_pending
                    and rid not in picked
                ):
                    continue
                leg = oracle.cost(node, wp.node)
                if math.isinf(leg):
                    continue
                arrival = max(clock + leg, wp.earliest_service)
                if arrival > wp.deadline + 1e-9:
                    continue
                new_load = load + wp.load_delta
                if new_load > route.capacity or new_load < 0:
                    continue
                next_picked = picked | {rid} if wp.kind is WaypointKind.PICKUP else picked
                order.append(wp)
                recurse(
                    order,
                    remaining[:index] + remaining[index + 1:],
                    wp.node,
                    arrival,
                    new_load,
                    cost + leg,
                    next_picked,
                )
                order.pop()

        # Prime the search with the committed stop (if any) already serviced.
        start_node = route.origin
        start_clock = route.departure_time
        start_load = route.onboard
        start_cost = 0.0
        prefix: list[Waypoint] = []
        picked_prefix: set[int] = set()
        feasible_prefix = True
        for wp in committed:
            leg = oracle.cost(start_node, wp.node)
            arrival = max(start_clock + leg, wp.earliest_service)
            if math.isinf(leg) or arrival > wp.deadline + 1e-9:
                feasible_prefix = False
                break
            start_cost += leg
            start_clock = arrival
            start_node = wp.node
            start_load += wp.load_delta
            if start_load > route.capacity or start_load < 0:
                feasible_prefix = False
                break
            prefix.append(wp)
            if wp.kind is WaypointKind.PICKUP:
                picked_prefix.add(wp.request.request_id)
        if not feasible_prefix:
            return None

        with get_tracer().span(
            "kinetic.insert",
            stops=len(pending) + len(committed),
            new_requests=len(new_requests),
        ) as span:
            recurse(prefix, pending, start_node, start_clock, start_load,
                    start_cost, picked_prefix)
            span.tag("feasible", best_order is not None)
        if best_order is None:
            return None
        return Schedule(best_order)

    def optimal_cost(
        self,
        route: RouteState,
        new_requests: Sequence[Request],
    ) -> float:
        """Travel cost of the optimal schedule, or ``inf`` when infeasible."""
        schedule = self.optimal_schedule(route, new_requests)
        if schedule is None:
            return math.inf
        return schedule.travel_cost(self._oracle, route.origin)
