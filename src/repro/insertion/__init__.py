"""Schedule maintenance operators.

Two strategies from the literature are implemented (Section IV-A of the
paper):

* :mod:`~repro.insertion.linear_insertion` -- the linear insertion operator
  of Tong et al. [37]: insert a request's pick-up and drop-off into the
  current schedule without reordering existing stops, minimising the added
  travel cost.
* :mod:`~repro.insertion.kinetic_tree` -- the kinetic-tree style exhaustive
  scheduler of Huang et al. [7]: enumerate every feasible stop ordering and
  return the optimal schedule (used as the exact reference).
* :mod:`~repro.insertion.pair_schedules` -- the two-request feasibility test
  that defines edges of the shareability graph.
"""

from .linear_insertion import InsertionOutcome, best_insertion, insert_sequence
from .kinetic_tree import KineticTreeScheduler
from .pair_schedules import are_shareable, best_pair_schedule, pair_orderings

__all__ = [
    "InsertionOutcome",
    "best_insertion",
    "insert_sequence",
    "KineticTreeScheduler",
    "are_shareable",
    "best_pair_schedule",
    "pair_orderings",
]
