"""Linear insertion: add a request to a schedule without reordering it.

This is the operator of Tong et al. [37] that the paper adopts for schedule
maintenance: try every pair of positions for the new pick-up and drop-off,
keep the relative order of the existing stops, and return the feasible
placement with the smallest increase in total travel cost.  The operator is
optimal for a schedule of at most one existing request and a good local
heuristic beyond that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable

from ..model.request import Request
from ..model.schedule import Schedule
from ..model.vehicle import RouteState
from ..network.shortest_path import DistanceOracle


@dataclass(frozen=True)
class InsertionOutcome:
    """Result of attempting to insert a request into a route.

    ``delta_cost`` is the increase in total travel time over the route's
    current schedule; it is ``math.inf`` when no feasible placement exists.
    """

    feasible: bool
    delta_cost: float
    schedule: Schedule
    pickup_position: int = -1
    dropoff_position: int = -1
    total_cost: float = math.inf

    @classmethod
    def infeasible(cls, schedule: Schedule) -> "InsertionOutcome":
        """The canonical "no feasible placement" outcome."""
        return cls(False, math.inf, schedule)


def base_route_cost(route: RouteState, oracle: DistanceOracle) -> float:
    """Travel cost of the route's current schedule from its origin."""
    return route.schedule.travel_cost(oracle, route.origin)


def best_insertion(
    route: RouteState,
    request: Request,
    oracle: DistanceOracle,
) -> InsertionOutcome:
    """Find the cheapest feasible insertion of ``request`` into ``route``.

    Every pair of positions ``(i, j)`` with ``i <= j`` is evaluated, where
    ``i`` is the index of the pick-up in the current schedule and the
    drop-off follows at index ``j`` of the extended schedule.  Positions
    before ``route.min_insert_position`` are skipped because the vehicle has
    already committed to its next stop.
    """
    schedule = route.schedule
    n = len(schedule)
    # Quick rejection: even the direct drive to the pick-up is too late.
    direct_pickup = route.departure_time + oracle.cost(route.origin, request.source)
    if n == 0 and direct_pickup > request.latest_pickup + 1e-9:
        return InsertionOutcome.infeasible(schedule)

    base_cost = base_route_cost(route, oracle)
    best: InsertionOutcome = InsertionOutcome.infeasible(schedule)
    start = route.min_insert_position
    for pickup_pos in range(start, n + 1):
        for dropoff_pos in range(pickup_pos + 1, n + 2):
            candidate = schedule.with_insertion(request, pickup_pos, dropoff_pos)
            evaluation = candidate.evaluate(
                oracle,
                route.origin,
                route.departure_time,
                capacity=route.capacity,
                initial_load=route.onboard,
            )
            if not evaluation.feasible:
                continue
            delta = evaluation.travel_cost - base_cost
            if delta < best.delta_cost - 1e-12:
                best = InsertionOutcome(
                    feasible=True,
                    delta_cost=delta,
                    schedule=candidate,
                    pickup_position=pickup_pos,
                    dropoff_position=dropoff_pos,
                    total_cost=evaluation.travel_cost,
                )
    return best


def insert_sequence(
    route: RouteState,
    requests: Iterable[Request],
    oracle: DistanceOracle,
) -> InsertionOutcome:
    """Insert several requests one by one with linear insertion.

    The requests are processed in the given order; each one is inserted into
    the schedule produced by the previous insertions.  Returns the combined
    outcome: infeasible as soon as any single insertion fails.  This is the
    primitive used by the grouping algorithm, which orders the sequence by
    ascending shareability (Section IV-A).
    """
    current = route
    total_delta = 0.0
    last_schedule = route.schedule
    any_inserted = False
    for request in requests:
        outcome = best_insertion(current, request, oracle)
        if not outcome.feasible:
            return InsertionOutcome.infeasible(route.schedule)
        total_delta += outcome.delta_cost
        last_schedule = outcome.schedule
        any_inserted = True
        current = RouteState(
            vehicle_id=route.vehicle_id,
            origin=route.origin,
            departure_time=route.departure_time,
            schedule=outcome.schedule,
            capacity=route.capacity,
            onboard=route.onboard,
            min_insert_position=route.min_insert_position,
        )
    if not any_inserted:
        return InsertionOutcome(
            feasible=True,
            delta_cost=0.0,
            schedule=route.schedule,
            total_cost=base_route_cost(route, oracle),
        )
    return InsertionOutcome(
        feasible=True,
        delta_cost=total_delta,
        schedule=last_schedule,
        total_cost=base_route_cost(route, oracle) + total_delta,
    )
