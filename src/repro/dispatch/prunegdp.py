"""pruneGDP: online greedy linear insertion (Tong et al. [37]).

Requests are processed one at a time in release order; each is inserted into
the candidate vehicle whose schedule grows the least (smallest additional
travel cost).  The operator is extremely fast -- it is the running-time
baseline in every figure of the paper -- but purely local: it never revisits
an earlier decision, which is what the batch methods exploit.
"""

from __future__ import annotations

from ..insertion.linear_insertion import best_insertion
from ..model.request import Request
from ..model.vehicle import RouteState
from .base import Assignment, DispatchContext, DispatchResult, Dispatcher, candidate_vehicles


class PruneGDPDispatcher(Dispatcher):
    """Greedy insertion of each request into its cheapest feasible vehicle.

    Being an *online* method, pruneGDP answers each request immediately and
    irrevocably: a request that cannot be inserted anywhere when it is
    processed is rejected (``reject_unassigned=True``, the paper's
    first-come-first-served semantics).  Batch methods instead keep such
    requests in the working pool until they expire.
    """

    name = "pruneGDP"

    def __init__(
        self, *, max_candidates: int | None = 32, reject_unassigned: bool = True
    ) -> None:
        self._max_candidates = max_candidates
        self._reject_unassigned = reject_unassigned
        self._planned: dict[int, RouteState] = {}

    def reset(self) -> None:
        self._planned = {}

    def estimated_memory_bytes(self) -> int:
        # Online methods keep almost nothing between requests.
        return 100 * len(self._planned)

    def dispatch(self, context: DispatchContext) -> DispatchResult:
        # Working copies of each vehicle's route; insertions within the batch
        # compound on these so a vehicle can pick up several new requests.
        routes: dict[int, RouteState] = {
            vehicle.vehicle_id: vehicle.route_state(context.current_time)
            for vehicle in context.vehicles
        }
        accepted: dict[int, list[Request]] = {}
        rejected: list[Request] = []
        for request in sorted(context.pending, key=lambda r: (r.release_time, r.request_id)):
            best_vehicle_id = None
            best_outcome = None
            for vehicle in candidate_vehicles(
                request, context, max_candidates=self._max_candidates
            ):
                route = routes[vehicle.vehicle_id]
                outcome = best_insertion(route, request, context.oracle)
                if not outcome.feasible:
                    continue
                if best_outcome is None or outcome.delta_cost < best_outcome.delta_cost:
                    best_outcome = outcome
                    best_vehicle_id = vehicle.vehicle_id
            if best_vehicle_id is None or best_outcome is None:
                if self._reject_unassigned:
                    rejected.append(request)
                continue
            old_route = routes[best_vehicle_id]
            routes[best_vehicle_id] = RouteState(
                vehicle_id=old_route.vehicle_id,
                origin=old_route.origin,
                departure_time=old_route.departure_time,
                schedule=best_outcome.schedule,
                capacity=old_route.capacity,
                onboard=old_route.onboard,
                min_insert_position=old_route.min_insert_position,
            )
            accepted.setdefault(best_vehicle_id, []).append(request)
        self._planned = routes
        assignments = [
            Assignment(
                vehicle_id=vehicle_id,
                schedule=routes[vehicle_id].schedule,
                new_requests=tuple(requests),
            )
            for vehicle_id, requests in accepted.items()
        ]
        return DispatchResult(assignments=assignments, rejected=rejected)
