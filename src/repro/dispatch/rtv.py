"""RTV: optimal trip-vehicle assignment per batch (Alonso-Mora et al. [27]).

RTV builds the request-vehicle (RV) and request-trip-vehicle (RTV) graphs --
every feasible trip (group of requests) a vehicle could serve -- and solves
an integer linear program choosing at most one trip per vehicle and at most
one trip per request, minimising the added travel cost plus the penalty of
unserved requests.  The paper uses GLPK; this reproduction uses the HiGHS
solver shipped with :func:`scipy.optimize.milp` and falls back to a greedy
rounding when the instance exceeds a size limit (mirroring the paper's note
that RTV hits solver limits for large deadlines).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from ..grouping.additive_tree import GroupingStatistics, build_groups
from ..grouping.group import RequestGroup
from ..shareability.builder import DynamicShareabilityGraphBuilder
from .base import (
    Assignment,
    DispatchContext,
    DispatchResult,
    Dispatcher,
    requests_by_vehicle,
)


class RTVDispatcher(Dispatcher):
    """Integer-programming batch dispatcher over enumerated trips."""

    name = "RTV"

    def __init__(
        self,
        *,
        max_pool: int | None = 250,
        max_variables: int = 20_000,
        time_limit: float = 10.0,
    ) -> None:
        self._max_pool = max_pool
        self._max_variables = max_variables
        self._time_limit = time_limit
        self._builder: DynamicShareabilityGraphBuilder | None = None
        self.grouping_stats = GroupingStatistics()
        self.ilp_solved = 0
        self.ilp_fallbacks = 0
        self._last_variable_count = 0

    def reset(self) -> None:
        self._builder = None
        self.grouping_stats = GroupingStatistics()
        self.ilp_solved = 0
        self.ilp_fallbacks = 0
        self._last_variable_count = 0

    def estimated_memory_bytes(self) -> int:
        # The ILP constraint matrix dominates RTV's memory in the paper.
        total = 900 * self._last_variable_count
        if self._builder is not None:
            total += self._builder.graph.estimated_memory_bytes()
        return total

    # ------------------------------------------------------------------ #
    def dispatch(self, context: DispatchContext) -> DispatchResult:
        config = context.config.with_overrides(angle_threshold=None)
        if self._builder is None:
            self._builder = DynamicShareabilityGraphBuilder(
                network=context.network,
                oracle=context.oracle,
                config=config,
                average_speed=context.average_speed,
            )
        builder = self._builder
        pending_by_id = {request.request_id: request for request in context.pending}
        stale = [rid for rid in list(builder.graph.request_ids()) if rid not in pending_by_id]
        builder.remove(stale)
        builder.update(
            [r for r in context.pending if r.request_id not in builder.graph]
        )
        graph = builder.graph

        # ----------------- enumerate feasible trips per vehicle ---------- #
        # RV edges: a vehicle only considers requests whose pick-up it can
        # plausibly reach before the waiting deadline.
        reachable = requests_by_vehicle(context, list(pending_by_id.values()))
        candidates: list[tuple[int, RequestGroup]] = []
        for vehicle in context.vehicles:
            route = vehicle.route_state(context.current_time)
            if route.free_seats <= 0:
                continue
            pool = reachable.get(vehicle.vehicle_id, [])
            if not pool:
                continue
            if self._max_pool is not None and len(pool) > self._max_pool:
                pool = sorted(
                    pool,
                    key=lambda r: context.network.euclidean(vehicle.location, r.source),
                )[: self._max_pool]
            groups = build_groups(
                pool,
                graph,
                route,
                context.oracle,
                max_group_size=config.group_size_limit,
                stats=self.grouping_stats,
            )
            for group in groups:
                candidates.append((vehicle.vehicle_id, group))
        if not candidates:
            return DispatchResult()
        self._last_variable_count = len(candidates)

        penalty = context.config.penalty_coefficient
        if len(candidates) <= self._max_variables:
            chosen = self._solve_ilp(candidates, list(pending_by_id), penalty)
            if chosen is None:
                self.ilp_fallbacks += 1
                chosen = self._solve_greedy(candidates)
            else:
                self.ilp_solved += 1
        else:
            self.ilp_fallbacks += 1
            chosen = self._solve_greedy(candidates)

        assignments = [
            Assignment(
                vehicle_id=vehicle_id,
                schedule=group.schedule,
                new_requests=tuple(group.requests),
            )
            for vehicle_id, group in chosen
        ]
        for _, group in chosen:
            builder.remove(group.members)
        return DispatchResult(assignments=assignments)

    # ------------------------------------------------------------------ #
    def _solve_ilp(
        self,
        candidates: list[tuple[int, RequestGroup]],
        request_ids: list[int],
        penalty: float,
    ) -> list[tuple[int, RequestGroup]] | None:
        """Exact trip selection with scipy's MILP interface (HiGHS)."""
        num_vars = len(candidates)
        vehicle_ids = sorted({vid for vid, _ in candidates})
        vehicle_row = {vid: i for i, vid in enumerate(vehicle_ids)}
        request_row = {rid: i for i, rid in enumerate(request_ids)}

        # Objective: minimise added travel cost minus the avoided penalties.
        objective = np.empty(num_vars)
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for index, (vehicle_id, group) in enumerate(candidates):
            saved_penalty = penalty * group.direct_cost
            objective[index] = group.delta_cost - saved_penalty
            rows.append(vehicle_row[vehicle_id])
            cols.append(index)
            data.append(1.0)
            for rid in group.members:
                rows.append(len(vehicle_ids) + request_row[rid])
                cols.append(index)
                data.append(1.0)
        num_rows = len(vehicle_ids) + len(request_ids)
        matrix = sparse.csr_matrix((data, (rows, cols)), shape=(num_rows, num_vars))
        constraints = optimize.LinearConstraint(matrix, -np.inf, np.ones(num_rows))
        integrality = np.ones(num_vars)
        bounds = optimize.Bounds(0, 1)
        try:
            result = optimize.milp(
                c=objective,
                constraints=constraints,
                integrality=integrality,
                bounds=bounds,
                options={"time_limit": self._time_limit, "presolve": True},
            )
        except Exception:  # pragma: no cover  # repro-lint: disable=STY001 scipy.optimize.milp raises version-dependent types; any failure falls back to greedy rounding
            return None
        if not result.success or result.x is None:
            return None
        chosen = [
            candidates[index]
            for index, value in enumerate(result.x)
            if value > 0.5
        ]
        return chosen

    def _solve_greedy(
        self, candidates: list[tuple[int, RequestGroup]]
    ) -> list[tuple[int, RequestGroup]]:
        """Greedy rounding fallback: best cost-per-request trips first."""
        scored = sorted(
            candidates,
            key=lambda item: (item[1].delta_cost - item[1].direct_cost) / item[1].size,
        )
        used_vehicles: set[int] = set()
        used_requests: set[int] = set()
        chosen: list[tuple[int, RequestGroup]] = []
        for vehicle_id, group in scored:
            if vehicle_id in used_vehicles:
                continue
            if group.members & used_requests:
                continue
            chosen.append((vehicle_id, group))
            used_vehicles.add(vehicle_id)
            used_requests |= group.members
        return chosen
