"""Common dispatcher interface and shared helpers."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..config import SimulationConfig
from ..model.batch import Batch
from ..model.request import Request
from ..model.schedule import Schedule
from ..model.vehicle import Vehicle
from ..network.grid_index import GridIndex
from ..network.road_network import RoadNetwork
from ..network.shortest_path import DistanceOracle


@dataclass
class DispatchContext:
    """Everything a dispatcher may consult when handling one batch.

    ``pending`` contains every unassigned, unexpired request known to the
    platform, including the requests of the current ``batch``.  Dispatchers
    must not mutate the vehicles; they return assignments and the simulator
    applies them.
    """

    current_time: float
    batch: Batch
    pending: list[Request]
    vehicles: list[Vehicle]
    network: RoadNetwork
    oracle: DistanceOracle
    vehicle_index: GridIndex
    config: SimulationConfig
    #: Mean driving speed in m/s, used to convert time slack to search radii.
    average_speed: float = 10.0

    def vehicle_by_id(self, vehicle_id: int) -> Vehicle:
        """Look up a vehicle by identifier."""
        for vehicle in self.vehicles:
            if vehicle.vehicle_id == vehicle_id:
                return vehicle
        raise KeyError(f"unknown vehicle {vehicle_id}")


@dataclass(frozen=True)
class Assignment:
    """One vehicle's new schedule together with the newly accepted requests."""

    vehicle_id: int
    schedule: Schedule
    new_requests: tuple[Request, ...]

    @property
    def new_request_ids(self) -> set[int]:
        """Identifiers of the requests accepted by this assignment."""
        return {request.request_id for request in self.new_requests}


@dataclass
class DispatchResult:
    """Assignments produced for one batch plus explicitly rejected requests.

    Requests that are neither assigned nor rejected stay in the pending pool
    and are offered again in the next batch (until they expire).
    """

    assignments: list[Assignment] = field(default_factory=list)
    rejected: list[Request] = field(default_factory=list)

    @property
    def assigned_request_ids(self) -> set[int]:
        """Identifiers of every request assigned in this result."""
        ids: set[int] = set()
        for assignment in self.assignments:
            ids |= assignment.new_request_ids
        return ids


class Dispatcher(abc.ABC):
    """Abstract base class of every dispatching algorithm."""

    #: Paper name of the algorithm ("SARD", "pruneGDP", ...).
    name: str = "dispatcher"

    @abc.abstractmethod
    def dispatch(self, context: DispatchContext) -> DispatchResult:
        """Handle one batch and return the schedule assignments."""

    def reset(self) -> None:
        """Forget any cross-batch state (called between simulations)."""

    def estimated_memory_bytes(self) -> int:
        """Approximate working-set size, reported in the memory study."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


def requests_by_vehicle(
    context: DispatchContext,
    requests: list[Request],
    *,
    max_candidates: int | None = None,
) -> dict[int, list[Request]]:
    """Invert :func:`candidate_vehicles`: which requests could each vehicle serve.

    Batch dispatchers that enumerate groups per vehicle (GAS, RTV) use this
    mapping as their RV-edge pruning: a vehicle only considers the requests
    whose pick-up it can plausibly reach before the waiting deadline.
    """
    mapping: dict[int, list[Request]] = {vehicle.vehicle_id: [] for vehicle in context.vehicles}
    for request in requests:
        for vehicle in candidate_vehicles(request, context, max_candidates=max_candidates):
            mapping[vehicle.vehicle_id].append(request)
    return mapping


def candidate_vehicles(
    request: Request,
    context: DispatchContext,
    *,
    max_candidates: int | None = None,
) -> list[Vehicle]:
    """Vehicles that could plausibly pick ``request`` up before its deadline.

    Uses the grid index to retrieve vehicles within the distance reachable in
    the request's remaining pick-up slack, then falls back to the whole fleet
    when the range query returns nothing (e.g. sparse fleets).
    """
    source_xy = context.network.position(request.source)
    slack = max(request.latest_pickup - context.current_time, 0.0)
    radius = max(context.average_speed * slack, 1.0)
    ids = context.vehicle_index.query_radius(source_xy[0], source_xy[1], radius)
    by_id = {vehicle.vehicle_id: vehicle for vehicle in context.vehicles}
    found = [by_id[vid] for vid in ids if vid in by_id]
    if not found:
        found = list(context.vehicles)
    if max_candidates is not None and len(found) > max_candidates:
        found.sort(key=lambda v: context.network.euclidean(v.location, request.source))
        found = found[:max_candidates]
    return found
