"""GAS: additive-tree batch dispatch with profit-greedy selection (Zeng et al. [33]).

GAS enumerates feasible request groups per vehicle with an additive tree and
lets vehicles pick groups greedily -- in random vehicle order -- maximising
the group's *profit*, measured as the total direct trip length of its
members.  It is the strongest published batch baseline the paper compares
against: close to SARD in solution quality but much slower because every
vehicle enumerates combinations over the whole batch rather than over the
requests that proposed to it.
"""

from __future__ import annotations

# DET002 audit: every draw below flows through a seeded random.Random
# stream; the module-global generator is never called (repro-lint enforced).
import random

from ..grouping.additive_tree import GroupingStatistics, build_groups
from ..model.vehicle import RouteState
from ..observability.trace import get_tracer
from ..shareability.builder import DynamicShareabilityGraphBuilder
from .base import (
    Assignment,
    DispatchContext,
    DispatchResult,
    Dispatcher,
    requests_by_vehicle,
)


class GASDispatcher(Dispatcher):
    """Greedy additive-tree dispatcher with random vehicle ordering."""

    name = "GAS"

    def __init__(
        self, *, seed: int = 97, max_pool: int | None = 400, max_passes: int = 3
    ) -> None:
        self._seed = seed
        self._rng = random.Random(seed)
        self._max_pool = max_pool
        self._max_passes = max_passes
        self._builder: DynamicShareabilityGraphBuilder | None = None
        self.grouping_stats = GroupingStatistics()
        self._last_group_count = 0

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._builder = None
        self.grouping_stats = GroupingStatistics()
        self._last_group_count = 0

    def estimated_memory_bytes(self) -> int:
        total = 300 * self._last_group_count
        if self._builder is not None:
            total += self._builder.graph.estimated_memory_bytes()
        return total

    def dispatch(self, context: DispatchContext) -> DispatchResult:
        # GAS does not use angle pruning: its feasibility graph keeps every
        # shareable pair, which also makes its memory footprint comparable to
        # SARD's (Figure 14).
        config = context.config.with_overrides(angle_threshold=None)
        if self._builder is None:
            self._builder = DynamicShareabilityGraphBuilder(
                network=context.network,
                oracle=context.oracle,
                config=config,
                average_speed=context.average_speed,
            )
        builder = self._builder
        tracer = get_tracer()
        with tracer.span("gas.sync_graph") as sync_span:
            pending_by_id = {request.request_id: request for request in context.pending}
            stale = [
                rid for rid in list(builder.graph.request_ids()) if rid not in pending_by_id
            ]
            builder.remove(stale)
            builder.update(
                [r for r in context.pending if r.request_id not in builder.graph]
            )
            graph = builder.graph
            sync_span.tag("stale", len(stale))
            sync_span.tag("graph_edges", graph.num_edges)

        with tracer.span(
            "gas.passes", pending=len(context.pending), vehicles=len(context.vehicles)
        ):
            remaining = dict(pending_by_id)
            vehicles = list(context.vehicles)
            self._rng.shuffle(vehicles)
            # RV-style pruning: each vehicle enumerates only the requests whose
            # pick-up it can plausibly reach before the waiting deadline.
            reachable = requests_by_vehicle(context, list(pending_by_id.values()))
            routes = {
                vehicle.vehicle_id: vehicle.route_state(context.current_time)
                for vehicle in vehicles
            }
            accepted: dict[int, list] = {}
            # GAS keeps scanning its additive index greedily until no vehicle
            # can take another profitable group, so several passes over the
            # fleet may assign additional groups on top of earlier ones.
            for _ in range(self._max_passes):
                progressed = False
                for vehicle in vehicles:
                    if not remaining:
                        break
                    route = routes[vehicle.vehicle_id]
                    if route.free_seats <= 0:
                        continue
                    pool = [
                        request
                        for request in reachable.get(vehicle.vehicle_id, ())
                        if request.request_id in remaining
                    ]
                    if self._max_pool is not None and len(pool) > self._max_pool:
                        # Keep the closest requests; GAS on the full city
                        # would be intractable in pure Python and the paper's
                        # point is exactly that GAS enumerates too much.
                        pool.sort(
                            key=lambda r: context.network.euclidean(
                                vehicle.location, r.source
                            )
                        )
                        pool = pool[: self._max_pool]
                    if not pool:
                        continue
                    groups = build_groups(
                        pool,
                        graph,
                        route,
                        context.oracle,
                        max_group_size=config.group_size_limit,
                        stats=self.grouping_stats,
                    )
                    self._last_group_count = max(self._last_group_count, len(groups))
                    if not groups:
                        continue
                    # Profit-greedy: maximise total direct trip length of the
                    # group, breaking ties toward the smaller added travel
                    # cost.
                    best = max(groups, key=lambda g: (g.direct_cost, -g.delta_cost))
                    accepted.setdefault(vehicle.vehicle_id, []).extend(best.requests)
                    routes[vehicle.vehicle_id] = RouteState(
                        vehicle_id=route.vehicle_id,
                        origin=route.origin,
                        departure_time=route.departure_time,
                        schedule=best.schedule,
                        capacity=route.capacity,
                        onboard=route.onboard,
                        min_insert_position=route.min_insert_position,
                    )
                    for rid in best.members:
                        remaining.pop(rid, None)
                    builder.remove(best.members)
                    progressed = True
                if not progressed or not remaining:
                    break
            assignments = [
                Assignment(
                    vehicle_id=vehicle_id,
                    schedule=routes[vehicle_id].schedule,
                    new_requests=tuple(requests),
                )
                for vehicle_id, requests in accepted.items()
            ]
        return DispatchResult(assignments=assignments)
