"""TicketAssign+: simulated parallel search with per-vehicle ticket locks.

Pan & Li [54] parallelise insertion-based dispatch by letting many workers
search concurrently and serialising conflicting updates with a ticket lock on
each vehicle.  Without real threads the same decision process is reproduced
round by round: in every round each unassigned request picks its best vehicle
*based on the schedules visible at the start of the round*; when several
requests pick the same vehicle only the cheapest one acquires the ticket and
the others retry against the updated state in the next round.  The number of
contention retries is recorded because it is what slows TicketAssign+ down
in the paper's experiments.
"""

from __future__ import annotations

from ..insertion.linear_insertion import best_insertion
from ..model.request import Request
from ..model.vehicle import RouteState
from .base import Assignment, DispatchContext, DispatchResult, Dispatcher, candidate_vehicles


class TicketAssignDispatcher(Dispatcher):
    """Round-based simulation of the ticket-locking parallel dispatcher."""

    name = "TicketAssign+"

    def __init__(
        self,
        *,
        max_candidates: int | None = 32,
        max_rounds: int = 50,
        reject_unassigned: bool = True,
    ) -> None:
        self._max_candidates = max_candidates
        self._max_rounds = max_rounds
        # Online semantics: requests that no worker could place are answered
        # with a rejection rather than retried in later batches.
        self._reject_unassigned = reject_unassigned
        self.contention_retries = 0

    def reset(self) -> None:
        self.contention_retries = 0

    def estimated_memory_bytes(self) -> int:
        # One lock record per vehicle plus per-request candidate scratch.
        return 150 * self.contention_retries + 2000

    def dispatch(self, context: DispatchContext) -> DispatchResult:
        routes: dict[int, RouteState] = {
            vehicle.vehicle_id: vehicle.route_state(context.current_time)
            for vehicle in context.vehicles
        }
        accepted: dict[int, list[Request]] = {}
        remaining: dict[int, Request] = {
            request.request_id: request for request in context.pending
        }
        for _ in range(self._max_rounds):
            if not remaining:
                break
            # Each request evaluates candidates against the schedules frozen
            # at the start of the round (as concurrent workers would).
            bids: dict[int, list[tuple[float, Request, object]]] = {}
            for request in remaining.values():
                best_vehicle_id = None
                best_outcome = None
                for vehicle in candidate_vehicles(
                    request, context, max_candidates=self._max_candidates
                ):
                    route = routes[vehicle.vehicle_id]
                    outcome = best_insertion(route, request, context.oracle)
                    if not outcome.feasible:
                        continue
                    if best_outcome is None or outcome.delta_cost < best_outcome.delta_cost:
                        best_outcome = outcome
                        best_vehicle_id = vehicle.vehicle_id
                if best_vehicle_id is None or best_outcome is None:
                    continue
                bids.setdefault(best_vehicle_id, []).append(
                    (best_outcome.delta_cost, request, best_outcome)
                )
            if not bids:
                break
            progressed = False
            for vehicle_id, vehicle_bids in bids.items():
                vehicle_bids.sort(key=lambda item: (item[0], item[1].request_id))
                delta, request, outcome = vehicle_bids[0]
                # Losing bidders retry next round: that is the lock contention.
                self.contention_retries += len(vehicle_bids) - 1
                old_route = routes[vehicle_id]
                routes[vehicle_id] = RouteState(
                    vehicle_id=old_route.vehicle_id,
                    origin=old_route.origin,
                    departure_time=old_route.departure_time,
                    schedule=outcome.schedule,
                    capacity=old_route.capacity,
                    onboard=old_route.onboard,
                    min_insert_position=old_route.min_insert_position,
                )
                accepted.setdefault(vehicle_id, []).append(request)
                del remaining[request.request_id]
                progressed = True
            if not progressed:
                break
        assignments = [
            Assignment(
                vehicle_id=vehicle_id,
                schedule=routes[vehicle_id].schedule,
                new_requests=tuple(requests),
            )
            for vehicle_id, requests in accepted.items()
        ]
        rejected = list(remaining.values()) if self._reject_unassigned else []
        return DispatchResult(assignments=assignments, rejected=rejected)
