"""SARD: Structure-Aware Ridesharing Dispatch (Algorithm 3).

SARD is the paper's contribution.  Per batch it:

1. updates the dynamic shareability graph with the newly released requests
   (Algorithm 1, with angle pruning),
2. builds, for every pending request, a priority queue of candidate vehicles
   ordered by *descending* additional travel cost -- requests propose to
   their worst vehicle first, leaving the cheap vehicles free for requests
   with fewer options,
3. runs proposal / acceptance rounds: each vehicle enumerates feasible
   groups among the requests that proposed to it (Algorithm 2) and accepts
   the group with the smallest *shareability loss* (Definition 6), returning
   the rest to the pool,
4. repeats until no unassigned request has a vehicle left to propose to.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from ..config import SimulationConfig
from ..grouping.additive_tree import GroupingStatistics, build_groups
from ..grouping.group import RequestGroup
from ..insertion.linear_insertion import best_insertion
from ..model.request import Request
from ..model.vehicle import RouteState, Vehicle
from ..observability.trace import get_tracer
from ..shareability.builder import DynamicShareabilityGraphBuilder
from ..shareability.graph import ShareabilityGraph
from ..shareability.loss import residual_shareability_loss, sharing_ratio
from .base import Assignment, DispatchContext, DispatchResult, Dispatcher, candidate_vehicles


@dataclass
class _VehicleState:
    """Per-batch working state of one vehicle during proposal/acceptance."""

    vehicle: Vehicle
    route: RouteState
    #: Requests that proposed to this vehicle in the current round.
    proposals: dict[int, Request] = field(default_factory=dict)
    #: Requests currently accepted by this vehicle (``w_x.ac`` in the paper).
    accepted: dict[int, Request] = field(default_factory=dict)
    #: The group realising the accepted set (carries the schedule).
    accepted_group: RequestGroup | None = None


class SARDDispatcher(Dispatcher):
    """The structure-aware dispatcher of the paper.

    Parameters
    ----------
    angle_threshold:
        Override for the angle pruning threshold.  ``None`` keeps the value
        from the simulation config; pass ``float('nan')`` via
        :meth:`without_angle_pruning` to disable pruning (the plain "SARD"
        row of Tables V/VI, versus "SARD-O" with pruning).
    max_candidates:
        Cap on the number of candidate vehicles per request (keeps the
        proposal queues short on large fleets).
    propose_worst_first:
        The paper describes requests proposing to their *most expensive*
        candidate vehicle first.  On the compressed synthetic workloads of
        this reproduction that ordering wastes fleet time and flattens
        SARD's advantage, so the default proposes cheapest-first; the
        paper-literal ordering is kept as an option and exercised by the
        proposal-order ablation benchmark (see DESIGN.md).
    prefer_larger_groups:
        Ablation switch: rank candidate groups primarily by size instead of
        by shareability loss.
    """

    name = "SARD"

    def __init__(
        self,
        *,
        angle_threshold: float | None | str = "config",
        max_candidates: int | None = 24,
        propose_worst_first: bool = False,
        prefer_larger_groups: bool = False,
    ) -> None:
        self._angle_override = angle_threshold
        self._max_candidates = max_candidates
        self._propose_worst_first = propose_worst_first
        self._prefer_larger_groups = prefer_larger_groups
        self._builder: DynamicShareabilityGraphBuilder | None = None
        self.grouping_stats = GroupingStatistics()
        self.rounds_executed = 0
        self._last_group_count = 0

    # ------------------------------------------------------------------ #
    # configuration helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def with_angle_pruning(cls, threshold: float | None = None, **kwargs: Any) -> "SARDDispatcher":
        """SARD-O: the variant with the angle pruning rule enabled."""
        dispatcher = cls(angle_threshold="config" if threshold is None else threshold, **kwargs)
        dispatcher.name = "SARD-O"
        return dispatcher

    @classmethod
    def without_angle_pruning(cls, **kwargs: Any) -> "SARDDispatcher":
        """Plain SARD: shareability graph built without angle pruning."""
        dispatcher = cls(angle_threshold=None, **kwargs)
        dispatcher.name = "SARD"
        return dispatcher

    def reset(self) -> None:
        self._builder = None
        self.grouping_stats = GroupingStatistics()
        self.rounds_executed = 0
        self._last_group_count = 0

    def estimated_memory_bytes(self) -> int:
        total = 0
        if self._builder is not None:
            total += self._builder.graph.estimated_memory_bytes()
        total += 300 * self._last_group_count
        return total

    @property
    def builder(self) -> DynamicShareabilityGraphBuilder | None:
        """The dynamic shareability-graph builder (populated after first batch)."""
        return self._builder

    # ------------------------------------------------------------------ #
    # main entry point
    # ------------------------------------------------------------------ #
    def dispatch(self, context: DispatchContext) -> DispatchResult:
        # Four contiguous stage spans cover the whole dispatch body, so a
        # traced batch decomposes its recorded latency without gaps.
        tracer = get_tracer()
        config = self._effective_config(context.config)
        builder = self._ensure_builder(context, config)

        # Synchronise the graph with the pending pool: assigned / expired
        # requests disappear, new ones are probed for shareable partners.
        with tracer.span("sard.sync_graph") as sync_span:
            pending_by_id = {request.request_id: request for request in context.pending}
            stale = [
                rid for rid in list(builder.graph.request_ids()) if rid not in pending_by_id
            ]
            builder.remove(stale)
            new_requests = [r for r in context.pending if r.request_id not in builder.graph]
            builder.update(new_requests)
            graph = builder.graph
            sync_span.tag("stale", len(stale))
            sync_span.tag("new_requests", len(new_requests))
            sync_span.tag("graph_edges", graph.num_edges)

        # Candidate priority queues.  The paper proposes to the *worst*
        # vehicle (largest insertion delta) first, leaving the cheap vehicles
        # free for requests with fewer options; ``propose_worst_first=False``
        # flips the order for the ablation study.
        with tracer.span(
            "sard.build_queues",
            pending=len(context.pending),
            vehicles=len(context.vehicles),
        ):
            states = {
                vehicle.vehicle_id: _VehicleState(
                    vehicle=vehicle, route=vehicle.route_state(context.current_time)
                )
                for vehicle in context.vehicles
            }
            sign = -1.0 if self._propose_worst_first else 1.0
            queues: dict[int, list[tuple[float, int]]] = {}
            assigned_to: dict[int, int] = {}
            for request in context.pending:
                queue: list[tuple[float, int]] = []
                candidates = candidate_vehicles(
                    request, context, max_candidates=self._max_candidates
                )
                if candidates:
                    # Batch the pick-up legs of every candidate's insertion
                    # test (vehicle position -> request source) into one
                    # oracle call: a reverse multi-source search for the graph
                    # backends, a bucket join for hub labels.  ``prefetch``
                    # leaves the logical query counters untouched.
                    context.oracle.prefetch(
                        [states[v.vehicle_id].route.origin for v in candidates],
                        (request.source,),
                    )
                for vehicle in candidates:
                    state = states[vehicle.vehicle_id]
                    outcome = best_insertion(state.route, request, context.oracle)
                    if not outcome.feasible:
                        continue
                    heapq.heappush(
                        queue, (sign * outcome.delta_cost, vehicle.vehicle_id)
                    )
                queues[request.request_id] = queue

        # -------------------- proposal / acceptance rounds -------------- #
        # Every round pops at least one candidate vehicle from each live
        # queue, so the natural bound is the longest queue; evictions can add
        # a few extra rounds, hence the slack.
        with tracer.span("sard.rounds") as rounds_span:
            rounds_before = self.rounds_executed
            batch_group_count = 0
            max_rounds = (self._max_candidates or len(context.vehicles)) * 2 + 10
            for _ in range(max_rounds):
                proposing = [
                    rid
                    for rid, queue in queues.items()
                    if queue and rid not in assigned_to
                ]
                if not proposing:
                    break
                self.rounds_executed += 1
                # Proposal phase: each unassigned request proposes to its
                # current worst remaining candidate vehicle.  Proposals
                # accumulate in the vehicle's pool R_wx across rounds
                # (Algorithm 3 only removes the accepted requests from it),
                # so later rounds can regroup earlier rejects with fresh
                # arrivals.
                touched: set[int] = set()
                for rid in proposing:
                    queue = queues[rid]
                    while queue:
                        _, vehicle_id = heapq.heappop(queue)
                        state = states.get(vehicle_id)
                        if state is None:
                            continue
                        state.proposals[rid] = pending_by_id[rid]
                        touched.add(vehicle_id)
                        break
                if not touched:
                    break
                # Acceptance phase: every vehicle with new proposals
                # re-selects its best group among its accumulated pool plus
                # what it already accepted.  Requests currently held by
                # another vehicle are not poached.
                for vehicle_id in sorted(touched):
                    state = states[vehicle_id]
                    pool = dict(state.accepted)
                    for rid, request in state.proposals.items():
                        holder = assigned_to.get(rid)
                        if holder is None or holder == vehicle_id:
                            pool[rid] = request
                    if not pool:
                        continue
                    groups = build_groups(
                        list(pool.values()),
                        graph,
                        state.route,
                        context.oracle,
                        max_group_size=config.group_size_limit,
                        stats=self.grouping_stats,
                    )
                    batch_group_count = max(batch_group_count, len(groups))
                    best = self._select_group(groups, graph)
                    if best is None:
                        continue
                    chosen = set(best.members)
                    previously_accepted = set(state.accepted)
                    state.accepted = {rid: pool[rid] for rid in sorted(chosen)}
                    state.accepted_group = best
                    for rid in sorted(chosen):
                        assigned_to[rid] = vehicle_id
                        state.proposals.pop(rid, None)
                    # Requests evicted from the accepted set go back to the
                    # working pool for later proposals (they keep their
                    # queues).
                    for rid in sorted(previously_accepted - chosen):
                        if assigned_to.get(rid) == vehicle_id:
                            assigned_to.pop(rid, None)
            rounds_span.tag("rounds", self.rounds_executed - rounds_before)
            rounds_span.tag("groups", batch_group_count)

        # -------------------- materialise assignments ------------------- #
        with tracer.span("sard.materialize") as materialize_span:
            assignments: list[Assignment] = []
            for state in states.values():
                if state.accepted_group is None or not state.accepted:
                    continue
                assignments.append(
                    Assignment(
                        vehicle_id=state.vehicle.vehicle_id,
                        schedule=state.accepted_group.schedule,
                        new_requests=tuple(state.accepted.values()),
                    )
                )
            # Assigned requests leave the shareability graph right away so
            # that the next batch starts from a clean working set.
            builder.remove(list(assigned_to))
            materialize_span.tag("assignments", len(assignments))
        # The memory estimate tracks the group pool of the *last* batch, not
        # a running maximum over the whole simulation.
        self._last_group_count = batch_group_count
        return DispatchResult(assignments=assignments)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _effective_config(self, config: SimulationConfig) -> SimulationConfig:
        if self._angle_override == "config":
            return config
        return config.with_overrides(angle_threshold=self._angle_override)

    def _ensure_builder(
        self, context: DispatchContext, config: SimulationConfig
    ) -> DynamicShareabilityGraphBuilder:
        if self._builder is None:
            self._builder = DynamicShareabilityGraphBuilder(
                network=context.network,
                oracle=context.oracle,
                config=config,
                average_speed=context.average_speed,
            )
        return self._builder

    def _select_group(
        self, groups: list[RequestGroup], graph: ShareabilityGraph
    ) -> RequestGroup | None:
        """Pick the group with minimal residual shareability loss (Thm. IV.1).

        The residual variant of Definition 6 counts only the sharing
        opportunities destroyed among the requests left behind, so cohesive
        cliques score low and singleton groups score their outside degree.
        Ties are broken by the sharing ratio (planned cost over the members'
        direct costs, lower is better) and then by preferring larger groups,
        following Example 4 of the paper.
        """
        best: RequestGroup | None = None
        best_key: tuple | None = None
        for group in groups:
            members = [rid for rid in group.members if rid in graph]
            if members:
                loss = residual_shareability_loss(graph, members)
            else:
                loss = 0.0
            ratio = sharing_ratio(graph, members, group.total_cost) if members else 0.0
            if self._prefer_larger_groups:
                key = (-group.size, loss, ratio)
            else:
                key = (loss, ratio, -group.size)
            if best_key is None or key < best_key:
                best, best_key = group.with_loss(loss), key
        return best
