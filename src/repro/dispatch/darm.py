"""DARM+DPRS substitute: demand-anticipating repositioning + insertion matching.

The paper compares against DARM+DPRS [53], a deep-reinforcement-learning
dispatcher that jointly matches requests and repositions idle vehicles toward
areas of anticipated demand.  Training an RL policy is outside the scope of a
deterministic reproduction, so this module implements a model-free stand-in
with the same observable behaviour:

* a per-grid-cell demand estimate maintained as an exponential moving average
  of recent request arrivals (the "demand prediction"),
* idle vehicles beyond a small reserve are repositioned toward the
  highest-demand cells, paying the relocation travel time (the extra travel
  cost the paper attributes to DARM+DPRS), and
* request matching itself uses greedy linear insertion, like the online
  baselines.

The substitution is documented in ``DESIGN.md``: what matters for the
reproduced figures is that DARM+DPRS behaves like an online method whose
repositioning helps only when requests are sparse and otherwise adds travel
cost -- which this heuristic reproduces.
"""

from __future__ import annotations

from ..insertion.linear_insertion import best_insertion
from ..model.request import Request
from ..model.vehicle import RouteState
from ..network.grid_index import GridIndex
from .base import Assignment, DispatchContext, DispatchResult, Dispatcher, candidate_vehicles


class DARMDispatcher(Dispatcher):
    """Demand-anticipating repositioning with greedy insertion matching."""

    name = "DARM+DPRS"

    def __init__(
        self,
        *,
        smoothing: float = 0.3,
        reposition_fraction: float = 0.1,
        reposition_period: float = 30.0,
        max_candidates: int | None = 32,
        reject_unassigned: bool = True,
    ) -> None:
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self._smoothing = smoothing
        self._reposition_fraction = reposition_fraction
        self._reposition_period = reposition_period
        self._max_candidates = max_candidates
        # Online semantics: unplaceable requests are rejected immediately.
        self._reject_unassigned = reject_unassigned
        self._demand: dict[tuple[int, int], float] = {}
        self._last_reposition = float("-inf")
        self.repositioned = 0
        self.reposition_cost = 0.0

    def reset(self) -> None:
        self._demand = {}
        self._last_reposition = float("-inf")
        self.repositioned = 0
        self.reposition_cost = 0.0

    def estimated_memory_bytes(self) -> int:
        # Demand table plus (a stand-in for) the learned policy parameters.
        return 80 * len(self._demand) + 4000

    # ------------------------------------------------------------------ #
    def dispatch(self, context: DispatchContext) -> DispatchResult:
        self._update_demand(context)
        result = self._match(context)
        self._reposition(context, result)
        return result

    # ------------------------------------------------------------------ #
    def _update_demand(self, context: DispatchContext) -> None:
        """Exponential moving average of request arrivals per grid cell."""
        arrivals: dict[tuple[int, int], int] = {}
        for request in context.batch:
            xy = context.network.position(request.source)
            cell = context.vehicle_index.cell_of_point(*xy)
            arrivals[cell] = arrivals.get(cell, 0) + 1
        cells = set(self._demand) | set(arrivals)
        for cell in cells:
            previous = self._demand.get(cell, 0.0)
            observed = float(arrivals.get(cell, 0))
            self._demand[cell] = (
                (1.0 - self._smoothing) * previous + self._smoothing * observed
            )

    def _match(self, context: DispatchContext) -> DispatchResult:
        routes: dict[int, RouteState] = {
            vehicle.vehicle_id: vehicle.route_state(context.current_time)
            for vehicle in context.vehicles
        }
        accepted: dict[int, list[Request]] = {}
        rejected: list[Request] = []
        for request in sorted(context.pending, key=lambda r: (r.release_time, r.request_id)):
            best_vehicle_id = None
            best_outcome = None
            for vehicle in candidate_vehicles(
                request, context, max_candidates=self._max_candidates
            ):
                route = routes[vehicle.vehicle_id]
                outcome = best_insertion(route, request, context.oracle)
                if not outcome.feasible:
                    continue
                if best_outcome is None or outcome.delta_cost < best_outcome.delta_cost:
                    best_outcome = outcome
                    best_vehicle_id = vehicle.vehicle_id
            if best_vehicle_id is None or best_outcome is None:
                if self._reject_unassigned:
                    rejected.append(request)
                continue
            old_route = routes[best_vehicle_id]
            routes[best_vehicle_id] = RouteState(
                vehicle_id=old_route.vehicle_id,
                origin=old_route.origin,
                departure_time=old_route.departure_time,
                schedule=best_outcome.schedule,
                capacity=old_route.capacity,
                onboard=old_route.onboard,
                min_insert_position=old_route.min_insert_position,
            )
            accepted.setdefault(best_vehicle_id, []).append(request)
        assignments = [
            Assignment(
                vehicle_id=vehicle_id,
                schedule=routes[vehicle_id].schedule,
                new_requests=tuple(requests),
            )
            for vehicle_id, requests in accepted.items()
        ]
        return DispatchResult(assignments=assignments, rejected=rejected)

    def _reposition(self, context: DispatchContext, result: DispatchResult) -> None:
        """Send a fraction of the idle vehicles toward high-demand cells.

        Repositioning is modelled as a committed relocation: the vehicle's
        location jumps to the target node, its clock advances by the travel
        time and the travel time is charged to its odometer, so it cannot
        serve requests until it (virtually) arrives.
        """
        if not self._demand:
            return
        if context.current_time - self._last_reposition < self._reposition_period:
            return
        self._last_reposition = context.current_time
        assigned_vehicles = {a.vehicle_id for a in result.assignments}
        idle = [
            vehicle
            for vehicle in context.vehicles
            if vehicle.is_idle and vehicle.vehicle_id not in assigned_vehicles
        ]
        if not idle:
            return
        budget = max(int(len(idle) * self._reposition_fraction), 0)
        if budget == 0:
            return
        hot_cells = sorted(self._demand.items(), key=lambda kv: kv[1], reverse=True)
        hot_cells = [cell for cell, demand in hot_cells[:budget] if demand > 0]
        if not hot_cells:
            return
        index: GridIndex = context.vehicle_index
        for vehicle, cell in zip(idle, hot_cells):
            target_xy = index.cell_center(cell)
            target_node = context.network.nearest_node(*target_xy)
            if target_node == vehicle.location:
                continue
            travel = context.oracle.cost(vehicle.location, target_node)
            if travel <= 0 or travel == float("inf"):
                continue
            vehicle.total_travel_time += travel
            vehicle._clock = max(vehicle._clock, context.current_time) + travel
            vehicle.location = target_node
            index.move(vehicle.vehicle_id, *context.network.position(target_node))
            self.repositioned += 1
            self.reposition_cost += travel
