"""Dispatchers: SARD and the five baselines evaluated in the paper.

All dispatchers implement the :class:`~repro.dispatch.base.Dispatcher`
interface: the simulator hands them a :class:`~repro.dispatch.base.DispatchContext`
once per batch and receives back schedule assignments.

* :class:`~repro.dispatch.sard.SARDDispatcher` -- the paper's contribution
  (Algorithm 3): structure-aware proposal/acceptance over the shareability
  graph with shareability-loss group selection.
* :class:`~repro.dispatch.prunegdp.PruneGDPDispatcher` -- online greedy
  linear insertion (Tong et al. [37]).
* :class:`~repro.dispatch.ticket_assign.TicketAssignDispatcher` -- simulated
  parallel ticket-locking search (Pan & Li [54]).
* :class:`~repro.dispatch.gas.GASDispatcher` -- additive-tree batch
  dispatch with profit-greedy group selection (Zeng et al. [33]).
* :class:`~repro.dispatch.rtv.RTVDispatcher` -- trip-vehicle assignment via
  integer programming (Alonso-Mora et al. [27]).
* :class:`~repro.dispatch.darm.DARMDispatcher` -- demand-anticipating
  repositioning + insertion matching, standing in for the deep-RL
  DARM+DPRS [53].
"""

from typing import Any

from .base import (
    Assignment,
    DispatchContext,
    DispatchResult,
    Dispatcher,
    candidate_vehicles,
    requests_by_vehicle,
)
from .sard import SARDDispatcher
from .prunegdp import PruneGDPDispatcher
from .ticket_assign import TicketAssignDispatcher
from .gas import GASDispatcher
from .rtv import RTVDispatcher
from .darm import DARMDispatcher

#: Registry mapping the paper's algorithm names to dispatcher factories.
DISPATCHER_REGISTRY = {
    "SARD": SARDDispatcher,
    "pruneGDP": PruneGDPDispatcher,
    "TicketAssign+": TicketAssignDispatcher,
    "GAS": GASDispatcher,
    "RTV": RTVDispatcher,
    "DARM+DPRS": DARMDispatcher,
}


def make_dispatcher(name: str, **kwargs: Any) -> Dispatcher:
    """Instantiate a dispatcher by its paper name (case-sensitive)."""
    try:
        factory = DISPATCHER_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown dispatcher {name!r}; choose from {sorted(DISPATCHER_REGISTRY)}"
        ) from exc
    return factory(**kwargs)


__all__ = [
    "Assignment",
    "DispatchContext",
    "DispatchResult",
    "Dispatcher",
    "candidate_vehicles",
    "requests_by_vehicle",
    "SARDDispatcher",
    "PruneGDPDispatcher",
    "TicketAssignDispatcher",
    "GASDispatcher",
    "RTVDispatcher",
    "DARMDispatcher",
    "DISPATCHER_REGISTRY",
    "make_dispatcher",
]
