"""StructRide reproduction: structure-aware batched dynamic ridesharing.

This package is a from-scratch Python reproduction of *StructRide: A
Framework to Exploit the Structure Information of Shareability Graph in
Ridesharing* (ICDE 2025).  The public API re-exports the pieces a downstream
user typically needs:

* the road-network substrate (:class:`RoadNetwork`, :class:`DistanceOracle`,
  :class:`GridIndex`, synthetic city generators),
* the ridesharing data model (:class:`Request`, :class:`Vehicle`,
  :class:`Schedule`),
* the shareability graph and its builder,
* the SARD dispatcher and the five baselines,
* the batch simulator, the dispatch service and the experiment harness.

Quick start -- dispatch as a service::

    from repro import DispatchService, RideRequest, SARDDispatcher, make_workload

    workload = make_workload("nyc", scale=0.1)
    service = DispatchService(
        network=workload.network,
        oracle=workload.fresh_oracle(),
        vehicles=workload.fresh_vehicles(),
        dispatcher=SARDDispatcher(),
        config=workload.simulation_config,
    )
    outcome = service.serve(
        RideRequest.from_request(r) for r in workload.requests
    )
    print(outcome.service_rate, outcome.unified_cost)

or, for one-call experiment runs, the harness front door::

    from repro import RunSpec, run

    outcome = run(RunSpec(mode="single", preset="nyc", algorithm="SARD"))
    print(outcome.simulation.service_rate)
"""

import warnings

from .config import (
    ChaosConfig,
    DemandSurge,
    ExperimentConfig,
    ResilienceConfig,
    ScenarioConfig,
    ServiceConfig,
    SimulationConfig,
    WorkloadConfig,
)
from .exceptions import (
    ConfigError,
    ConfigurationError,
    DispatchError,
    InfeasibleInsertionError,
    InjectedFaultError,
    NetworkError,
    OracleBuildError,
    OracleRepairError,
    ReproError,
    ResilienceError,
    ScenarioError,
    ScheduleError,
    SchemaError,
    ServiceError,
    UnreachableError,
    WorkloadError,
)
from .network import (
    DistanceOracle,
    GridIndex,
    QueryStatistics,
    RoadNetwork,
    grid_city,
    make_city,
    ring_radial_city,
)
from .model import (
    Batch,
    BatchStream,
    Request,
    RouteState,
    Schedule,
    ScheduleEvaluation,
    Vehicle,
    Waypoint,
    WaypointKind,
)
from .insertion import (
    InsertionOutcome,
    KineticTreeScheduler,
    are_shareable,
    best_insertion,
    best_pair_schedule,
    insert_sequence,
)
from .shareability import (
    DynamicShareabilityGraphBuilder,
    ShareabilityGraph,
    expected_sharing_probability,
    shareability_loss,
    substitute_supernode,
)
from .grouping import RequestGroup, build_groups
from .dispatch import (
    DISPATCHER_REGISTRY,
    Assignment,
    DARMDispatcher,
    DispatchContext,
    DispatchResult,
    Dispatcher,
    GASDispatcher,
    PruneGDPDispatcher,
    RTVDispatcher,
    SARDDispatcher,
    TicketAssignDispatcher,
    make_dispatcher,
)
from .simulation import MetricsCollector, SimulationResult, Simulator, unified_cost
from .workloads import Workload, make_workload
from .scenarios import (
    CHAOS_PRESETS,
    Scenario,
    ScenarioTimeline,
    make_chaos_config,
    make_refresh_policy,
    make_scenario,
    make_scenario_workload,
)
from .resilience import (
    BreakerState,
    ChaosOracle,
    CircuitBreaker,
    FaultInjector,
    InvariantProbe,
    ResilienceManager,
    RetryPolicy,
)
from .observability import (
    MetricRegistry,
    SpanRecord,
    SpanTracer,
    TraceConfig,
    get_tracer,
    markdown_report,
    prometheus_text,
    set_tracer,
    spans_to_jsonl,
    tracing,
    use_tracer,
    write_run_artifacts,
)
from .service import (
    Admission,
    AssignmentEvent,
    AssignmentEventKind,
    DispatchService,
    IngestionQueue,
    RejectionReason,
    RideRequest,
    ServiceResult,
    ServiceStats,
)
from .experiments import (
    ExperimentRunner,
    ResultRow,
    RunResult,
    RunSpec,
    SweepResult,
    run,
    run_grid,
)

__version__ = "1.0.0"

#: Old top-level names served lazily (with a DeprecationWarning) by
#: :func:`__getattr__`: name -> (harness attribute, suggested replacement).
_DEPRECATED_ALIASES: dict[str, tuple[str, str]] = {
    "run_traced_case": ("run_traced_case", 'run(RunSpec(mode="traced", ...))'),
    "run_scenario_case": (
        "run_scenario_case", 'run(RunSpec(mode="scenario", ...))'
    ),
    "run_scenario_grid": (
        "run_scenario_grid", 'run_grid(RunSpec.grid(mode="scenario", ...))'
    ),
    "run_chaos_case": ("run_chaos_case", 'run(RunSpec(mode="chaos", ...))'),
    "run_chaos_grid": (
        "run_chaos_grid", 'run_grid(RunSpec.grid(mode="chaos", ...))'
    ),
}


def __getattr__(name: str):
    """Deprecation shim: keep the pre-service import paths alive.

    ``from repro import run_traced_case`` (and the scenario/chaos case and
    grid helpers) still work, but resolving the attribute emits a
    :class:`DeprecationWarning` naming the :func:`run`/:class:`RunSpec`
    replacement.  The returned callables are the harness' own delegating
    wrappers, so *calling* them warns too.
    """
    try:
        attr, replacement = _DEPRECATED_ALIASES[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"importing {name} from the repro package is deprecated; "
        f"use {replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from . import experiments

    return getattr(experiments.harness, attr)

__all__ = [
    "__version__",
    # configuration
    "SimulationConfig",
    "WorkloadConfig",
    "ExperimentConfig",
    "ScenarioConfig",
    "ServiceConfig",
    "ChaosConfig",
    "ResilienceConfig",
    "DemandSurge",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "ConfigError",
    "ScenarioError",
    "NetworkError",
    "UnreachableError",
    "ScheduleError",
    "InfeasibleInsertionError",
    "DispatchError",
    "WorkloadError",
    "ResilienceError",
    "OracleBuildError",
    "OracleRepairError",
    "InjectedFaultError",
    "ServiceError",
    "SchemaError",
    # network substrate
    "RoadNetwork",
    "DistanceOracle",
    "QueryStatistics",
    "GridIndex",
    "grid_city",
    "ring_radial_city",
    "make_city",
    # data model
    "Request",
    "Vehicle",
    "RouteState",
    "Schedule",
    "ScheduleEvaluation",
    "Waypoint",
    "WaypointKind",
    "Batch",
    "BatchStream",
    # insertion operators
    "InsertionOutcome",
    "best_insertion",
    "insert_sequence",
    "KineticTreeScheduler",
    "are_shareable",
    "best_pair_schedule",
    # shareability graph
    "ShareabilityGraph",
    "DynamicShareabilityGraphBuilder",
    "shareability_loss",
    "substitute_supernode",
    "expected_sharing_probability",
    # grouping
    "RequestGroup",
    "build_groups",
    # dispatchers
    "Dispatcher",
    "DispatchContext",
    "DispatchResult",
    "Assignment",
    "SARDDispatcher",
    "PruneGDPDispatcher",
    "TicketAssignDispatcher",
    "GASDispatcher",
    "RTVDispatcher",
    "DARMDispatcher",
    "DISPATCHER_REGISTRY",
    "make_dispatcher",
    # simulation
    "Simulator",
    "SimulationResult",
    "MetricsCollector",
    "unified_cost",
    # workloads
    "Workload",
    "make_workload",
    # scenarios
    "Scenario",
    "ScenarioTimeline",
    "make_scenario",
    "make_scenario_workload",
    "make_refresh_policy",
    "CHAOS_PRESETS",
    "make_chaos_config",
    # resilience
    "ResilienceManager",
    "FaultInjector",
    "ChaosOracle",
    "CircuitBreaker",
    "BreakerState",
    "InvariantProbe",
    "RetryPolicy",
    # observability
    "SpanTracer",
    "SpanRecord",
    "TraceConfig",
    "MetricRegistry",
    "tracing",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "spans_to_jsonl",
    "prometheus_text",
    "markdown_report",
    "write_run_artifacts",
    # dispatch service
    "DispatchService",
    "ServiceResult",
    "IngestionQueue",
    "Admission",
    "RideRequest",
    "AssignmentEvent",
    "AssignmentEventKind",
    "ServiceStats",
    "RejectionReason",
    # experiments
    "ExperimentRunner",
    "SweepResult",
    "ResultRow",
    "RunSpec",
    "RunResult",
    "run",
    "run_grid",
]
