"""Directed weighted road-network graph with planar coordinates.

The network is the substrate every other subsystem queries: edge weights are
average travel times in seconds (the paper's ``cost(u, v)``), and node
coordinates are used by the grid index and by the angle-pruning rule of the
shareability-graph builder.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from collections.abc import Iterable, Iterator
from typing import Any

from ..exceptions import NetworkError

#: Edge mutations remembered by the journal before it gives up and reports
#: "unknown history" (incremental consumers then fall back to a rebuild).
JOURNAL_LIMIT = 100_000


class RoadNetwork:
    """A directed, weighted road graph with 2-D node coordinates.

    Nodes are integer identifiers with an ``(x, y)`` position expressed in
    meters (any planar unit works as long as it is consistent).  Edges carry
    a positive travel time in seconds.

    The class is intentionally a thin adjacency structure: all routing
    intelligence lives in :class:`~repro.network.shortest_path.DistanceOracle`.
    """

    def __init__(self) -> None:
        self._positions: dict[int, tuple[float, float]] = {}
        self._adjacency: dict[int, dict[int, float]] = {}
        self._reverse: dict[int, dict[int, float]] = {}
        self._num_edges = 0
        self._mutations = 0
        # Bounded edge-mutation journal: one ``(u, v)`` entry per edge
        # add/reweight/removal, aligned with ``mutation_count`` so holders
        # of preprocessed structures can ask "which edges changed since my
        # snapshot?" (incremental CH repair).  Node mutations invalidate it:
        # a changed node set cannot be repaired, only rebuilt.
        self._journal: deque[tuple[int, int]] = deque()
        self._journal_base = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: int, x: float, y: float) -> None:
        """Add (or move) a node with planar coordinates ``(x, y)``."""
        self._mutations += 1
        self._journal.clear()
        self._journal_base = self._mutations
        if node in self._positions:
            self._positions[node] = (float(x), float(y))
            return
        self._positions[node] = (float(x), float(y))
        self._adjacency[node] = {}
        self._reverse[node] = {}

    def add_edge(
        self, u: int, v: int, cost: float, *, bidirectional: bool = False
    ) -> None:
        """Add a directed edge ``u -> v`` with a positive travel time.

        With ``bidirectional=True`` the reverse edge ``v -> u`` is added with
        the same cost.
        """
        if u not in self._positions or v not in self._positions:
            raise NetworkError(f"both endpoints must exist before adding edge ({u}, {v})")
        if cost < 0:
            raise NetworkError(f"edge ({u}, {v}) has negative cost {cost}")
        if u == v:
            raise NetworkError(f"self-loop edges are not allowed (node {u})")
        if v not in self._adjacency[u]:
            self._num_edges += 1
        self._adjacency[u][v] = float(cost)
        self._reverse[v][u] = float(cost)
        self._mutations += 1
        self._journal_append(u, v)
        if bidirectional:
            self.add_edge(v, u, cost, bidirectional=False)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the directed edge ``u -> v``."""
        try:
            del self._adjacency[u][v]
        except KeyError as exc:
            raise NetworkError(f"no edge between {u} and {v}") from exc
        del self._reverse[v][u]
        self._num_edges -= 1
        self._mutations += 1
        self._journal_append(u, v)

    def _journal_append(self, u: int, v: int) -> None:
        self._journal.append((u, v))
        if len(self._journal) > JOURNAL_LIMIT:
            self._journal.popleft()
            self._journal_base += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the network."""
        return len(self._positions)

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the network."""
        return self._num_edges

    @property
    def mutation_count(self) -> int:
        """Monotonic counter bumped on every structural mutation.

        Every node addition/move and every edge add/reweight/removal bumps
        it, so consumers holding preprocessed structures (the routing layer's
        :func:`~repro.network.routing.backends.routing_data`) can detect
        staleness in O(1) -- unlike a content checksum, two mutations can
        never cancel out.
        """
        return self._mutations

    def edge_mutations_since(self, count: int) -> list[tuple[int, int]] | None:
        """Directed edges mutated since ``mutation_count`` was ``count``.

        Returns the complete ``(u, v)`` list (duplicates preserved, in
        application order) when the bounded journal still covers the range,
        or ``None`` when it does not -- the journal overflowed, ``count``
        predates the last node mutation, or ``count`` is out of range --
        in which case incremental consumers must fall back to a rebuild.
        """
        if count < self._journal_base or count > self._mutations:
            return None
        offset = count - self._journal_base
        return list(itertools.islice(self._journal, offset, None))

    def nodes(self) -> Iterator[int]:
        """Iterate over node identifiers."""
        return iter(self._positions)

    def has_node(self, node: int) -> bool:
        """Return ``True`` if the node exists."""
        return node in self._positions

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the directed edge ``u -> v`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def edge_cost(self, u: int, v: int) -> float:
        """Travel time of the directed edge ``u -> v``."""
        try:
            return self._adjacency[u][v]
        except KeyError as exc:
            raise NetworkError(f"no edge between {u} and {v}") from exc

    def neighbors(self, node: int) -> Iterator[tuple[int, float]]:
        """Iterate over ``(successor, cost)`` pairs of ``node``."""
        try:
            adjacency = self._adjacency[node]
        except KeyError as exc:
            raise NetworkError(f"unknown node {node}") from exc
        return iter(adjacency.items())

    def predecessors(self, node: int) -> Iterator[tuple[int, float]]:
        """Iterate over ``(predecessor, cost)`` pairs of ``node``."""
        try:
            reverse = self._reverse[node]
        except KeyError as exc:
            raise NetworkError(f"unknown node {node}") from exc
        return iter(reverse.items())

    def out_degree(self, node: int) -> int:
        """Number of outgoing edges of ``node``."""
        if node not in self._adjacency:
            raise NetworkError(f"unknown node {node}")
        return len(self._adjacency[node])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(u, v, cost)`` triples of every directed edge."""
        for u, adjacency in self._adjacency.items():
            for v, cost in adjacency.items():
                yield u, v, cost

    def position(self, node: int) -> tuple[float, float]:
        """Planar coordinates of ``node``."""
        try:
            return self._positions[node]
        except KeyError as exc:
            raise NetworkError(f"unknown node {node}") from exc

    def euclidean(self, u: int, v: int) -> float:
        """Straight-line distance between two nodes, in coordinate units."""
        ux, uy = self.position(u)
        vx, vy = self.position(v)
        return math.hypot(ux - vx, uy - vy)

    def bounding_box(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all node positions."""
        if not self._positions:
            raise NetworkError("bounding box of an empty network is undefined")
        xs = [p[0] for p in self._positions.values()]
        ys = [p[1] for p in self._positions.values()]
        return min(xs), min(ys), max(xs), max(ys)

    def nearest_node(self, x: float, y: float) -> int:
        """Node whose coordinates are closest to ``(x, y)`` (linear scan)."""
        if not self._positions:
            raise NetworkError("nearest_node on an empty network is undefined")
        best_node = -1
        best_dist = math.inf
        for node, (nx, ny) in self._positions.items():
            dist = (nx - x) ** 2 + (ny - y) ** 2
            if dist < best_dist:
                best_dist = dist
                best_node = node
        return best_node

    # ------------------------------------------------------------------ #
    # interoperability
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> Any:
        """Export the network as a :class:`networkx.DiGraph` (for tests/analysis)."""
        import networkx as nx

        graph = nx.DiGraph()
        for node, (x, y) in self._positions.items():
            graph.add_node(node, x=x, y=y)
        for u, v, cost in self.edges():
            graph.add_edge(u, v, weight=cost)
        return graph

    @classmethod
    def from_networkx(cls, graph: Any, *, weight: str = "weight") -> "RoadNetwork":
        """Build a :class:`RoadNetwork` from a networkx graph.

        Node attributes ``x``/``y`` (or ``pos``) provide coordinates; missing
        coordinates default to ``(0, 0)``.
        """
        network = cls()
        for node, data in graph.nodes(data=True):
            if "pos" in data:
                x, y = data["pos"]
            else:
                x, y = data.get("x", 0.0), data.get("y", 0.0)
            network.add_node(int(node), float(x), float(y))
        for u, v, data in graph.edges(data=True):
            network.add_edge(int(u), int(v), float(data.get(weight, 1.0)))
            if not graph.is_directed():
                network.add_edge(int(v), int(u), float(data.get(weight, 1.0)))
        return network

    @classmethod
    def from_edge_list(
        cls,
        positions: dict[int, tuple[float, float]],
        edges: Iterable[tuple[int, int, float]],
        *,
        bidirectional: bool = True,
    ) -> "RoadNetwork":
        """Build a network from a coordinate map and an edge list."""
        network = cls()
        for node, (x, y) in positions.items():
            network.add_node(node, x, y)
        for u, v, cost in edges:
            network.add_edge(u, v, cost, bidirectional=bidirectional)
        return network

    def __contains__(self, node: int) -> bool:
        return node in self._positions

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RoadNetwork(nodes={self.num_nodes}, edges={self.num_edges})"
