"""Road-network substrate: graph model, shortest paths and spatial indexing.

The paper evaluates StructRide on the Chengdu and New York road networks
retrieved from OpenStreetMap and answers shortest-path queries with hub
labeling plus an LRU cache.  This package provides the same interfaces built
from scratch:

* :class:`~repro.network.road_network.RoadNetwork` -- directed, weighted
  road graph with planar node coordinates.
* :class:`~repro.network.shortest_path.DistanceOracle` -- cached
  shortest-path (travel-time) oracle with query statistics, a facade over
  the pluggable routing backends of :mod:`repro.network.routing`
  (plain/ALT Dijkstra on a CSR graph, contraction hierarchies, hub labels).
* :class:`~repro.network.grid_index.GridIndex` -- the n x n grid spatial
  index used to retrieve nearby vehicles and requests in constant time.
* :mod:`~repro.network.generators` -- synthetic city generators standing in
  for the OSM road networks.
"""

from .grid_index import GridIndex
from .road_network import RoadNetwork
from .routing import (
    BACKEND_NAMES,
    CSRGraph,
    ContractionHierarchy,
    HubLabeling,
    routing_data,
)
from .shortest_path import DistanceOracle, QueryStatistics
from .generators import (
    grid_city,
    ring_radial_city,
    make_city,
    CityPreset,
)

__all__ = [
    "BACKEND_NAMES",
    "RoadNetwork",
    "DistanceOracle",
    "QueryStatistics",
    "CSRGraph",
    "ContractionHierarchy",
    "HubLabeling",
    "routing_data",
    "GridIndex",
    "grid_city",
    "ring_radial_city",
    "make_city",
    "CityPreset",
]
