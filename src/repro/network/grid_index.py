"""Uniform grid spatial index (the paper's n x n grid index).

StructRide partitions the road network into ``n x n`` square cells so that
moving vehicles can be re-indexed in constant time and so that candidate
vehicles / requests around a location can be retrieved with a range query.
The same structure backs two different uses in this reproduction:

* indexing vehicles by their current node (updated as the simulator moves
  them), and
* indexing the source nodes of pending requests inside the shareability
  graph builder (Algorithm 1, line 4).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

from ..exceptions import NetworkError
from .road_network import RoadNetwork


class GridIndex:
    """A uniform grid over a planar bounding box storing point objects.

    Objects are identified by hashable keys and have an ``(x, y)`` position.
    Insertion, removal and movement are O(1); range queries touch only the
    cells overlapping the query disk.
    """

    def __init__(
        self,
        bounds: tuple[float, float, float, float],
        cells_per_axis: int = 32,
    ) -> None:
        min_x, min_y, max_x, max_y = bounds
        if max_x <= min_x or max_y <= min_y:
            raise NetworkError("grid bounds must have positive extent")
        if cells_per_axis < 1:
            raise NetworkError("cells_per_axis must be at least 1")
        self._min_x = float(min_x)
        self._min_y = float(min_y)
        self._max_x = float(max_x)
        self._max_y = float(max_y)
        self._cells_per_axis = int(cells_per_axis)
        self._cell_width = (self._max_x - self._min_x) / cells_per_axis
        self._cell_height = (self._max_y - self._min_y) / cells_per_axis
        self._cells: dict[tuple[int, int], set] = {}
        self._positions: dict[object, tuple[float, float]] = {}

    @classmethod
    def for_network(cls, network: RoadNetwork, cells_per_axis: int = 32) -> "GridIndex":
        """Create an index covering the bounding box of ``network``."""
        min_x, min_y, max_x, max_y = network.bounding_box()
        # Pad degenerate boxes so a single-node network still indexes.
        if max_x - min_x <= 0:
            max_x = min_x + 1.0
        if max_y - min_y <= 0:
            max_y = min_y + 1.0
        return cls((min_x, min_y, max_x, max_y), cells_per_axis)

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def insert(self, key: int, x: float, y: float) -> None:
        """Insert (or move) ``key`` at position ``(x, y)``."""
        if key in self._positions:
            self.remove(key)
        cell = self._cell_of(x, y)
        self._cells.setdefault(cell, set()).add(key)
        self._positions[key] = (float(x), float(y))

    def remove(self, key: int) -> None:
        """Remove ``key`` from the index; missing keys are ignored."""
        position = self._positions.pop(key, None)
        if position is None:
            return
        cell = self._cell_of(*position)
        members = self._cells.get(cell)
        if members is not None:
            members.discard(key)
            if not members:
                del self._cells[cell]

    def move(self, key: int, x: float, y: float) -> None:
        """Update the position of ``key`` (inserting it if absent)."""
        self.insert(key, x, y)

    def clear(self) -> None:
        """Remove every object."""
        self._cells.clear()
        self._positions.clear()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, key: int) -> bool:
        return key in self._positions

    def position(self, key: int) -> tuple[float, float]:
        """Stored position of ``key``."""
        try:
            return self._positions[key]
        except KeyError as exc:
            raise NetworkError(f"key {key!r} is not in the grid index") from exc

    def keys(self) -> Iterator:
        """Iterate over all indexed keys."""
        return iter(self._positions)

    def query_radius(self, x: float, y: float, radius: float) -> list:
        """All keys within Euclidean distance ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise NetworkError("radius must be non-negative")
        results = []
        radius_sq = radius * radius
        for cell in self._cells_overlapping(x, y, radius):
            for key in self._cells.get(cell, ()):
                px, py = self._positions[key]
                if (px - x) ** 2 + (py - y) ** 2 <= radius_sq:
                    results.append(key)
        return results

    def query_rectangle(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> list:
        """All keys inside the axis-aligned rectangle (inclusive bounds)."""
        results = []
        lo = self._cell_of(min_x, min_y)
        hi = self._cell_of(max_x, max_y)
        for cx in range(lo[0], hi[0] + 1):
            for cy in range(lo[1], hi[1] + 1):
                for key in self._cells.get((cx, cy), ()):
                    px, py = self._positions[key]
                    if min_x <= px <= max_x and min_y <= py <= max_y:
                        results.append(key)
        return results

    def nearest(self, x: float, y: float, *, max_radius: float | None = None) -> int | None:
        """Key closest to ``(x, y)`` or ``None`` if the index is empty.

        The search expands ring by ring, so it touches few cells when the
        index is dense around the query point.
        """
        if not self._positions:
            return None
        max_extent = max(self._max_x - self._min_x, self._max_y - self._min_y)
        limit = max_radius if max_radius is not None else max_extent * 2
        radius = max(self._cell_width, self._cell_height)
        best_key, best_dist = None, math.inf
        while radius <= limit * 2:
            for key in self.query_radius(x, y, radius):
                px, py = self._positions[key]
                dist = math.hypot(px - x, py - y)
                if dist < best_dist:
                    best_key, best_dist = key, dist
            if best_key is not None and best_dist <= radius:
                return best_key
            radius *= 2
        return best_key

    def cell_counts(self) -> dict[tuple[int, int], int]:
        """Number of objects per non-empty cell (used by the DARM heuristic)."""
        return {cell: len(members) for cell, members in self._cells.items() if members}

    def cell_of_point(self, x: float, y: float) -> tuple[int, int]:
        """Cell coordinates containing ``(x, y)`` (clamped to the grid)."""
        return self._cell_of(x, y)

    def cell_center(self, cell: tuple[int, int]) -> tuple[float, float]:
        """Planar coordinates of the center of ``cell``."""
        cx, cy = cell
        x = self._min_x + (cx + 0.5) * self._cell_width
        y = self._min_y + (cy + 0.5) * self._cell_height
        return x, y

    def estimated_memory_bytes(self) -> int:
        """Rough memory footprint (for the memory study)."""
        return 120 * len(self._positions) + 80 * len(self._cells)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        cx = int((x - self._min_x) / self._cell_width)
        cy = int((y - self._min_y) / self._cell_height)
        cx = min(max(cx, 0), self._cells_per_axis - 1)
        cy = min(max(cy, 0), self._cells_per_axis - 1)
        return cx, cy

    def _cells_overlapping(
        self, x: float, y: float, radius: float
    ) -> Iterable[tuple[int, int]]:
        lo = self._cell_of(x - radius, y - radius)
        hi = self._cell_of(x + radius, y + radius)
        for cx in range(lo[0], hi[0] + 1):
            for cy in range(lo[1], hi[1] + 1):
                yield cx, cy
