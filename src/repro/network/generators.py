"""Synthetic road-network generators.

The paper evaluates on the OpenStreetMap road networks of Chengdu (214K
nodes), New York City (112K nodes) and Shanghai.  Those extracts are not
redistributable here, so this module builds procedural city graphs with the
same characteristics the dispatch algorithms are sensitive to:

* planar node coordinates (used by the grid index and angle pruning),
* strongly connected, directed travel-time edges,
* a denser "downtown" core and sparser periphery,
* a handful of fast "expressway" shortcuts that make some Euclidean-infeasible
  detours feasible on the road network (the caveat the paper discusses for
  its angle-pruning rule).

All travel times are in seconds; all coordinates are in meters.
"""

from __future__ import annotations

import math
# DET002 audit: every draw below flows through a seeded random.Random
# stream; the module-global generator is never called (repro-lint enforced).
import random
from dataclasses import dataclass

from ..exceptions import WorkloadError
from .road_network import RoadNetwork

#: Default urban driving speed in meters per second (~36 km/h).
DEFAULT_SPEED = 10.0
#: Expressway speed in meters per second (~72 km/h).
EXPRESS_SPEED = 20.0


@dataclass(frozen=True)
class CityPreset:
    """Parameters of a named synthetic city.

    The presets mirror the relative shapes of the paper's datasets: the NYC
    network is roughly half the size of Chengdu's but more compact (shorter
    blocks), and the Cainiao (Shanghai delivery) area is larger and sparser.
    """

    name: str
    rows: int
    cols: int
    block_length: float
    perturbation: float
    express_fraction: float
    seed: int


#: Named presets keyed by a lowercase identifier.
CITY_PRESETS: dict[str, CityPreset] = {
    "chd": CityPreset(
        name="CHD", rows=36, cols=36, block_length=260.0,
        perturbation=0.25, express_fraction=0.015, seed=101,
    ),
    "nyc": CityPreset(
        name="NYC", rows=26, cols=26, block_length=180.0,
        perturbation=0.15, express_fraction=0.02, seed=202,
    ),
    "cainiao": CityPreset(
        name="Cainiao", rows=40, cols=40, block_length=320.0,
        perturbation=0.3, express_fraction=0.01, seed=303,
    ),
    "tiny": CityPreset(
        name="Tiny", rows=8, cols=8, block_length=200.0,
        perturbation=0.1, express_fraction=0.0, seed=404,
    ),
}


def grid_city(
    rows: int,
    cols: int,
    *,
    block_length: float = 250.0,
    speed: float = DEFAULT_SPEED,
    perturbation: float = 0.2,
    express_fraction: float = 0.0,
    seed: int = 0,
) -> RoadNetwork:
    """Build a Manhattan-style lattice city.

    Parameters
    ----------
    rows, cols:
        Number of intersections along each axis.
    block_length:
        Distance between adjacent intersections in meters.
    speed:
        Average driving speed in m/s used to convert distance to travel time.
    perturbation:
        Relative jitter applied to each edge's travel time (models congestion
        differences between streets).  Must be in ``[0, 1)``.
    express_fraction:
        Fraction of node pairs connected with an additional fast shortcut
        ("expressway") edge at :data:`EXPRESS_SPEED`.
    seed:
        Random seed for perturbation and expressway placement.
    """
    if rows < 2 or cols < 2:
        raise WorkloadError("grid_city needs at least a 2x2 lattice")
    if not 0 <= perturbation < 1:
        raise WorkloadError("perturbation must be in [0, 1)")
    if speed <= 0:
        raise WorkloadError("speed must be positive")
    rng = random.Random(seed)
    network = RoadNetwork()

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            network.add_node(node_id(r, c), c * block_length, r * block_length)

    def jittered_time(distance: float) -> float:
        factor = 1.0 + rng.uniform(-perturbation, perturbation)
        return max(distance / speed * factor, 1e-3)

    for r in range(rows):
        for c in range(cols):
            here = node_id(r, c)
            if c + 1 < cols:
                right = node_id(r, c + 1)
                network.add_edge(here, right, jittered_time(block_length))
                network.add_edge(right, here, jittered_time(block_length))
            if r + 1 < rows:
                down = node_id(r + 1, c)
                network.add_edge(here, down, jittered_time(block_length))
                network.add_edge(down, here, jittered_time(block_length))

    num_express = int(express_fraction * rows * cols)
    nodes = list(network.nodes())
    for _ in range(num_express):
        u, v = rng.sample(nodes, 2)
        distance = network.euclidean(u, v)
        if distance <= block_length:
            continue
        travel = distance / EXPRESS_SPEED
        network.add_edge(u, v, travel)
        network.add_edge(v, u, travel)
    return network


def ring_radial_city(
    rings: int,
    spokes: int,
    *,
    ring_spacing: float = 400.0,
    speed: float = DEFAULT_SPEED,
    seed: int = 0,
) -> RoadNetwork:
    """Build a ring-and-radial city (a common European/Chinese layout).

    Node 0 is the center; ring ``i`` (1-based) has ``spokes`` nodes evenly
    spaced on a circle of radius ``i * ring_spacing``.  Every node connects to
    its ring neighbours and to the matching node on adjacent rings.
    """
    if rings < 1 or spokes < 3:
        raise WorkloadError("ring_radial_city needs rings >= 1 and spokes >= 3")
    rng = random.Random(seed)
    network = RoadNetwork()
    network.add_node(0, 0.0, 0.0)

    def node_id(ring: int, spoke: int) -> int:
        return 1 + (ring - 1) * spokes + spoke

    for ring in range(1, rings + 1):
        radius = ring * ring_spacing
        for spoke in range(spokes):
            angle = 2 * math.pi * spoke / spokes
            network.add_node(node_id(ring, spoke), radius * math.cos(angle),
                             radius * math.sin(angle))

    def travel(u: int, v: int) -> float:
        distance = network.euclidean(u, v)
        return max(distance / speed * (1.0 + rng.uniform(-0.1, 0.1)), 1e-3)

    for spoke in range(spokes):
        first = node_id(1, spoke)
        network.add_edge(0, first, travel(0, first), bidirectional=True)
    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            here = node_id(ring, spoke)
            neighbour = node_id(ring, (spoke + 1) % spokes)
            network.add_edge(here, neighbour, travel(here, neighbour),
                             bidirectional=True)
            if ring < rings:
                outward = node_id(ring + 1, spoke)
                network.add_edge(here, outward, travel(here, outward),
                                 bidirectional=True)
    return network


def make_city(preset: str | CityPreset = "nyc", *, scale: float = 1.0) -> RoadNetwork:
    """Build one of the named synthetic cities.

    ``scale`` multiplies the number of intersections per axis, so
    ``scale=0.5`` produces a quarter-size city suited to unit tests while
    ``scale=2.0`` approaches the density of the paper's road networks.
    """
    if isinstance(preset, str):
        try:
            preset = CITY_PRESETS[preset.lower()]
        except KeyError as exc:
            raise WorkloadError(
                f"unknown city preset {preset!r}; choose from {sorted(CITY_PRESETS)}"
            ) from exc
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    rows = max(2, int(round(preset.rows * scale)))
    cols = max(2, int(round(preset.cols * scale)))
    return grid_city(
        rows,
        cols,
        block_length=preset.block_length,
        perturbation=preset.perturbation,
        express_fraction=preset.express_fraction,
        seed=preset.seed,
    )
