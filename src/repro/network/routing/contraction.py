"""Contraction Hierarchies (CH) preprocessor and bidirectional query.

The preprocessor contracts nodes one by one in increasing "importance",
inserting *shortcut* edges that preserve shortest-path distances among the
nodes not yet contracted.  Importance is the classic lazy-updated
edge-difference heuristic (shortcuts added minus edges removed, plus a
deleted-neighbours term that spreads contraction evenly across the graph);
the shortcut count in the priority is a cheap 1-hop *estimate* (does a
direct overlay edge already beat the candidate shortcut?), cached and only
re-estimated for the neighbours of the node just contracted, so the ordering
runs no witness Dijkstras at all.
Whether a shortcut ``u -> x`` is needed when contracting ``v`` is decided by
a bounded *witness search*: a Dijkstra from ``u`` in the remaining overlay
that ignores ``v`` -- if it reaches ``x`` within ``w(u,v) + w(v,x)`` the
shortcut is redundant.  The witness search is capped (settle limit + cost
cap), which can only add redundant shortcuts, never lose correctness.  The
same witness distances drive on-the-fly *edge reduction*: an overlay edge
``u -> x`` that a witness proves longer than an alternative path is deleted,
shrinking both later witness searches and the final hierarchy.

Every shortcut records the contracted *middle* node it bypasses, so a query
path through the hierarchy can be expanded ("unpacked") into the original
node sequence without any graph search.

Queries run an interleaved bidirectional Dijkstra that only relaxes edges
leading to higher-ranked nodes, with mutual pruning (a side stops once its
queue minimum reaches the best meeting distance) and stall-on-demand (a node
whose upward distance is beaten via an edge from a higher-ranked node cannot
lie on a shortest up-down path, so its edges are not relaxed).  The answer is
the minimum of ``d_f(m) + d_b(m)`` over all meeting nodes ``m``; keeping the
argmin meeting node plus parent pointers yields the shortest path itself via
:meth:`ContractionHierarchy.path_query`.  The exhaustive (non-pruned) upward
searches, run to completion with stalling, produce the hub labels of
:mod:`repro.network.routing.hub_labels`.

The upward adjacency is flattened after preprocessing: CSR-style index /
weight arrays (plus per-node tuple views for the interactive query loops)
replace the build-time lists of lists, and all per-query state -- distances,
parents, visited marks -- lives in persistent version-stamped flat arrays,
so the per-settle stall check does list indexing only.
"""

from __future__ import annotations

import heapq
import math

from .csr import CSRGraph

#: Witness searches stop after settling this many nodes; a smaller limit
#: speeds preprocessing up at the price of a few redundant shortcuts.
DEFAULT_WITNESS_LIMIT = 80


class ContractionHierarchy:
    """A CH overlay (ranks + upward adjacencies) over a :class:`CSRGraph`."""

    __slots__ = (
        "csr",
        "rank",
        "fwd_indptr",
        "fwd_indices",
        "fwd_weights",
        "bwd_indptr",
        "bwd_indices",
        "bwd_weights",
        "num_shortcuts",
        "shortcut_middle",
        "fwd_view",
        "bwd_view",
        "_witness_limit",
        "_dist_f",
        "_dist_b",
        "_parent_f",
        "_parent_b",
        "_seen_f",
        "_seen_b",
        "_query_id",
    )

    def __init__(self, csr: CSRGraph, *, witness_limit: int = DEFAULT_WITNESS_LIMIT) -> None:
        self.csr = csr
        self._witness_limit = max(int(witness_limit), 1)
        n = csr.num_nodes
        #: Contraction order: ``rank[i] == 0`` is contracted first.
        self.rank: list[int] = [0] * n
        #: CSR-style upward adjacency: ``fwd_indptr[i] : fwd_indptr[i + 1]``
        #: bounds the slice of ``fwd_indices`` / ``fwd_weights`` holding the
        #: outgoing edges of ``i`` into higher-ranked nodes; the ``bwd``
        #: triple holds the incoming edges from higher-ranked nodes.  Flat
        #: lists keep the per-settle stall check and relaxation loops free of
        #: per-node list objects and tuple unpacking (ROADMAP open item).
        self.fwd_indptr: list[int] = [0] * (n + 1)
        self.fwd_indices: list[int] = []
        self.fwd_weights: list[float] = []
        self.bwd_indptr: list[int] = [0] * (n + 1)
        self.bwd_indices: list[int] = []
        self.bwd_weights: list[float] = []
        self.num_shortcuts = 0
        #: ``(u, x) -> v`` for every shortcut edge ``u -> x`` bypassing the
        #: contracted node ``v``; original edges have no entry.  Unpacking a
        #: shortcut recurses into ``(u, v)`` and ``(v, x)``.
        self.shortcut_middle: dict[tuple[int, int], int] = {}
        #: Per-node tuple views over the CSR arrays, used by the interactive
        #: bidirectional query: CPython iterates a tuple of ``(node, weight)``
        #: pairs (C-level FOR_ITER + 2-tuple unpack) measurably faster than an
        #: index range over the flat arrays, and the stall check + relaxation
        #: run once per settled node.  The flat arrays stay authoritative for
        #: the label-extraction scans, where Python-level overhead amortises.
        self.fwd_view: list[tuple[tuple[int, float], ...]] = []
        self.bwd_view: list[tuple[tuple[int, float], ...]] = []
        self._build()
        # Persistent query scratch: distances, parents and per-direction
        # version stamps indexed by dense node id.  An entry is valid only
        # when its stamp equals the current query id, so queries touch no
        # hash tables and pay no per-query reinitialisation.  This makes
        # queries non-reentrant (fine: the simulator is single-threaded).
        self._dist_f = [0.0] * n
        self._dist_b = [0.0] * n
        self._parent_f = [-1] * n
        self._parent_b = [-1] * n
        self._seen_f = [0] * n
        self._seen_b = [0] * n
        self._query_id = 0

    # ------------------------------------------------------------------ #
    # preprocessing
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        csr = self.csr
        n = csr.num_nodes
        # Dynamic overlay of the not-yet-contracted graph.  Dicts keep the
        # minimum weight per (u, v) pair when shortcuts parallel real edges.
        fwd: list[dict[int, float]] = [{} for _ in range(n)]
        bwd: list[dict[int, float]] = [{} for _ in range(n)]
        for u in range(n):
            for v, w in csr.out_edges(u):
                old = fwd[u].get(v)
                if old is None or w < old:
                    fwd[u][v] = w
                    bwd[v][u] = w
        deleted_neighbors = [0] * n
        contracted = [False] * n
        dirty = [False] * n
        # Per-node upward adjacency collected during contraction, flattened
        # into the CSR-style arrays once the ordering is complete.
        up_fwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        up_bwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]

        def estimate(v: int) -> int:
            """Edge-difference priority with a 1-hop witness *estimate*.

            Witness Dijkstras dominate build time, so the ordering heuristic
            only checks whether a direct overlay edge ``u -> x`` already
            beats the candidate shortcut.  This may overcount shortcuts (a
            multi-hop witness goes unnoticed) but never affects correctness:
            the real contraction below re-runs full witness searches.
            """
            out_edges = fwd[v].items()
            shortcuts = 0
            for u, w_in in bwd[v].items():
                if u == v:
                    continue
                direct = fwd[u]
                for x, w_out in out_edges:
                    if x == u:
                        continue
                    existing = direct.get(x)
                    if existing is None or existing > w_in + w_out:
                        shortcuts += 1
            return shortcuts - len(fwd[v]) - len(bwd[v]) + deleted_neighbors[v]

        # Lazy re-prioritisation: priorities are cached and only re-estimated
        # for nodes whose neighbourhood changed, instead of on every heap pop.
        priority_of = [estimate(v) for v in range(n)]
        heap = [(priority_of[v], v) for v in range(n)]
        heapq.heapify(heap)
        order = 0
        while heap:
            p, v = heapq.heappop(heap)
            if contracted[v] or p != priority_of[v]:
                continue  # superseded entry
            if dirty[v]:
                dirty[v] = False
                current = estimate(v)
                if current != p:
                    priority_of[v] = current
                    heapq.heappush(heap, (current, v))
                    continue
            neighbors = [x for x in fwd[v]]
            neighbors += [u for u in bwd[v] if u not in fwd[v]]
            self._contract(v, fwd, bwd, contracted, deleted_neighbors, up_fwd, up_bwd)
            self.rank[v] = order
            order += 1
            for x in neighbors:
                dirty[x] = True
        self._flatten(up_fwd, up_bwd)

    def _flatten(
        self,
        up_fwd: list[list[tuple[int, float]]],
        up_bwd: list[list[tuple[int, float]]],
    ) -> None:
        """Compile the per-node upward lists into flat CSR-style arrays."""
        for indptr, indices, weights, lists in (
            (self.fwd_indptr, self.fwd_indices, self.fwd_weights, up_fwd),
            (self.bwd_indptr, self.bwd_indices, self.bwd_weights, up_bwd),
        ):
            cursor = 0
            for i, edges in enumerate(lists):
                cursor += len(edges)
                indptr[i + 1] = cursor
                for other, weight in edges:
                    indices.append(other)
                    weights.append(weight)
        self.fwd_view = [tuple(edges) for edges in up_fwd]
        self.bwd_view = [tuple(edges) for edges in up_bwd]

    def _needed_shortcuts(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
        *,
        reduce_edges: bool = False,
    ):
        """Yield ``(u, [(x, weight), ...])`` shortcut groups for contracting ``v``.

        With ``reduce_edges`` overlay edges ``u -> x`` that the witness
        search proves non-shortest are deleted on the fly (safe: a witnessed
        edge is not on any shortest path, so removing it keeps the overlay
        distance-preserving).
        """
        out_edges = [(x, w) for x, w in fwd[v].items() if not contracted[x]]
        if not out_edges:
            return
        max_out = max(w for _, w in out_edges)
        for u, w_in in list(bwd[v].items()):
            if contracted[u] or u == v:
                continue
            targets = {x: x != u for x, _ in out_edges}
            witness = self._witness_search(
                u, v, w_in + max_out, fwd, contracted, targets
            )
            needed = []
            for x, w_out in out_edges:
                if x == u:
                    continue
                through = w_in + w_out
                witness_dist = witness.get(x, math.inf)
                if witness_dist > through:
                    needed.append((x, through))
                elif reduce_edges:
                    existing = fwd[u].get(x)
                    if existing is not None and witness_dist < existing:
                        # The witness path (avoiding v) beats the direct
                        # overlay edge: the edge is not a shortest path and
                        # can be dropped without changing overlay distances.
                        del fwd[u][x]
                        del bwd[x][u]
                        self.shortcut_middle.pop((u, x), None)
            if needed:
                yield u, needed

    def _witness_search(
        self,
        source: int,
        skip: int,
        cap: float,
        fwd: list[dict[int, float]],
        contracted: list[bool],
        targets: dict[int, bool] | None = None,
    ) -> dict[int, float]:
        """Bounded Dijkstra from ``source`` in the overlay, avoiding ``skip``.

        ``targets`` marks the shortcut endpoints the caller will inspect
        (value ``True`` when relevant from this source); the search stops as
        soon as every relevant target is settled -- its distance is final by
        then -- instead of always running to the settle limit or cost cap.
        """
        inf = math.inf
        dist = {source: 0.0}
        heap = [(0.0, source)]
        settled = 0
        limit = self._witness_limit
        remaining = 0
        if targets is not None:
            for x, relevant in targets.items():
                if relevant and x != source:
                    remaining += 1
            if remaining == 0:
                return dist
        while heap and settled < limit:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, inf):
                continue
            if d > cap:
                break
            settled += 1
            if targets is not None and node != source and targets.get(node, False):
                remaining -= 1
                if remaining == 0:
                    break
            for succ, w in fwd[node].items():
                if succ == skip or contracted[succ]:
                    continue
                candidate = d + w
                if candidate < dist.get(succ, inf):
                    dist[succ] = candidate
                    heapq.heappush(heap, (candidate, succ))
        return dist

    def _contract(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
        deleted_neighbors: list[int],
        up_fwd: list[list[tuple[int, float]]],
        up_bwd: list[list[tuple[int, float]]],
    ) -> None:
        # Materialise the needed shortcuts *before* removing v.  This always
        # re-runs the witness searches against the *current* overlay: a
        # witness observed earlier may have run through a since-contracted
        # node whose own contraction shifted the shortcut burden onto ``v``,
        # so shortcut decisions cannot be cached across contractions.
        for u, needed in self._needed_shortcuts(
            v, fwd, bwd, contracted, reduce_edges=True
        ):
            for x, through in needed:
                old = fwd[u].get(x)
                if old is None or through < old:
                    fwd[u][x] = through
                    bwd[x][u] = through
                    self.shortcut_middle[(u, x)] = v
                    if old is None:
                        self.num_shortcuts += 1
        # The edges incident to v at contraction time become the upward
        # adjacency of v: every surviving endpoint outranks v by construction.
        up_fwd[v] = [(x, w) for x, w in fwd[v].items() if not contracted[x]]
        up_bwd[v] = [(u, w) for u, w in bwd[v].items() if not contracted[u]]
        for x in fwd[v]:
            bwd[x].pop(v, None)
            deleted_neighbors[x] += 1
        for u in bwd[v]:
            fwd[u].pop(v, None)
            deleted_neighbors[u] += 1
        fwd[v] = {}
        bwd[v] = {}
        contracted[v] = True

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, source_index: int, target_index: int) -> tuple[float, int]:
        """Bidirectional upward Dijkstra; returns ``(distance, settled)``."""
        distance, settled, _, _, _ = self._bidirectional(source_index, target_index)
        return distance, settled

    def path_query(
        self, source_index: int, target_index: int
    ) -> tuple[list[int] | None, float, int]:
        """Shortest path as dense indices, via meeting-node extraction.

        Returns ``(indices, distance, settled)``; ``indices`` is ``None``
        (and the distance infinite) when the target is unreachable.  The
        up-down path through the hierarchy is recovered from the parent
        pointers of both searches and every shortcut edge on it is unpacked
        recursively into the original edges it bypasses.
        """
        distance, settled, meeting, fwd_parents, bwd_parents = self._bidirectional(
            source_index, target_index, need_parents=True
        )
        if math.isinf(distance):
            return None, distance, settled
        if source_index == target_index:
            return [source_index], 0.0, settled
        # Upward chain source -> meeting (edges taken from up_fwd) ...
        chain = [meeting]
        while chain[-1] != source_index:
            chain.append(fwd_parents[chain[-1]])
        chain.reverse()
        # ... then meeting -> target (up_bwd edges point toward the target).
        node = meeting
        while node != target_index:
            node = bwd_parents[node]
            chain.append(node)
        path = [source_index]
        for a, b in zip(chain, chain[1:]):
            self._unpack(a, b, path)
        return path, distance, settled

    def _unpack(self, a: int, b: int, out: list[int]) -> None:
        """Append the expansion of edge ``a -> b`` to ``out`` (excluding ``a``)."""
        middle = self.shortcut_middle
        stack = [(a, b)]
        while stack:
            x, y = stack.pop()
            m = middle.get((x, y))
            if m is None:
                out.append(y)
            else:
                stack.append((m, y))
                stack.append((x, m))

    def _bidirectional(
        self, source_index: int, target_index: int, *, need_parents: bool = False
    ) -> tuple[float, int, int, list[int], list[int]]:
        """Interleaved pruned bidirectional upward search.

        Returns ``(distance, settled, meeting, fwd_parents, bwd_parents)``;
        the parent lists are the persistent scratch arrays, whose entries are
        only meaningful along the meeting chain of *this* query.  Both
        directions share the termination bound: a side is abandoned once its
        queue minimum reaches the best meeting distance (``d >= best`` holds
        for everything it could still settle), and stalled nodes -- whose
        upward distance is beaten through a higher-ranked node -- are settled
        but not relaxed.  All per-node query state (distances, parents,
        visited marks) lives in flat version-stamped arrays, so the hot loop
        does list indexing only -- no hashing, no per-query allocation.
        """
        inf = math.inf
        if source_index == target_index:
            return 0.0, 0, source_index, self._parent_f, self._parent_b
        fwd_view, bwd_view = self.fwd_view, self.bwd_view
        dist_f, dist_b = self._dist_f, self._dist_b
        parent_f, parent_b = self._parent_f, self._parent_b
        seen_f, seen_b = self._seen_f, self._seen_b
        qid = self._query_id = self._query_id + 1
        heappush, heappop = heapq.heappush, heapq.heappop
        dist_f[source_index] = 0.0
        seen_f[source_index] = qid
        dist_b[target_index] = 0.0
        seen_b[target_index] = qid
        heap_f = [(0.0, source_index)]
        heap_b = [(0.0, target_index)]
        best = inf
        meeting = -1
        settled = 0
        while heap_f or heap_b:
            # Mutual pruning: drop a side whose frontier cannot improve best.
            if heap_f and heap_f[0][0] >= best:
                heap_f = []
            if heap_b and heap_b[0][0] >= best:
                heap_b = []
            if not heap_f and not heap_b:
                break
            forward = bool(heap_f) and (not heap_b or heap_f[0][0] <= heap_b[0][0])
            if forward:
                d, node = heappop(heap_f)
                if d > dist_f[node]:
                    continue  # superseded entry; first pop settles the node
                settled += 1
                if seen_b[node] == qid and d + dist_b[node] < best:
                    best = d + dist_b[node]
                    meeting = node
                # Stall-on-demand: an edge from a higher-ranked node that
                # reaches ``node`` cheaper proves ``node`` is off every
                # shortest up-down path -- do not relax its edges.
                stalled = False
                for m, w in bwd_view[node]:
                    if seen_f[m] == qid and dist_f[m] + w < d:
                        stalled = True
                        break
                if stalled:
                    continue
                for succ, w in fwd_view[node]:
                    candidate = d + w
                    if seen_f[succ] != qid or candidate < dist_f[succ]:
                        dist_f[succ] = candidate
                        seen_f[succ] = qid
                        if need_parents:
                            parent_f[succ] = node
                        heappush(heap_f, (candidate, succ))
            else:
                d, node = heappop(heap_b)
                if d > dist_b[node]:
                    continue  # superseded entry; first pop settles the node
                settled += 1
                if seen_f[node] == qid and d + dist_f[node] < best:
                    best = d + dist_f[node]
                    meeting = node
                stalled = False
                for m, w in fwd_view[node]:
                    if seen_b[m] == qid and dist_b[m] + w < d:
                        stalled = True
                        break
                if stalled:
                    continue
                for pred, w in bwd_view[node]:
                    candidate = d + w
                    if seen_b[pred] != qid or candidate < dist_b[pred]:
                        dist_b[pred] = candidate
                        seen_b[pred] = qid
                        if need_parents:
                            parent_b[pred] = node
                        heappush(heap_b, (candidate, pred))
        return best, settled, meeting, parent_f, parent_b

    def _upward_scan(
        self, start: int, *, backward: bool, prune: bool
    ) -> dict[int, float]:
        """Exhaustive upward Dijkstra from ``start`` (the CH search space).

        With ``prune`` the opposite-direction upward arrays drive a stall
        check: stalled nodes -- provably farther than their true distance --
        are omitted from the result and not relaxed, which prunes the search
        space without losing the cover property: the maximum-rank node of a
        shortest path is always reached at its exact distance through
        non-stalled nodes.
        """
        if backward:
            indptr, indices, weights = self.bwd_indptr, self.bwd_indices, self.bwd_weights
            sptr, sidx, swts = self.fwd_indptr, self.fwd_indices, self.fwd_weights
        else:
            indptr, indices, weights = self.fwd_indptr, self.fwd_indices, self.fwd_weights
            sptr, sidx, swts = self.bwd_indptr, self.bwd_indices, self.bwd_weights
        inf = math.inf
        dist = {start: 0.0}
        out: dict[int, float] = {}
        done: set[int] = set()
        heap = [(0.0, start)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            if prune:
                stalled = False
                for e in range(sptr[node], sptr[node + 1]):
                    dm = dist.get(sidx[e])
                    if dm is not None and dm + swts[e] < d:
                        stalled = True
                        break
                if stalled:
                    continue
            out[node] = d
            for e in range(indptr[node], indptr[node + 1]):
                succ = indices[e]
                candidate = d + weights[e]
                if candidate < dist.get(succ, inf):
                    dist[succ] = candidate
                    heapq.heappush(heap, (candidate, succ))
        return out

    def forward_search_space(
        self, index: int, *, prune: bool = False
    ) -> dict[int, float]:
        """Upward distances from ``index`` (basis of its forward hub label)."""
        return self._upward_scan(index, backward=False, prune=prune)

    def backward_search_space(
        self, index: int, *, prune: bool = False
    ) -> dict[int, float]:
        """Upward distances *to* ``index`` (basis of its backward hub label)."""
        return self._upward_scan(index, backward=True, prune=prune)

    def estimated_memory_bytes(self) -> int:
        """Rough footprint of the upward adjacencies (arrays + tuple views)."""
        entries = len(self.fwd_indices) + len(self.bwd_indices)
        # The CSR arrays cost ~16 bytes per entry; the per-node tuple views
        # duplicate every entry as a 2-tuple (~72 bytes with the pair tuple)
        # plus a tuple header per node.
        return (
            88 * entries
            + 16 * (len(self.fwd_indptr) + len(self.bwd_indptr))
            + 56 * (len(self.fwd_view) + len(self.bwd_view))
            + 8 * len(self.rank)
            + 72 * len(self.shortcut_middle)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ContractionHierarchy(nodes={self.csr.num_nodes}, "
            f"shortcuts={self.num_shortcuts})"
        )
