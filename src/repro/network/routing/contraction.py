"""Contraction Hierarchies (CH) preprocessor and bidirectional query.

The preprocessor contracts nodes one by one in increasing "importance",
inserting *shortcut* edges that preserve shortest-path distances among the
nodes not yet contracted.  Importance is the classic lazy-updated
edge-difference heuristic (shortcuts added minus edges removed, plus a
deleted-neighbours term that spreads contraction evenly across the graph);
the shortcut count in the priority is a cheap 1-hop *estimate* (does a
direct overlay edge already beat the candidate shortcut?), cached and only
re-estimated for the neighbours of the node just contracted, so the ordering
runs no witness Dijkstras at all.
Whether a shortcut ``u -> x`` is needed when contracting ``v`` is decided by
a bounded *witness search*: a Dijkstra from ``u`` in the remaining overlay
that ignores ``v`` -- if it reaches ``x`` within ``w(u,v) + w(v,x)`` the
shortcut is redundant.  The witness search is capped (settle limit + cost
cap), which can only add redundant shortcuts, never lose correctness.  The
same witness distances drive on-the-fly *edge reduction*: an overlay edge
``u -> x`` that a witness proves longer than an alternative path is deleted,
shrinking both later witness searches and the final hierarchy.

Every shortcut records the contracted *middle* node it bypasses, so a query
path through the hierarchy can be expanded ("unpacked") into the original
node sequence without any graph search.

Queries run an interleaved bidirectional Dijkstra that only relaxes edges
leading to higher-ranked nodes, with mutual pruning (a side stops once its
queue minimum reaches the best meeting distance) and stall-on-demand (a node
whose upward distance is beaten via an edge from a higher-ranked node cannot
lie on a shortest up-down path, so its edges are not relaxed).  The answer is
the minimum of ``d_f(m) + d_b(m)`` over all meeting nodes ``m``; keeping the
argmin meeting node plus parent pointers yields the shortest path itself via
:meth:`ContractionHierarchy.path_query`.  The exhaustive (non-pruned) upward
searches, run to completion with stalling, produce the hub labels of
:mod:`repro.network.routing.hub_labels`.
"""

from __future__ import annotations

import heapq
import math

from .csr import CSRGraph

#: Witness searches stop after settling this many nodes; a smaller limit
#: speeds preprocessing up at the price of a few redundant shortcuts.
DEFAULT_WITNESS_LIMIT = 80


class ContractionHierarchy:
    """A CH overlay (ranks + upward adjacencies) over a :class:`CSRGraph`."""

    __slots__ = (
        "csr",
        "rank",
        "up_fwd",
        "up_bwd",
        "num_shortcuts",
        "shortcut_middle",
        "_witness_limit",
    )

    def __init__(self, csr: CSRGraph, *, witness_limit: int = DEFAULT_WITNESS_LIMIT) -> None:
        self.csr = csr
        self._witness_limit = max(int(witness_limit), 1)
        n = csr.num_nodes
        #: Contraction order: ``rank[i] == 0`` is contracted first.
        self.rank: list[int] = [0] * n
        #: ``up_fwd[i]`` -- outgoing edges of ``i`` into higher-ranked nodes.
        self.up_fwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        #: ``up_bwd[i]`` -- incoming edges of ``i`` from higher-ranked nodes.
        self.up_bwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self.num_shortcuts = 0
        #: ``(u, x) -> v`` for every shortcut edge ``u -> x`` bypassing the
        #: contracted node ``v``; original edges have no entry.  Unpacking a
        #: shortcut recurses into ``(u, v)`` and ``(v, x)``.
        self.shortcut_middle: dict[tuple[int, int], int] = {}
        self._build()

    # ------------------------------------------------------------------ #
    # preprocessing
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        csr = self.csr
        n = csr.num_nodes
        # Dynamic overlay of the not-yet-contracted graph.  Dicts keep the
        # minimum weight per (u, v) pair when shortcuts parallel real edges.
        fwd: list[dict[int, float]] = [{} for _ in range(n)]
        bwd: list[dict[int, float]] = [{} for _ in range(n)]
        for u in range(n):
            for v, w in csr.out_edges(u):
                old = fwd[u].get(v)
                if old is None or w < old:
                    fwd[u][v] = w
                    bwd[v][u] = w
        deleted_neighbors = [0] * n
        contracted = [False] * n
        dirty = [False] * n

        def estimate(v: int) -> int:
            """Edge-difference priority with a 1-hop witness *estimate*.

            Witness Dijkstras dominate build time, so the ordering heuristic
            only checks whether a direct overlay edge ``u -> x`` already
            beats the candidate shortcut.  This may overcount shortcuts (a
            multi-hop witness goes unnoticed) but never affects correctness:
            the real contraction below re-runs full witness searches.
            """
            out_edges = fwd[v].items()
            shortcuts = 0
            for u, w_in in bwd[v].items():
                if u == v:
                    continue
                direct = fwd[u]
                for x, w_out in out_edges:
                    if x == u:
                        continue
                    existing = direct.get(x)
                    if existing is None or existing > w_in + w_out:
                        shortcuts += 1
            return shortcuts - len(fwd[v]) - len(bwd[v]) + deleted_neighbors[v]

        # Lazy re-prioritisation: priorities are cached and only re-estimated
        # for nodes whose neighbourhood changed, instead of on every heap pop.
        priority_of = [estimate(v) for v in range(n)]
        heap = [(priority_of[v], v) for v in range(n)]
        heapq.heapify(heap)
        order = 0
        while heap:
            p, v = heapq.heappop(heap)
            if contracted[v] or p != priority_of[v]:
                continue  # superseded entry
            if dirty[v]:
                dirty[v] = False
                current = estimate(v)
                if current != p:
                    priority_of[v] = current
                    heapq.heappush(heap, (current, v))
                    continue
            neighbors = [x for x in fwd[v]]
            neighbors += [u for u in bwd[v] if u not in fwd[v]]
            self._contract(v, fwd, bwd, contracted, deleted_neighbors)
            self.rank[v] = order
            order += 1
            for x in neighbors:
                dirty[x] = True

    def _needed_shortcuts(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
        *,
        reduce_edges: bool = False,
    ):
        """Yield ``(u, [(x, weight), ...])`` shortcut groups for contracting ``v``.

        With ``reduce_edges`` overlay edges ``u -> x`` that the witness
        search proves non-shortest are deleted on the fly (safe: a witnessed
        edge is not on any shortest path, so removing it keeps the overlay
        distance-preserving).
        """
        out_edges = [(x, w) for x, w in fwd[v].items() if not contracted[x]]
        if not out_edges:
            return
        max_out = max(w for _, w in out_edges)
        for u, w_in in list(bwd[v].items()):
            if contracted[u] or u == v:
                continue
            targets = {x: x != u for x, _ in out_edges}
            witness = self._witness_search(
                u, v, w_in + max_out, fwd, contracted, targets
            )
            needed = []
            for x, w_out in out_edges:
                if x == u:
                    continue
                through = w_in + w_out
                witness_dist = witness.get(x, math.inf)
                if witness_dist > through:
                    needed.append((x, through))
                elif reduce_edges:
                    existing = fwd[u].get(x)
                    if existing is not None and witness_dist < existing:
                        # The witness path (avoiding v) beats the direct
                        # overlay edge: the edge is not a shortest path and
                        # can be dropped without changing overlay distances.
                        del fwd[u][x]
                        del bwd[x][u]
                        self.shortcut_middle.pop((u, x), None)
            if needed:
                yield u, needed

    def _witness_search(
        self,
        source: int,
        skip: int,
        cap: float,
        fwd: list[dict[int, float]],
        contracted: list[bool],
        targets: dict[int, bool] | None = None,
    ) -> dict[int, float]:
        """Bounded Dijkstra from ``source`` in the overlay, avoiding ``skip``.

        ``targets`` marks the shortcut endpoints the caller will inspect
        (value ``True`` when relevant from this source); the search stops as
        soon as every relevant target is settled -- its distance is final by
        then -- instead of always running to the settle limit or cost cap.
        """
        inf = math.inf
        dist = {source: 0.0}
        heap = [(0.0, source)]
        settled = 0
        limit = self._witness_limit
        remaining = 0
        if targets is not None:
            for x, relevant in targets.items():
                if relevant and x != source:
                    remaining += 1
            if remaining == 0:
                return dist
        while heap and settled < limit:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, inf):
                continue
            if d > cap:
                break
            settled += 1
            if targets is not None and node != source and targets.get(node, False):
                remaining -= 1
                if remaining == 0:
                    break
            for succ, w in fwd[node].items():
                if succ == skip or contracted[succ]:
                    continue
                candidate = d + w
                if candidate < dist.get(succ, inf):
                    dist[succ] = candidate
                    heapq.heappush(heap, (candidate, succ))
        return dist

    def _contract(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
        deleted_neighbors: list[int],
    ) -> None:
        # Materialise the needed shortcuts *before* removing v.  This always
        # re-runs the witness searches against the *current* overlay: a
        # witness observed earlier may have run through a since-contracted
        # node whose own contraction shifted the shortcut burden onto ``v``,
        # so shortcut decisions cannot be cached across contractions.
        for u, needed in self._needed_shortcuts(
            v, fwd, bwd, contracted, reduce_edges=True
        ):
            for x, through in needed:
                old = fwd[u].get(x)
                if old is None or through < old:
                    fwd[u][x] = through
                    bwd[x][u] = through
                    self.shortcut_middle[(u, x)] = v
                    if old is None:
                        self.num_shortcuts += 1
        # The edges incident to v at contraction time become the upward
        # adjacency of v: every surviving endpoint outranks v by construction.
        self.up_fwd[v] = [(x, w) for x, w in fwd[v].items() if not contracted[x]]
        self.up_bwd[v] = [(u, w) for u, w in bwd[v].items() if not contracted[u]]
        for x in fwd[v]:
            bwd[x].pop(v, None)
            deleted_neighbors[x] += 1
        for u in bwd[v]:
            fwd[u].pop(v, None)
            deleted_neighbors[u] += 1
        fwd[v] = {}
        bwd[v] = {}
        contracted[v] = True

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, source_index: int, target_index: int) -> tuple[float, int]:
        """Bidirectional upward Dijkstra; returns ``(distance, settled)``."""
        distance, settled, _, _, _ = self._bidirectional(source_index, target_index)
        return distance, settled

    def path_query(
        self, source_index: int, target_index: int
    ) -> tuple[list[int] | None, float, int]:
        """Shortest path as dense indices, via meeting-node extraction.

        Returns ``(indices, distance, settled)``; ``indices`` is ``None``
        (and the distance infinite) when the target is unreachable.  The
        up-down path through the hierarchy is recovered from the parent
        pointers of both searches and every shortcut edge on it is unpacked
        recursively into the original edges it bypasses.
        """
        distance, settled, meeting, fwd_parents, bwd_parents = self._bidirectional(
            source_index, target_index, need_parents=True
        )
        if math.isinf(distance):
            return None, distance, settled
        if source_index == target_index:
            return [source_index], 0.0, settled
        # Upward chain source -> meeting (edges taken from up_fwd) ...
        chain = [meeting]
        while chain[-1] != source_index:
            chain.append(fwd_parents[chain[-1]])
        chain.reverse()
        # ... then meeting -> target (up_bwd edges point toward the target).
        node = meeting
        while node != target_index:
            node = bwd_parents[node]
            chain.append(node)
        path = [source_index]
        for a, b in zip(chain, chain[1:]):
            self._unpack(a, b, path)
        return path, distance, settled

    def _unpack(self, a: int, b: int, out: list[int]) -> None:
        """Append the expansion of edge ``a -> b`` to ``out`` (excluding ``a``)."""
        middle = self.shortcut_middle
        stack = [(a, b)]
        while stack:
            x, y = stack.pop()
            m = middle.get((x, y))
            if m is None:
                out.append(y)
            else:
                stack.append((m, y))
                stack.append((x, m))

    def _bidirectional(
        self, source_index: int, target_index: int, *, need_parents: bool = False
    ) -> tuple[float, int, int, dict[int, int], dict[int, int]]:
        """Interleaved pruned bidirectional upward search.

        Returns ``(distance, settled, meeting, fwd_parents, bwd_parents)``.
        Both directions share the termination bound: a side is abandoned once
        its queue minimum reaches the best meeting distance (``d >= best``
        holds for everything it could still settle), and stalled nodes --
        whose upward distance is beaten through a higher-ranked node -- are
        settled but not relaxed.
        """
        inf = math.inf
        if source_index == target_index:
            return 0.0, 0, source_index, {}, {}
        up_fwd, up_bwd = self.up_fwd, self.up_bwd
        dist_f = {source_index: 0.0}
        dist_b = {target_index: 0.0}
        parents_f: dict[int, int] = {}
        parents_b: dict[int, int] = {}
        heap_f = [(0.0, source_index)]
        heap_b = [(0.0, target_index)]
        best = inf
        meeting = -1
        settled = 0
        while heap_f or heap_b:
            # Mutual pruning: drop a side whose frontier cannot improve best.
            if heap_f and heap_f[0][0] >= best:
                heap_f = []
            if heap_b and heap_b[0][0] >= best:
                heap_b = []
            if not heap_f and not heap_b:
                break
            forward = bool(heap_f) and (not heap_b or heap_f[0][0] <= heap_b[0][0])
            if forward:
                d, node = heapq.heappop(heap_f)
                if d > dist_f[node]:
                    continue  # superseded entry; first pop settles the node
                settled += 1
                other = dist_b.get(node)
                if other is not None and d + other < best:
                    best = d + other
                    meeting = node
                # Stall-on-demand: an edge from a higher-ranked node that
                # reaches ``node`` cheaper proves ``node`` is off every
                # shortest up-down path -- do not relax its edges.
                stalled = False
                for m, w in up_bwd[node]:
                    dm = dist_f.get(m)
                    if dm is not None and dm + w < d:
                        stalled = True
                        break
                if stalled:
                    continue
                for succ, w in up_fwd[node]:
                    candidate = d + w
                    if candidate < dist_f.get(succ, inf):
                        dist_f[succ] = candidate
                        if need_parents:
                            parents_f[succ] = node
                        heapq.heappush(heap_f, (candidate, succ))
            else:
                d, node = heapq.heappop(heap_b)
                if d > dist_b[node]:
                    continue  # superseded entry; first pop settles the node
                settled += 1
                other = dist_f.get(node)
                if other is not None and d + other < best:
                    best = d + other
                    meeting = node
                stalled = False
                for m, w in up_fwd[node]:
                    dm = dist_b.get(m)
                    if dm is not None and dm + w < d:
                        stalled = True
                        break
                if stalled:
                    continue
                for pred, w in up_bwd[node]:
                    candidate = d + w
                    if candidate < dist_b.get(pred, inf):
                        dist_b[pred] = candidate
                        if need_parents:
                            parents_b[pred] = node
                        heapq.heappush(heap_b, (candidate, pred))
        return best, settled, meeting, parents_f, parents_b

    def _upward_scan(
        self,
        start: int,
        adjacency: list[list[tuple[int, float]]],
        stall_adjacency: list[list[tuple[int, float]]] | None = None,
    ) -> dict[int, float]:
        """Exhaustive upward Dijkstra from ``start`` (the CH search space).

        With ``stall_adjacency`` (the opposite-direction upward lists),
        stalled nodes -- provably farther than their true distance -- are
        omitted from the result and not relaxed, which prunes the search
        space without losing the cover property: the maximum-rank node of a
        shortest path is always reached at its exact distance through
        non-stalled nodes.
        """
        inf = math.inf
        dist = {start: 0.0}
        out: dict[int, float] = {}
        done: set[int] = set()
        heap = [(0.0, start)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            if stall_adjacency is not None:
                stalled = False
                for m, w in stall_adjacency[node]:
                    dm = dist.get(m)
                    if dm is not None and dm + w < d:
                        stalled = True
                        break
                if stalled:
                    continue
            out[node] = d
            for succ, w in adjacency[node]:
                candidate = d + w
                if candidate < dist.get(succ, inf):
                    dist[succ] = candidate
                    heapq.heappush(heap, (candidate, succ))
        return out

    def forward_search_space(
        self, index: int, *, prune: bool = False
    ) -> dict[int, float]:
        """Upward distances from ``index`` (basis of its forward hub label)."""
        return self._upward_scan(
            index, self.up_fwd, self.up_bwd if prune else None
        )

    def backward_search_space(
        self, index: int, *, prune: bool = False
    ) -> dict[int, float]:
        """Upward distances *to* ``index`` (basis of its backward hub label)."""
        return self._upward_scan(
            index, self.up_bwd, self.up_fwd if prune else None
        )

    def estimated_memory_bytes(self) -> int:
        """Rough footprint of the upward adjacencies."""
        entries = sum(len(edges) for edges in self.up_fwd)
        entries += sum(len(edges) for edges in self.up_bwd)
        return 48 * entries + 8 * len(self.rank) + 72 * len(self.shortcut_middle)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ContractionHierarchy(nodes={self.csr.num_nodes}, "
            f"shortcuts={self.num_shortcuts})"
        )
