"""Contraction Hierarchies (CH) preprocessor, bidirectional query and repair.

The preprocessor contracts nodes one by one in increasing "importance",
inserting *shortcut* edges that preserve shortest-path distances among the
nodes not yet contracted.  Importance is the classic lazy-updated
edge-difference heuristic (shortcuts added minus edges removed, plus a
deleted-neighbours term that spreads contraction evenly across the graph);
the shortcut count in the priority is a cheap 1-hop *estimate* (does a
direct overlay edge already beat the candidate shortcut?), cached and only
re-estimated for the neighbours of the node just contracted, so the ordering
runs no witness Dijkstras at all.
Whether a shortcut ``u -> x`` is needed when contracting ``v`` is decided by
a bounded *witness search*: a Dijkstra from ``u`` in the remaining overlay
that ignores ``v`` -- if it reaches ``x`` within ``w(u,v) + w(v,x)`` the
shortcut is redundant.  The witness search is capped (settle limit + cost
cap), which can only add redundant shortcuts, never lose correctness.  The
same witness distances drive on-the-fly *edge reduction*: an overlay edge
``u -> x`` that a witness proves longer than an alternative path is deleted,
shrinking both later witness searches and the final hierarchy.

Every shortcut records the contracted *middle* node it bypasses, so a query
path through the hierarchy can be expanded ("unpacked") into the original
node sequence without any graph search.

Queries run an interleaved bidirectional Dijkstra that only relaxes edges
leading to higher-ranked nodes, with mutual pruning (a side stops once its
queue minimum reaches the best meeting distance) and stall-on-demand (a node
whose upward distance is beaten via an edge from a higher-ranked node cannot
lie on a shortest up-down path, so its edges are not relaxed).  The answer is
the minimum of ``d_f(m) + d_b(m)`` over all meeting nodes ``m``; keeping the
argmin meeting node plus parent pointers yields the shortest path itself via
:meth:`ContractionHierarchy.path_query`.  The exhaustive (non-pruned) upward
searches, run to completion with stalling, produce the hub labels of
:mod:`repro.network.routing.hub_labels`.

The upward adjacency is flattened after preprocessing: CSR-style index /
weight arrays (plus per-node tuple views for the interactive query loops)
replace the build-time lists of lists, and all per-query state -- distances,
parents, visited marks -- lives in persistent version-stamped flat arrays,
so the per-settle stall check does list indexing only.

Incremental repair (dynamic worlds)
-----------------------------------

:meth:`ContractionHierarchy.repair` follows a mutated graph without a full
re-contraction.  The build records, per contracted node, its *effects* --
the shortcuts it inserted, the overlay edges its witnesses reduced, and its
contraction-time incident edges -- plus a *support index* mapping every node
settled by one of its witness searches back to the contraction that ran
them.  Because witness searches only relax out-edges of settled nodes, a
contraction's decisions can only change when (a) its own incident edges
changed, or (b) an out-edge of one of its recorded witness nodes changed.
Repair therefore replays the frozen contraction order against the mutated
graph: clean nodes re-apply their recorded effects verbatim (dict writes,
no searches), while *dirty* nodes -- seeded from the endpoints and support
sets of the mutated edges, and cascaded through recorded-vs-recomputed
effect diffs -- are re-contracted with fresh witness searches.  The result
is a *forked* hierarchy whose per-node adjacencies are flattened back into
CSR upward arrays; unchanged records are shared with the source hierarchy
by reference, which keeps the source valid for the pre-mutation graph (so
recent states can be cached and swapped back when a burst reverts).
Reusing the frozen order can only cost hierarchy *quality* (a few extra
shortcuts after many repairs), never correctness: replayed effects are
re-validated against the replay overlay, so distances stay exact.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from .csr import CSRGraph

#: Witness searches stop after settling this many nodes; a smaller limit
#: speeds preprocessing up at the price of a few redundant shortcuts.
DEFAULT_WITNESS_LIMIT = 80


@dataclass(frozen=True)
class CHRepairStats:
    """What one :meth:`ContractionHierarchy.repair` call actually did."""

    #: Nodes whose contraction was re-run with fresh witness searches.
    nodes_recontracted: int
    #: Overlay-edge effects (shortcut insertions / reductions) that differ
    #: from the recorded build -- the size of the splice into the hierarchy.
    shortcuts_replaced: int
    #: ``nodes_recontracted / num_nodes`` (the repair locality measure).
    affected_fraction: float


class ContractionHierarchy:
    """A CH overlay (ranks + upward adjacencies) over a :class:`CSRGraph`."""

    __slots__ = (
        "csr",
        "rank",
        "fwd_indptr",
        "fwd_indices",
        "fwd_weights",
        "bwd_indptr",
        "bwd_indices",
        "bwd_weights",
        "num_shortcuts",
        "shortcut_middle",
        "fwd_view",
        "bwd_view",
        "_witness_limit",
        "_dist_f",
        "_dist_b",
        "_parent_f",
        "_parent_b",
        "_seen_f",
        "_seen_b",
        "_query_id",
        "_contract_order",
        "_stored_fwd",
        "_stored_bwd",
        "_added",
        "_reduced",
        "_witness_settled",
        "_witness_dependents",
        "_support_recorded",
    )

    def __init__(
        self,
        csr: CSRGraph,
        *,
        witness_limit: int = DEFAULT_WITNESS_LIMIT,
        record_repair_support: bool = True,
    ) -> None:
        self.csr = csr
        self._witness_limit = max(int(witness_limit), 1)
        #: Whether the build recorded the repair-support structures (effect
        #: lists + witness-support index).  Recording costs ~6% build time
        #: and the support-index memory; without it :meth:`repair` is
        #: unavailable and returns ``None`` (callers fall back to a full
        #: rebuild), which suits static experiments that never mutate the
        #: network.
        self._support_recorded = bool(record_repair_support)
        n = csr.num_nodes
        #: Contraction order: ``rank[i] == 0`` is contracted first.
        self.rank: list[int] = [0] * n
        #: CSR-style upward adjacency: ``fwd_indptr[i] : fwd_indptr[i + 1]``
        #: bounds the slice of ``fwd_indices`` / ``fwd_weights`` holding the
        #: outgoing edges of ``i`` into higher-ranked nodes; the ``bwd``
        #: triple holds the incoming edges from higher-ranked nodes.  Flat
        #: lists keep the per-settle stall check and relaxation loops free of
        #: per-node list objects and tuple unpacking (ROADMAP open item).
        self.fwd_indptr: list[int] = [0] * (n + 1)
        self.fwd_indices: list[int] = []
        self.fwd_weights: list[float] = []
        self.bwd_indptr: list[int] = [0] * (n + 1)
        self.bwd_indices: list[int] = []
        self.bwd_weights: list[float] = []
        self.num_shortcuts = 0
        #: ``(u, x) -> v`` for every shortcut edge ``u -> x`` bypassing the
        #: contracted node ``v``; original edges have no entry.  Unpacking a
        #: shortcut recurses into ``(u, v)`` and ``(v, x)``.
        self.shortcut_middle: dict[tuple[int, int], int] = {}
        #: Per-node tuple views over the CSR arrays, used by the interactive
        #: bidirectional query: CPython iterates a tuple of ``(node, weight)``
        #: pairs (C-level FOR_ITER + 2-tuple unpack) measurably faster than an
        #: index range over the flat arrays, and the stall check + relaxation
        #: run once per settled node.  The flat arrays stay authoritative for
        #: the label-extraction scans, where Python-level overhead amortises.
        self.fwd_view: list[tuple[tuple[int, float], ...]] = []
        self.bwd_view: list[tuple[tuple[int, float], ...]] = []
        # --- repair-support records (see the module docstring) --------- #
        #: Node indices in contraction order (``rank`` inverted).
        self._contract_order: list[int] = []
        #: Contraction-time incident overlay edges of every node -- the
        #: authoritative per-node upward adjacency (flattened into the CSR
        #: arrays / tuple views above) *and* the replay comparison anchor.
        self._stored_fwd: list[dict[int, float]] = []
        self._stored_bwd: list[dict[int, float]] = []
        #: Per-node contraction effects: overlay assignments ``(u, x, w)``
        #: (shortcuts bypassing the node) and overlay edges ``(u, x, w)``
        #: its witnesses reduced (with the deleted weight, so a replay can
        #: tell whether the reduction still applies), in application order.
        self._added: list[list[tuple[int, int, float]]] = []
        self._reduced: list[list[tuple[int, int, float]]] = []
        #: Nodes settled by the node's witness searches, plus the inverted
        #: support index ``settled node -> {contractions that searched it}``.
        self._witness_settled: list[list[int]] = []
        self._witness_dependents: list[set[int]] = []
        self._build()
        # Persistent query scratch: distances, parents and per-direction
        # version stamps indexed by dense node id.  An entry is valid only
        # when its stamp equals the current query id, so queries touch no
        # hash tables and pay no per-query reinitialisation.  This makes
        # queries non-reentrant (fine: the simulator is single-threaded).
        self._dist_f = [0.0] * n
        self._dist_b = [0.0] * n
        self._parent_f = [-1] * n
        self._parent_b = [-1] * n
        self._seen_f = [0] * n
        self._seen_b = [0] * n
        self._query_id = 0

    # ------------------------------------------------------------------ #
    # preprocessing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _overlay_from_csr(
        csr: CSRGraph,
    ) -> tuple[list[dict[int, float]], list[dict[int, float]]]:
        """Dynamic overlay dicts of the not-yet-contracted graph.

        Dicts keep the minimum weight per ``(u, v)`` pair when shortcuts
        parallel real edges.  The scan order (ascending node index, CSR row
        order within a node) is part of the repair contract: replaying a
        build against an identically-scanned overlay reproduces dict
        insertion order, so recorded effects splice back deterministically.
        """
        n = csr.num_nodes
        fwd: list[dict[int, float]] = [{} for _ in range(n)]
        bwd: list[dict[int, float]] = [{} for _ in range(n)]
        for u in range(n):
            fwd_u = fwd[u]
            for v, w in csr.out_edges(u):
                old = fwd_u.get(v)
                if old is None or w < old:
                    fwd_u[v] = w
                    bwd[v][u] = w
        return fwd, bwd

    def _build(self) -> None:
        csr = self.csr
        n = csr.num_nodes
        fwd, bwd = self._overlay_from_csr(csr)
        deleted_neighbors = [0] * n
        contracted = [False] * n
        dirty = [False] * n
        record_support = self._support_recorded
        self._stored_fwd = [{} for _ in range(n)]
        self._stored_bwd = [{} for _ in range(n)]
        if record_support:
            self._added = [[] for _ in range(n)]
            self._reduced = [[] for _ in range(n)]
            self._witness_settled = [[] for _ in range(n)]
            self._witness_dependents = [set() for _ in range(n)]
        else:
            self._added = []
            self._reduced = []
            self._witness_settled = []
            self._witness_dependents = []

        def estimate(v: int) -> int:
            """Edge-difference priority with a 1-hop witness *estimate*.

            Witness Dijkstras dominate build time, so the ordering heuristic
            only checks whether a direct overlay edge ``u -> x`` already
            beats the candidate shortcut.  This may overcount shortcuts (a
            multi-hop witness goes unnoticed) but never affects correctness:
            the real contraction below re-runs full witness searches.
            """
            out_edges = fwd[v].items()
            shortcuts = 0
            for u, w_in in bwd[v].items():
                if u == v:
                    continue
                direct = fwd[u]
                for x, w_out in out_edges:
                    if x == u:
                        continue
                    existing = direct.get(x)
                    if existing is None or existing > w_in + w_out:
                        shortcuts += 1
            return shortcuts - len(fwd[v]) - len(bwd[v]) + deleted_neighbors[v]

        # Lazy re-prioritisation: priorities are cached and only re-estimated
        # for nodes whose neighbourhood changed, instead of on every heap pop.
        priority_of = [estimate(v) for v in range(n)]
        heap = [(priority_of[v], v) for v in range(n)]
        heapq.heapify(heap)
        order = 0
        while heap:
            p, v = heapq.heappop(heap)
            if contracted[v] or p != priority_of[v]:
                continue  # superseded entry
            if dirty[v]:
                dirty[v] = False
                current = estimate(v)
                if current != p:
                    priority_of[v] = current
                    heapq.heappush(heap, (current, v))
                    continue
            added, reduced, witness, stored_fwd, stored_bwd = self._contract_node(
                v, fwd, bwd, contracted, self.shortcut_middle,
                record_support=record_support,
            )
            if record_support:
                self._added[v] = added
                self._reduced[v] = reduced
                self._witness_settled[v] = witness_list = sorted(witness)
                for y in witness_list:
                    self._witness_dependents[y].add(v)
            self._stored_fwd[v] = stored_fwd
            self._stored_bwd[v] = stored_bwd
            self._contract_order.append(v)
            self.rank[v] = order
            order += 1
            for x in stored_fwd:
                deleted_neighbors[x] += 1
                dirty[x] = True
            for u in stored_bwd:
                deleted_neighbors[u] += 1
                dirty[u] = True
        self.num_shortcuts = len(self.shortcut_middle)
        self._flatten()

    def _flatten(self) -> None:
        """Compile the per-node adjacency dicts into flat CSR-style arrays."""
        n = len(self._stored_fwd)
        for direction, lists in (("fwd", self._stored_fwd), ("bwd", self._stored_bwd)):
            indptr = [0] * (n + 1)
            indices: list[int] = []
            weights: list[float] = []
            cursor = 0
            for i, edges in enumerate(lists):
                cursor += len(edges)
                indptr[i + 1] = cursor
                for other, weight in edges.items():
                    indices.append(other)
                    weights.append(weight)
            if direction == "fwd":
                self.fwd_indptr, self.fwd_indices, self.fwd_weights = (
                    indptr, indices, weights,
                )
            else:
                self.bwd_indptr, self.bwd_indices, self.bwd_weights = (
                    indptr, indices, weights,
                )
        self.fwd_view = [tuple(edges.items()) for edges in self._stored_fwd]
        self.bwd_view = [tuple(edges.items()) for edges in self._stored_bwd]

    def _needed_shortcuts(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
        *,
        reduce_edges: bool = False,
        reduced_out: list[tuple[int, int, float]] | None = None,
        witness_out: set[int] | None = None,
        middle: dict[tuple[int, int], int] | None = None,
    ) -> Iterator[tuple[int, list[tuple[int, float]]]]:
        """Yield ``(u, [(x, weight), ...])`` shortcut groups for contracting ``v``.

        With ``reduce_edges`` overlay edges ``u -> x`` that the witness
        search proves non-shortest are deleted on the fly (safe: a witnessed
        edge is not on any shortest path, so removing it keeps the overlay
        distance-preserving).  ``reduced_out`` collects the deleted edges and
        ``witness_out`` every node settled by the witness searches -- the
        repair records.
        """
        out_edges = [(x, w) for x, w in fwd[v].items() if not contracted[x]]
        if not out_edges:
            return
        max_out = max(w for _, w in out_edges)
        for u, w_in in list(bwd[v].items()):
            if contracted[u] or u == v:
                continue
            targets = {x: x != u for x, _ in out_edges}
            witness = self._witness_search(
                u, v, w_in + max_out, fwd, contracted, targets, record=witness_out
            )
            needed = []
            for x, w_out in out_edges:
                if x == u:
                    continue
                through = w_in + w_out
                witness_dist = witness.get(x, math.inf)
                if witness_dist > through:
                    needed.append((x, through))
                elif reduce_edges:
                    existing = fwd[u].get(x)
                    if existing is not None and witness_dist < existing:
                        # The witness path (avoiding v) beats the direct
                        # overlay edge: the edge is not a shortest path and
                        # can be dropped without changing overlay distances.
                        del fwd[u][x]
                        del bwd[x][u]
                        if middle is not None:
                            middle.pop((u, x), None)
                        if reduced_out is not None:
                            reduced_out.append((u, x, existing))
            if needed:
                yield u, needed

    def _witness_search(
        self,
        source: int,
        skip: int,
        cap: float,
        fwd: list[dict[int, float]],
        contracted: list[bool],
        targets: dict[int, bool] | None = None,
        *,
        record: set[int] | None = None,
    ) -> dict[int, float]:
        """Bounded Dijkstra from ``source`` in the overlay, avoiding ``skip``.

        ``targets`` marks the shortcut endpoints the caller will inspect
        (value ``True`` when relevant from this source); the search stops as
        soon as every relevant target is settled -- its distance is final by
        then -- instead of always running to the settle limit or cost cap.
        ``record`` accumulates every settled node (the source included): the
        search outcome depends only on out-edges of settled nodes, so this
        set is exactly what the repair support index needs.
        """
        inf = math.inf
        dist = {source: 0.0}
        if record is not None:
            record.add(source)
        heap = [(0.0, source)]
        settled = 0
        limit = self._witness_limit
        remaining = 0
        if targets is not None:
            for x, relevant in targets.items():
                if relevant and x != source:
                    remaining += 1
            if remaining == 0:
                return dist
        while heap and settled < limit:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, inf):
                continue
            if d > cap:
                break
            settled += 1
            if record is not None:
                record.add(node)
            if targets is not None and node != source and targets.get(node, False):
                remaining -= 1
                if remaining == 0:
                    break
            for succ, w in fwd[node].items():
                if succ == skip or contracted[succ]:
                    continue
                candidate = d + w
                if candidate < dist.get(succ, inf):
                    dist[succ] = candidate
                    heapq.heappush(heap, (candidate, succ))
        return dist

    def _contract_node(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
        middle: dict[tuple[int, int], int],
        *,
        record_support: bool = True,
    ) -> tuple[
        list[tuple[int, int, float]],
        list[tuple[int, int, float]],
        set[int],
        dict[int, float],
        dict[int, float],
    ]:
        """Contract ``v`` against the overlay and record its effects.

        Materialises the needed shortcuts *before* removing ``v``.  This
        always re-runs the witness searches against the *current* overlay: a
        witness observed earlier may have run through a since-contracted
        node whose own contraction shifted the shortcut burden onto ``v``,
        so shortcut decisions cannot be cached across contractions.

        Returns ``(added, reduced, witness, incident_fwd, incident_bwd)``:
        the overlay assignments performed, the overlay edges reduced, every
        witness-settled node, and ``v``'s contraction-time incident edges
        (which become its upward adjacency: every surviving endpoint
        outranks ``v`` by construction).
        """
        added: list[tuple[int, int, float]] = []
        reduced: list[tuple[int, int]] = []
        witness: set[int] = set()
        for u, needed in self._needed_shortcuts(
            v, fwd, bwd, contracted, reduce_edges=True,
            reduced_out=reduced if record_support else None,
            witness_out=witness if record_support else None,
            middle=middle,
        ):
            for x, through in needed:
                old = fwd[u].get(x)
                if old is None or through < old:
                    fwd[u][x] = through
                    bwd[x][u] = through
                    middle[(u, x)] = v
                    added.append((u, x, through))
        incident_fwd = {x: w for x, w in fwd[v].items() if not contracted[x]}
        incident_bwd = {u: w for u, w in bwd[v].items() if not contracted[u]}
        for x in fwd[v]:
            bwd[x].pop(v, None)
        for u in bwd[v]:
            fwd[u].pop(v, None)
        fwd[v] = {}
        bwd[v] = {}
        contracted[v] = True
        return added, reduced, witness, incident_fwd, incident_bwd

    # ------------------------------------------------------------------ #
    # incremental repair
    # ------------------------------------------------------------------ #
    def repair(
        self,
        csr: CSRGraph,
        changed_edges: Sequence[tuple[int, int]],
        *,
        max_fraction: float = 1.0,
    ) -> tuple["ContractionHierarchy", CHRepairStats] | None:
        """Follow a mutated graph by re-contracting only the affected nodes.

        ``csr`` is the freshly compiled CSR of the mutated network (same
        node set as the current hierarchy) and ``changed_edges`` the
        *complete* set of ``(u, v)`` node-id pairs whose base edges were
        reweighted, removed or (re)added since this hierarchy was built.
        The frozen contraction order is replayed against the new overlay:
        nodes outside the dirty set re-apply their recorded effects, dirty
        nodes re-run their witness searches, and effect diffs cascade
        through the support index (see the module docstring).

        Returns ``(repaired, stats)`` where ``repaired`` is a *new*
        hierarchy sharing every unchanged per-node structure with this one
        (copy-on-write: the fork costs O(nodes) outer lists plus the
        re-contracted cells) -- this hierarchy stays valid for the
        pre-mutation graph, which is what lets callers keep recent states
        around and swap them back when a mutation burst reverts.  Returns
        ``None`` when the repair is not applicable (support records not kept
        at build time, node set changed) or the affected set exceeds
        ``max_fraction`` of all nodes, in which case the caller should fall
        back to a full rebuild.
        """
        if not self._support_recorded:
            return None
        old_csr = self.csr
        if csr.node_ids != old_csr.node_ids:
            return None
        n = csr.num_nodes
        limit = n if max_fraction >= 1.0 else max(int(n * max_fraction), 1)
        deps = self._witness_dependents
        rank = self.rank
        index_of = csr.index_of
        # Dirty-set seeding is direction- and rank-aware.  A weight
        # *decrease* only shortens recorded witnesses, which keeps every
        # recorded omission/reduction valid and merely leaves redundant
        # shortcuts behind -- the endpoints re-contract (their incident
        # weights changed) but no witness dependent does.  A weight
        # *increase* (removal included) can invalidate witnesses that
        # relaxed the edge, which requires the edge's head to have been
        # uncontracted at search time: only dependents ranked below the head
        # qualify.
        old_weights = {
            (u, old_csr.indices[e]): old_csr.weights[e]
            for u in range(n)
            for e in range(old_csr.indptr[u], old_csr.indptr[u + 1])
        }
        new_weights = {
            (u, csr.indices[e]): csr.weights[e]
            for u in range(n)
            for e in range(csr.indptr[u], csr.indptr[u + 1])
        }
        inf = math.inf
        dirty: set[int] = set()
        for u_id, v_id in changed_edges:
            a = index_of.get(u_id)
            b = index_of.get(v_id)
            if a is None or b is None:
                return None
            w_old = old_weights.get((a, b), inf)
            w_new = new_weights.get((a, b), inf)
            if w_new == w_old:
                continue  # e.g. closed and reopened within one burst
            dirty.add(a)
            dirty.add(b)
            if w_new > w_old:
                rank_b = rank[b]
                dirty.update(z for z in deps[a] if rank[z] < rank_b)
        if len(dirty) > limit:
            return None

        # Copy-on-write stores: unchanged per-node records are shared with
        # this hierarchy by reference (re-contraction replaces entries with
        # fresh objects, never mutates shared ones), so the fork below is
        # cheap and an aborted repair leaves nothing to undo.
        added_store = list(self._added)
        reduced_store = list(self._reduced)
        fwd_store = list(self._stored_fwd)
        bwd_store = list(self._stored_bwd)
        witness_store = list(self._witness_settled)
        deps_store = list(deps)
        deps_touched = bytearray(n)

        def dep_set(y: int) -> set[int]:
            if not deps_touched[y]:
                deps_store[y] = set(deps_store[y])
                deps_touched[y] = 1
            return deps_store[y]

        fwd, bwd = self._overlay_from_csr(csr)
        contracted = [False] * n
        middle: dict[tuple[int, int], int] = {}
        recontracted = 0
        shortcuts_replaced = 0
        for v in self._contract_order:
            if v in dirty or fwd[v] != fwd_store[v] or bwd[v] != bwd_store[v]:
                recontracted += 1
                if recontracted > limit:
                    return None
                added, reduced, witness, sf, sb = self._contract_node(
                    v, fwd, bwd, contracted, middle
                )
                # Cascade: every overlay edge whose effect differs from the
                # recorded build can invalidate later witness decisions that
                # relaxed it, i.e. the recorded dependents of its tail --
                # with the same direction/rank pruning as the seeds: an edge
                # that only got *cheaper* cannot break a recorded witness.
                # (Endpoint incident-edge changes are caught by the replay
                # comparison when their own turn comes.)
                old_map = {(u, x): w for u, x, w in added_store[v]}
                new_map = {(u, x): w for u, x, w in added}
                old_red = {(u, x) for u, x, _ in reduced_store[v]}
                new_red = {(u, x) for u, x, _ in reduced}
                for u, x in sorted(old_map.keys() | new_map.keys() | (old_red ^ new_red)):
                    new_post = new_map.get((u, x))
                    if new_post is None:
                        new_post = fwd[u].get(x, inf)
                    if (u, x) in old_map:
                        old_post = old_map[(u, x)]
                    elif (u, x) in old_red:
                        old_post = inf
                    else:
                        old_post = None  # pre-contraction value unrecorded
                    if new_post == old_post:
                        continue
                    shortcuts_replaced += 1
                    if old_post is None or new_post > old_post:
                        rank_x = rank[x]
                        dirty.update(z for z in deps[u] if rank[z] < rank_x)
                added_store[v] = added
                reduced_store[v] = reduced
                fwd_store[v] = sf
                bwd_store[v] = sb
                old_witness = set(witness_store[v])
                witness_store[v] = sorted(witness)
                for y in old_witness - witness:  # repro-lint: disable=DET003 dep-set discard is order-insensitive; keeps the repair replay allocation-light
                    dep_set(y).discard(v)
                for y in witness - old_witness:  # repro-lint: disable=DET003 dep-set add is order-insensitive; keeps the repair replay allocation-light
                    dep_set(y).add(v)
            else:
                # Clean replay: the node's incident edges match the recorded
                # build and no witness support changed, so its recorded
                # decisions are still valid -- apply them without searching.
                # (Reductions and insertions never target the same pair
                # within one contraction, so grouping reductions first
                # reproduces the original interleaved end state.)  Both
                # effects are *guarded* against an overlay that got cheaper
                # than the recorded build (a decreased base edge whose
                # dependents were deliberately not re-contracted): a
                # recorded reduction only fires while the deleted weight
                # still matches, and a recorded assignment never overwrites
                # a smaller current value -- keeping the cheaper edge is
                # always distance-preserving, and every node whose incident
                # edges the divergence touches re-contracts at its own turn.
                for u, x, w in reduced_store[v]:
                    if fwd[u].get(x) == w:
                        del fwd[u][x]
                        del bwd[x][u]
                        middle.pop((u, x), None)
                for u, x, w in added_store[v]:
                    cur = fwd[u].get(x)
                    if cur is None or w <= cur:
                        fwd[u][x] = w
                        bwd[x][u] = w
                        middle[(u, x)] = v
                for x in fwd[v]:
                    bwd[x].pop(v, None)
                for u in bwd[v]:
                    fwd[u].pop(v, None)
                fwd[v] = {}
                bwd[v] = {}
                contracted[v] = True

        fork = object.__new__(ContractionHierarchy)
        fork.csr = csr
        fork._witness_limit = self._witness_limit
        fork._support_recorded = True  # forks only exist off recorded builds
        # Frozen across repairs (the whole point of the replay): the rank
        # permutation and contraction order are shared by reference.
        fork.rank = self.rank
        fork._contract_order = self._contract_order
        fork.shortcut_middle = middle
        fork.num_shortcuts = len(middle)
        fork._added = added_store
        fork._reduced = reduced_store
        fork._stored_fwd = fwd_store
        fork._stored_bwd = bwd_store
        fork._witness_settled = witness_store
        fork._witness_dependents = deps_store
        fork._flatten()
        fork._dist_f = [0.0] * n
        fork._dist_b = [0.0] * n
        fork._parent_f = [-1] * n
        fork._parent_b = [-1] * n
        fork._seen_f = [0] * n
        fork._seen_b = [0] * n
        fork._query_id = 0
        return fork, CHRepairStats(
            nodes_recontracted=recontracted,
            shortcuts_replaced=shortcuts_replaced,
            affected_fraction=recontracted / n if n else 0.0,
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, source_index: int, target_index: int) -> tuple[float, int]:
        """Bidirectional upward Dijkstra; returns ``(distance, settled)``."""
        distance, settled, _, _, _ = self._bidirectional(source_index, target_index)
        return distance, settled

    def path_query(
        self, source_index: int, target_index: int
    ) -> tuple[list[int] | None, float, int]:
        """Shortest path as dense indices, via meeting-node extraction.

        Returns ``(indices, distance, settled)``; ``indices`` is ``None``
        (and the distance infinite) when the target is unreachable.  The
        up-down path through the hierarchy is recovered from the parent
        pointers of both searches and every shortcut edge on it is unpacked
        recursively into the original edges it bypasses.
        """
        distance, settled, meeting, fwd_parents, bwd_parents = self._bidirectional(
            source_index, target_index, need_parents=True
        )
        if math.isinf(distance):
            return None, distance, settled
        if source_index == target_index:
            return [source_index], 0.0, settled
        # Upward chain source -> meeting (edges taken from up_fwd) ...
        chain = [meeting]
        while chain[-1] != source_index:
            chain.append(fwd_parents[chain[-1]])
        chain.reverse()
        # ... then meeting -> target (up_bwd edges point toward the target).
        node = meeting
        while node != target_index:
            node = bwd_parents[node]
            chain.append(node)
        path = [source_index]
        for a, b in zip(chain, chain[1:]):
            self._unpack(a, b, path)
        return path, distance, settled

    def _unpack(self, a: int, b: int, out: list[int]) -> None:
        """Append the expansion of edge ``a -> b`` to ``out`` (excluding ``a``)."""
        middle = self.shortcut_middle
        stack = [(a, b)]
        while stack:
            x, y = stack.pop()
            m = middle.get((x, y))
            if m is None:
                out.append(y)
            else:
                stack.append((m, y))
                stack.append((x, m))

    def _bidirectional(
        self, source_index: int, target_index: int, *, need_parents: bool = False
    ) -> tuple[float, int, int, list[int], list[int]]:
        """Interleaved pruned bidirectional upward search.

        Returns ``(distance, settled, meeting, fwd_parents, bwd_parents)``;
        the parent lists are the persistent scratch arrays, whose entries are
        only meaningful along the meeting chain of *this* query.  Both
        directions share the termination bound: a side is abandoned once its
        queue minimum reaches the best meeting distance (``d >= best`` holds
        for everything it could still settle), and stalled nodes -- whose
        upward distance is beaten through a higher-ranked node -- are settled
        but not relaxed.  All per-node query state (distances, parents,
        visited marks) lives in flat version-stamped arrays, so the hot loop
        does list indexing only -- no hashing, no per-query allocation.
        """
        inf = math.inf
        if source_index == target_index:
            return 0.0, 0, source_index, self._parent_f, self._parent_b
        fwd_view, bwd_view = self.fwd_view, self.bwd_view
        dist_f, dist_b = self._dist_f, self._dist_b
        parent_f, parent_b = self._parent_f, self._parent_b
        seen_f, seen_b = self._seen_f, self._seen_b
        qid = self._query_id = self._query_id + 1
        heappush, heappop = heapq.heappush, heapq.heappop
        dist_f[source_index] = 0.0
        seen_f[source_index] = qid
        dist_b[target_index] = 0.0
        seen_b[target_index] = qid
        heap_f = [(0.0, source_index)]
        heap_b = [(0.0, target_index)]
        best = inf
        meeting = -1
        settled = 0
        while heap_f or heap_b:
            # Mutual pruning: drop a side whose frontier cannot improve best.
            if heap_f and heap_f[0][0] >= best:
                heap_f = []
            if heap_b and heap_b[0][0] >= best:
                heap_b = []
            if not heap_f and not heap_b:
                break
            forward = bool(heap_f) and (not heap_b or heap_f[0][0] <= heap_b[0][0])
            if forward:
                d, node = heappop(heap_f)
                if d > dist_f[node]:
                    continue  # superseded entry; first pop settles the node
                settled += 1
                if seen_b[node] == qid and d + dist_b[node] < best:
                    best = d + dist_b[node]
                    meeting = node
                # Stall-on-demand: an edge from a higher-ranked node that
                # reaches ``node`` cheaper proves ``node`` is off every
                # shortest up-down path -- do not relax its edges.
                stalled = False
                for m, w in bwd_view[node]:
                    if seen_f[m] == qid and dist_f[m] + w < d:
                        stalled = True
                        break
                if stalled:
                    continue
                for succ, w in fwd_view[node]:
                    candidate = d + w
                    if seen_f[succ] != qid or candidate < dist_f[succ]:
                        dist_f[succ] = candidate
                        seen_f[succ] = qid
                        if need_parents:
                            parent_f[succ] = node
                        heappush(heap_f, (candidate, succ))
            else:
                d, node = heappop(heap_b)
                if d > dist_b[node]:
                    continue  # superseded entry; first pop settles the node
                settled += 1
                if seen_f[node] == qid and d + dist_f[node] < best:
                    best = d + dist_f[node]
                    meeting = node
                stalled = False
                for m, w in fwd_view[node]:
                    if seen_b[m] == qid and dist_b[m] + w < d:
                        stalled = True
                        break
                if stalled:
                    continue
                for pred, w in bwd_view[node]:
                    candidate = d + w
                    if seen_b[pred] != qid or candidate < dist_b[pred]:
                        dist_b[pred] = candidate
                        seen_b[pred] = qid
                        if need_parents:
                            parent_b[pred] = node
                        heappush(heap_b, (candidate, pred))
        return best, settled, meeting, parent_f, parent_b

    def _upward_scan(
        self, start: int, *, backward: bool, prune: bool
    ) -> dict[int, float]:
        """Exhaustive upward Dijkstra from ``start`` (the CH search space).

        With ``prune`` the opposite-direction upward arrays drive a stall
        check: stalled nodes -- provably farther than their true distance --
        are omitted from the result and not relaxed, which prunes the search
        space without losing the cover property: the maximum-rank node of a
        shortest path is always reached at its exact distance through
        non-stalled nodes.
        """
        if backward:
            indptr, indices, weights = self.bwd_indptr, self.bwd_indices, self.bwd_weights
            sptr, sidx, swts = self.fwd_indptr, self.fwd_indices, self.fwd_weights
        else:
            indptr, indices, weights = self.fwd_indptr, self.fwd_indices, self.fwd_weights
            sptr, sidx, swts = self.bwd_indptr, self.bwd_indices, self.bwd_weights
        inf = math.inf
        dist = {start: 0.0}
        out: dict[int, float] = {}
        done: set[int] = set()
        heap = [(0.0, start)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            if prune:
                stalled = False
                for e in range(sptr[node], sptr[node + 1]):
                    dm = dist.get(sidx[e])
                    if dm is not None and dm + swts[e] < d:
                        stalled = True
                        break
                if stalled:
                    continue
            out[node] = d
            for e in range(indptr[node], indptr[node + 1]):
                succ = indices[e]
                candidate = d + weights[e]
                if candidate < dist.get(succ, inf):
                    dist[succ] = candidate
                    heapq.heappush(heap, (candidate, succ))
        return out

    def forward_search_space(
        self, index: int, *, prune: bool = False
    ) -> dict[int, float]:
        """Upward distances from ``index`` (basis of its forward hub label)."""
        return self._upward_scan(index, backward=False, prune=prune)

    def backward_search_space(
        self, index: int, *, prune: bool = False
    ) -> dict[int, float]:
        """Upward distances *to* ``index`` (basis of its backward hub label)."""
        return self._upward_scan(index, backward=True, prune=prune)

    def estimated_memory_bytes(self) -> int:
        """Rough footprint of the upward adjacencies (arrays + tuple views)."""
        entries = len(self.fwd_indices) + len(self.bwd_indices)
        support = sum(len(s) for s in self._witness_settled)
        # The CSR arrays cost ~16 bytes per entry; the per-node tuple views
        # duplicate every entry as a 2-tuple (~72 bytes with the pair tuple)
        # plus a tuple header per node.  The repair-support records keep the
        # incident dicts, effect lists and witness sets (forward + inverted).
        return (
            88 * entries
            + 16 * (len(self.fwd_indptr) + len(self.bwd_indptr))
            + 56 * (len(self.fwd_view) + len(self.bwd_view))
            + 8 * len(self.rank)
            + 72 * len(self.shortcut_middle)
            + 64 * entries  # stored incident dicts
            + 2 * 64 * support  # witness records + inverted support index
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ContractionHierarchy(nodes={self.csr.num_nodes}, "
            f"shortcuts={self.num_shortcuts})"
        )
