"""Contraction Hierarchies (CH) preprocessor and bidirectional query.

The preprocessor contracts nodes one by one in increasing "importance",
inserting *shortcut* edges that preserve shortest-path distances among the
nodes not yet contracted.  Importance is the classic lazy-updated
edge-difference heuristic (shortcuts added minus edges removed, plus a
deleted-neighbours term that spreads contraction evenly across the graph).
Whether a shortcut ``u -> x`` is needed when contracting ``v`` is decided by
a bounded *witness search*: a Dijkstra from ``u`` in the remaining overlay
that ignores ``v`` -- if it reaches ``x`` within ``w(u,v) + w(v,x)`` the
shortcut is redundant.  The witness search is capped (settle limit + cost
cap), which can only add redundant shortcuts, never lose correctness.

Queries run a bidirectional Dijkstra that only relaxes edges leading to
higher-ranked nodes; the answer is the minimum of ``d_f(m) + d_b(m)`` over
all meeting nodes ``m``.  The same upward searches, run to exhaustion,
produce the hub labels of :mod:`repro.network.routing.hub_labels`.
"""

from __future__ import annotations

import heapq
import math

from .csr import CSRGraph

#: Witness searches stop after settling this many nodes; a smaller limit
#: speeds preprocessing up at the price of a few redundant shortcuts.
DEFAULT_WITNESS_LIMIT = 80


class ContractionHierarchy:
    """A CH overlay (ranks + upward adjacencies) over a :class:`CSRGraph`."""

    __slots__ = ("csr", "rank", "up_fwd", "up_bwd", "num_shortcuts", "_witness_limit")

    def __init__(self, csr: CSRGraph, *, witness_limit: int = DEFAULT_WITNESS_LIMIT) -> None:
        self.csr = csr
        self._witness_limit = max(int(witness_limit), 1)
        n = csr.num_nodes
        #: Contraction order: ``rank[i] == 0`` is contracted first.
        self.rank: list[int] = [0] * n
        #: ``up_fwd[i]`` -- outgoing edges of ``i`` into higher-ranked nodes.
        self.up_fwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        #: ``up_bwd[i]`` -- incoming edges of ``i`` from higher-ranked nodes.
        self.up_bwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self.num_shortcuts = 0
        self._build()

    # ------------------------------------------------------------------ #
    # preprocessing
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        csr = self.csr
        n = csr.num_nodes
        # Dynamic overlay of the not-yet-contracted graph.  Dicts keep the
        # minimum weight per (u, v) pair when shortcuts parallel real edges.
        fwd: list[dict[int, float]] = [{} for _ in range(n)]
        bwd: list[dict[int, float]] = [{} for _ in range(n)]
        for u in range(n):
            for v, w in csr.out_edges(u):
                old = fwd[u].get(v)
                if old is None or w < old:
                    fwd[u][v] = w
                    bwd[v][u] = w
        deleted_neighbors = [0] * n
        contracted = [False] * n

        def priority(v: int) -> int:
            shortcuts = self._count_shortcuts(v, fwd, bwd, contracted)
            return shortcuts - len(fwd[v]) - len(bwd[v]) + deleted_neighbors[v]

        heap = [(priority(v), v) for v in range(n)]
        heapq.heapify(heap)
        order = 0
        while heap:
            _, v = heapq.heappop(heap)
            if contracted[v]:
                continue
            # Lazy update: re-evaluate and push back when no longer minimal.
            current = priority(v)
            if heap and current > heap[0][0]:
                heapq.heappush(heap, (current, v))
                continue
            self._contract(v, fwd, bwd, contracted, deleted_neighbors)
            self.rank[v] = order
            order += 1

    def _count_shortcuts(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
    ) -> int:
        return sum(len(pairs) for _, pairs in self._needed_shortcuts(v, fwd, bwd, contracted))

    def _needed_shortcuts(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
    ):
        """Yield ``(u, [(x, weight), ...])`` shortcut groups for contracting ``v``."""
        out_edges = [(x, w) for x, w in fwd[v].items() if not contracted[x]]
        if not out_edges:
            return
        max_out = max(w for _, w in out_edges)
        for u, w_in in bwd[v].items():
            if contracted[u] or u == v:
                continue
            witness = self._witness_search(u, v, w_in + max_out, fwd, contracted)
            needed = []
            for x, w_out in out_edges:
                if x == u:
                    continue
                through = w_in + w_out
                if witness.get(x, math.inf) > through:
                    needed.append((x, through))
            if needed:
                yield u, needed

    def _witness_search(
        self,
        source: int,
        skip: int,
        cap: float,
        fwd: list[dict[int, float]],
        contracted: list[bool],
    ) -> dict[int, float]:
        """Bounded Dijkstra from ``source`` in the overlay, avoiding ``skip``."""
        dist = {source: 0.0}
        heap = [(0.0, source)]
        settled = 0
        limit = self._witness_limit
        while heap and settled < limit:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, math.inf):
                continue
            if d > cap:
                break
            settled += 1
            for succ, w in fwd[node].items():
                if succ == skip or contracted[succ]:
                    continue
                candidate = d + w
                if candidate < dist.get(succ, math.inf):
                    dist[succ] = candidate
                    heapq.heappush(heap, (candidate, succ))
        return dist

    def _contract(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
        deleted_neighbors: list[int],
    ) -> None:
        # Materialise the needed shortcuts *before* removing v.
        for u, needed in self._needed_shortcuts(v, fwd, bwd, contracted):
            for x, through in needed:
                old = fwd[u].get(x)
                if old is None or through < old:
                    fwd[u][x] = through
                    bwd[x][u] = through
                    if old is None:
                        self.num_shortcuts += 1
        # The edges incident to v at contraction time become the upward
        # adjacency of v: every surviving endpoint outranks v by construction.
        self.up_fwd[v] = [(x, w) for x, w in fwd[v].items() if not contracted[x]]
        self.up_bwd[v] = [(u, w) for u, w in bwd[v].items() if not contracted[u]]
        for x in fwd[v]:
            bwd[x].pop(v, None)
            deleted_neighbors[x] += 1
        for u in bwd[v]:
            fwd[u].pop(v, None)
            deleted_neighbors[u] += 1
        fwd[v] = {}
        bwd[v] = {}
        contracted[v] = True

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, source_index: int, target_index: int) -> tuple[float, int]:
        """Bidirectional upward Dijkstra; returns ``(distance, settled)``."""
        if source_index == target_index:
            return 0.0, 0
        best = math.inf
        settled_total = 0
        forward_dist = self._upward_scan(source_index, self.up_fwd)
        # Run the backward scan with pruning against the forward distances.
        dist = {target_index: 0.0}
        heap = [(0.0, target_index)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, math.inf):
                continue
            settled_total += 1
            if d >= best:
                break
            other = forward_dist.get(node)
            if other is not None and other + d < best:
                best = other + d
            for pred, w in self.up_bwd[node]:
                candidate = d + w
                if candidate < dist.get(pred, math.inf):
                    dist[pred] = candidate
                    heapq.heappush(heap, (candidate, pred))
        settled_total += len(forward_dist)
        return best, settled_total

    def _upward_scan(self, start: int, adjacency: list[list[tuple[int, float]]]) -> dict[int, float]:
        """Exhaustive upward Dijkstra from ``start`` (the CH search space)."""
        dist = {start: 0.0}
        heap = [(0.0, start)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, math.inf):
                continue
            for succ, w in adjacency[node]:
                candidate = d + w
                if candidate < dist.get(succ, math.inf):
                    dist[succ] = candidate
                    heapq.heappush(heap, (candidate, succ))
        return dist

    def forward_search_space(self, index: int) -> dict[int, float]:
        """Upward distances from ``index`` (basis of its forward hub label)."""
        return self._upward_scan(index, self.up_fwd)

    def backward_search_space(self, index: int) -> dict[int, float]:
        """Upward distances *to* ``index`` (basis of its backward hub label)."""
        return self._upward_scan(index, self.up_bwd)

    def estimated_memory_bytes(self) -> int:
        """Rough footprint of the upward adjacencies."""
        entries = sum(len(edges) for edges in self.up_fwd)
        entries += sum(len(edges) for edges in self.up_bwd)
        return 48 * entries + 8 * len(self.rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ContractionHierarchy(nodes={self.csr.num_nodes}, "
            f"shortcuts={self.num_shortcuts})"
        )
