"""Hub labeling extracted from a contraction hierarchy.

The forward label of a node ``s`` is its CH upward search space -- every node
reachable from ``s`` along edges of increasing rank, with the corresponding
upward distance; the backward label of ``t`` mirrors it on the reverse graph.
Search spaces are extracted with stall-on-demand pruning: entries whose
upward distance exceeds the true shortest-path distance (witnessed by an
edge from a higher-ranked node) can never be the covering hub of any pair,
so dropping them shrinks the labels without breaking correctness.
The CH cover property guarantees that for every reachable pair the minimum of
``d_f(h) + d_b(h)`` over *common hubs* ``h`` equals the true shortest-path
distance, so a ``cost(u, v)`` query reduces to a sorted-label merge: both
labels are stored sorted by hub index and scanned with two pointers, no
priority queue and no graph traversal at query time.

``many_to_many`` implements the standard bucket join: the backward labels of
all targets are inverted into per-hub buckets once, then each source's
forward label is scanned a single time, touching only hubs the two sides
share.  This is what the batched dispatcher paths call instead of looping
``cost`` per pair.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .contraction import ContractionHierarchy


class HubLabeling:
    """Per-node forward/backward labels with sorted-merge queries."""

    __slots__ = ("fwd_labels", "bwd_labels")

    def __init__(self, hierarchy: ContractionHierarchy) -> None:
        n = hierarchy.csr.num_nodes
        #: ``fwd_labels[i]`` -- sorted ``[(hub_index, distance), ...]``.
        self.fwd_labels: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self.bwd_labels: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for index in range(n):
            self.fwd_labels[index] = sorted(
                hierarchy.forward_search_space(index, prune=True).items()
            )
            self.bwd_labels[index] = sorted(
                hierarchy.backward_search_space(index, prune=True).items()
            )

    # ------------------------------------------------------------------ #
    def query(self, source_index: int, target_index: int) -> tuple[float, int]:
        """Distance via sorted-label merge; returns ``(distance, scanned)``."""
        forward = self.fwd_labels[source_index]
        backward = self.bwd_labels[target_index]
        best = math.inf
        i = j = 0
        len_f, len_b = len(forward), len(backward)
        scanned = 0
        while i < len_f and j < len_b:
            scanned += 1
            hub_f, dist_f = forward[i]
            hub_b, dist_b = backward[j]
            if hub_f == hub_b:
                total = dist_f + dist_b
                if total < best:
                    best = total
                i += 1
                j += 1
            elif hub_f < hub_b:
                i += 1
            else:
                j += 1
        return best, scanned

    def many_to_many(
        self, source_indices: Sequence[int], target_indices: Sequence[int]
    ) -> tuple[dict[tuple[int, int], float], int]:
        """Batched distances via hub buckets; returns ``(table, scanned)``.

        The table maps ``(source_index, target_index)`` to the shortest-path
        distance (``math.inf`` for unreachable pairs).
        """
        buckets: dict[int, list[tuple[int, float]]] = {}
        scanned = 0
        targets = list(dict.fromkeys(target_indices))
        sources = list(dict.fromkeys(source_indices))
        for t in targets:
            for hub, dist in self.bwd_labels[t]:
                buckets.setdefault(hub, []).append((t, dist))
                scanned += 1
        table: dict[tuple[int, int], float] = {
            (s, t): math.inf for s in sources for t in targets
        }
        for s in sources:
            for hub, dist_f in self.fwd_labels[s]:
                bucket = buckets.get(hub)
                if bucket is None:
                    continue
                for t, dist_b in bucket:
                    scanned += 1
                    total = dist_f + dist_b
                    key = (s, t)
                    if total < table[key]:
                        table[key] = total
        for s in sources:
            if (s, s) in table:
                table[(s, s)] = 0.0
        return table, scanned

    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        """Total label entries across all nodes and both directions."""
        return sum(len(label) for label in self.fwd_labels) + sum(
            len(label) for label in self.bwd_labels
        )

    def average_label_size(self) -> float:
        """Mean entries per label (the classic hub-labeling quality metric)."""
        n = len(self.fwd_labels)
        if n == 0:
            return 0.0
        return self.num_entries / (2 * n)

    def estimated_memory_bytes(self) -> int:
        """Rough footprint of the label lists."""
        return 48 * self.num_entries + 16 * len(self.fwd_labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"HubLabeling(nodes={len(self.fwd_labels)}, "
            f"avg_label={self.average_label_size():.1f})"
        )
