"""Compressed-sparse-row (CSR) view of a :class:`RoadNetwork`.

Every routing backend works on this compiled form instead of the builder's
nested dictionaries: node identifiers are mapped to dense indices once, and
the adjacency becomes three flat lists (``indptr`` / ``indices`` /
``weights``) in both the forward and the reverse direction.  Inner search
loops then index lists by integer position -- no hashing, no dict views --
which is what makes the pure-Python Dijkstra competitive and what the
contraction-hierarchy preprocessor compiles its own structures from.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable, Iterator

from ...exceptions import NetworkError
from ..road_network import RoadNetwork


class CSRGraph:
    """Forward + reverse CSR adjacency compiled from a road network.

    Node identifiers are sorted and mapped to dense indices ``0 .. n-1``;
    :attr:`node_ids` maps an index back to the identifier and
    :attr:`index_of` the other way.  ``indptr[i] : indptr[i + 1]`` bounds the
    slice of ``indices`` / ``weights`` holding node *i*'s outgoing edges; the
    ``r``-prefixed triple stores the transposed (incoming) adjacency.
    """

    __slots__ = (
        "node_ids",
        "index_of",
        "indptr",
        "indices",
        "weights",
        "rindptr",
        "rindices",
        "rweights",
        "num_edges",
    )

    def __init__(
        self,
        node_ids: list[int],
        edges: Iterable[tuple[int, int, float]],
    ) -> None:
        self.node_ids = list(node_ids)
        self.index_of = {node: index for index, node in enumerate(self.node_ids)}
        n = len(self.node_ids)
        edge_list = [
            (self.index_of[u], self.index_of[v], float(w)) for u, v, w in edges
        ]
        self.num_edges = len(edge_list)
        self.indptr, self.indices, self.weights = self._compile(
            n, edge_list, transpose=False
        )
        self.rindptr, self.rindices, self.rweights = self._compile(
            n, edge_list, transpose=True
        )

    @staticmethod
    def _compile(
        n: int, edge_list: list[tuple[int, int, float]], *, transpose: bool
    ) -> tuple[list[int], list[int], list[float]]:
        counts = [0] * (n + 1)
        for u, v, _ in edge_list:
            counts[(v if transpose else u) + 1] += 1
        for i in range(n):
            counts[i + 1] += counts[i]
        indptr = list(counts)
        indices = [0] * len(edge_list)
        weights = [0.0] * len(edge_list)
        cursor = list(indptr[:-1])
        for u, v, w in edge_list:
            head, tail = (v, u) if transpose else (u, v)
            slot = cursor[head]
            indices[slot] = tail
            weights[slot] = w
            cursor[head] = slot + 1
        return indptr, indices, weights

    # ------------------------------------------------------------------ #
    @classmethod
    def from_network(cls, network: RoadNetwork) -> "CSRGraph":
        """Compile the forward and reverse adjacency of ``network``."""
        return cls(sorted(network.nodes()), network.edges())

    @property
    def num_nodes(self) -> int:
        """Number of nodes (dense indices run ``0 .. num_nodes - 1``)."""
        return len(self.node_ids)

    def out_edges(self, index: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(successor_index, weight)`` pairs of node ``index``."""
        for e in range(self.indptr[index], self.indptr[index + 1]):
            yield self.indices[e], self.weights[e]

    def in_edges(self, index: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(predecessor_index, weight)`` pairs of node ``index``."""
        for e in range(self.rindptr[index], self.rindptr[index + 1]):
            yield self.rindices[e], self.rweights[e]

    def require_index(self, node: int) -> int:
        """Dense index of a node identifier (raises on unknown nodes)."""
        try:
            return self.index_of[node]
        except KeyError as exc:
            raise NetworkError(f"unknown node {node}") from exc

    # ------------------------------------------------------------------ #
    def sssp(
        self,
        source_index: int,
        *,
        reverse: bool = False,
        targets: set[int] | None = None,
    ) -> tuple[list[float], list[int]]:
        """Single-source Dijkstra over the CSR arrays.

        Returns ``(distances, settled)`` where ``distances`` is indexed by
        dense node index (``math.inf`` for unreached nodes) and ``settled``
        lists the indices whose distance is final -- after an early
        termination the frontier still holds tentative upper bounds, so
        callers must only trust (and cache) the settled entries.  With
        ``targets`` the search terminates once every target index has been
        settled; with ``reverse`` the transposed adjacency is used, i.e.
        distances *to* the source.
        """
        if reverse:
            indptr, indices, weights = self.rindptr, self.rindices, self.rweights
        else:
            indptr, indices, weights = self.indptr, self.indices, self.weights
        inf = math.inf
        dist = [inf] * self.num_nodes
        dist[source_index] = 0.0
        remaining = set(targets) if targets is not None else None
        heap = [(0.0, source_index)]
        settled: list[int] = []
        # ``visited`` makes single settlement explicit instead of relying on
        # the strict-improvement push discipline (a ``d > dist[node]`` check
        # would let a duplicate entry *tying* on distance settle the node
        # twice, duplicating ``settled`` entries and redoing cache writes;
        # callers must never see duplicates regardless of how relaxation
        # conditions evolve).
        visited = bytearray(self.num_nodes)
        while heap:
            d, node = heapq.heappop(heap)
            if visited[node]:
                continue
            visited[node] = 1
            settled.append(node)
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            for e in range(indptr[node], indptr[node + 1]):
                succ = indices[e]
                candidate = d + weights[e]
                if candidate < dist[succ]:
                    dist[succ] = candidate
                    heapq.heappush(heap, (candidate, succ))
        return dist, settled

    def estimated_memory_bytes(self) -> int:
        """Rough footprint of the compiled arrays (ints + floats, CPython)."""
        return 8 * (2 * (self.num_nodes + 1) + 4 * self.num_edges) + 32 * self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CSRGraph(nodes={self.num_nodes}, edges={self.num_edges})"
