"""Routing backends: CSR graph, contraction hierarchies and hub labels.

This package is the preprocessing layer below
:class:`~repro.network.shortest_path.DistanceOracle`.  The facade picks one
of the pluggable backends (``dijkstra`` | ``alt`` | ``ch`` | ``hub_label``,
see :data:`BACKEND_NAMES`) and this package supplies the compiled structures:

* :class:`~repro.network.routing.csr.CSRGraph` -- flat-array adjacency
  compiled once from the dict-based :class:`~repro.network.road_network.RoadNetwork`.
* :class:`~repro.network.routing.contraction.ContractionHierarchy` --
  shortcut overlay with edge-difference ordering and witness searches;
  pruned bidirectional queries (stall-on-demand) and exact paths via
  recursive shortcut unpacking.
* :class:`~repro.network.routing.hub_labels.HubLabeling` -- stall-pruned
  label extraction from the hierarchy with sorted-merge and bucket-join
  queries.
"""

from .backends import (
    BACKEND_NAMES,
    CHBackend,
    GraphSearchBackend,
    HubLabelBackend,
    RoutingData,
    make_backend,
    routing_data,
)
from .contraction import ContractionHierarchy
from .csr import CSRGraph
from .hub_labels import HubLabeling

__all__ = [
    "BACKEND_NAMES",
    "CSRGraph",
    "CHBackend",
    "ContractionHierarchy",
    "GraphSearchBackend",
    "HubLabelBackend",
    "HubLabeling",
    "RoutingData",
    "make_backend",
    "routing_data",
]
