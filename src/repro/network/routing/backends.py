"""Pluggable routing backends and the shared per-network routing data.

:class:`~repro.network.shortest_path.DistanceOracle` is a facade: caching and
query accounting live there, while the actual distance computation is done by
one of the backends in this module:

``dijkstra``
    CSR-based Dijkstra with early termination (the reference backend).
``alt``
    The same search goal-directed with landmark (A*, Landmarks, Triangle
    inequality) potentials.
``ch``
    Bidirectional upward query over a contraction hierarchy.
``hub_label``
    Sorted-label merge over hub labels extracted from the hierarchy
    (the paper's oracle), with a bucket-join ``many_to_many``.

Preprocessed structures (CSR arrays, the hierarchy, the labels) are expensive
relative to a single query, so they are built lazily and shared across every
oracle over the same :class:`RoadNetwork` through a weak-keyed cache keyed on
the network's monotonic mutation counter, which invalidates on mutation in
O(1).  The preprocessed backends also answer ``path`` queries natively via
CH shortcut unpacking -- no fallback graph search.
"""

from __future__ import annotations

import heapq
import math
# DET002 audit: every draw below flows through a seeded random.Random
# stream; the module-global generator is never called (repro-lint enforced).
import random
import weakref
from collections.abc import Sequence

from ...exceptions import NetworkError
from ..road_network import RoadNetwork
from .contraction import CHRepairStats, ContractionHierarchy
from .csr import CSRGraph
from .hub_labels import HubLabeling

#: Names accepted by :func:`make_backend` and ``SimulationConfig.routing_backend``.
BACKEND_NAMES = ("dijkstra", "alt", "ch", "hub_label")


def network_fingerprint(network: RoadNetwork) -> tuple[int, int, int]:
    """O(1) staleness token used to invalidate shared routing data.

    Built on :attr:`RoadNetwork.mutation_count`, a monotonic counter bumped
    on every mutation.  The previous implementation XOR-hashed all edge
    triples, which was O(E) per oracle construction *and* unsound: mutation
    sequences whose triple hashes cancel (e.g. removing and re-adding pairs
    of identical edges around other changes) left the checksum unchanged and
    served stale preprocessed structures.
    """
    return network.num_nodes, network.num_edges, network.mutation_count


class RoutingData:
    """Lazily-built routing structures shared by every oracle on one network."""

    __slots__ = (
        "fingerprint", "csr", "record_repair_support",
        "_hierarchy", "_labeling", "__weakref__",
    )

    def __init__(
        self, network: RoadNetwork, *, record_repair_support: bool = True
    ) -> None:
        self.fingerprint = network_fingerprint(network)
        self.csr = CSRGraph.from_network(network)
        self.record_repair_support = record_repair_support
        self._hierarchy: ContractionHierarchy | None = None
        self._labeling: HubLabeling | None = None

    @property
    def has_hierarchy(self) -> bool:
        """True when the contraction hierarchy has already been built."""
        return self._hierarchy is not None

    @property
    def hierarchy(self) -> ContractionHierarchy:
        """The contraction hierarchy (built on first access)."""
        if self._hierarchy is None:
            self._hierarchy = ContractionHierarchy(
                self.csr, record_repair_support=self.record_repair_support
            )
        return self._hierarchy

    @property
    def labeling(self) -> HubLabeling:
        """The hub labeling (built on first access, on top of the hierarchy)."""
        if self._labeling is None:
            self._labeling = HubLabeling(self.hierarchy)
        return self._labeling


_ROUTING_DATA: "weakref.WeakKeyDictionary[RoadNetwork, RoutingData]" = (
    weakref.WeakKeyDictionary()
)


def routing_data(
    network: RoadNetwork, *, record_repair_support: bool = True
) -> RoutingData:
    """Shared :class:`RoutingData` for ``network`` (rebuilt when it changed).

    ``record_repair_support`` only takes effect when this call *builds* the
    data (first oracle over the network, or the network mutated): structures
    are shared per network, so a cached state is served as-is whatever flag
    it was built with.
    """
    data = _ROUTING_DATA.get(network)
    if data is None or data.fingerprint != network_fingerprint(network):
        data = RoutingData(network, record_repair_support=record_repair_support)
        _ROUTING_DATA[network] = data
    return data


# ---------------------------------------------------------------------- #
# dynamic worlds: content signatures + incremental repair
# ---------------------------------------------------------------------- #
def network_content(
    network: RoadNetwork,
) -> tuple[tuple[int, ...], tuple[tuple[int, int, float], ...]]:
    """Canonical (order-insensitive) signature of a network's routing content.

    Covers the node set *and* the weighted edge set (node positions do not
    affect routing).  Two networks with equal signatures produce identical
    routing structures, whatever mutation path led there -- which is what
    lets the repair layer recognise exact reversions (a wave receding, a
    road reopening at its old cost) and swap a cached state back instead of
    re-preprocessing.
    """
    return tuple(sorted(network.nodes())), tuple(sorted(network.edges()))


def csr_content(
    csr: CSRGraph,
) -> tuple[tuple[int, ...], tuple[tuple[int, int, float], ...]]:
    """The :func:`network_content` signature of a compiled CSR snapshot."""
    node_ids = csr.node_ids
    return tuple(node_ids), tuple(
        sorted(
            (node_ids[u], node_ids[csr.indices[e]], csr.weights[e])
            for u in range(csr.num_nodes)
            for e in range(csr.indptr[u], csr.indptr[u + 1])
        )
    )


def install_routing_data(network: RoadNetwork, data: RoutingData) -> None:
    """Re-register ``data`` as current for ``network``.

    Only valid when ``data`` was built from a network state whose edge
    content equals the current one (snapshot swap): the fingerprint is
    refreshed to the network's current mutation counter so staleness checks
    clear, and the shared cache serves ``data`` to every later oracle.
    """
    data.fingerprint = network_fingerprint(network)
    _ROUTING_DATA[network] = data


def repair_routing_data(
    network: RoadNetwork,
    data: RoutingData,
    mutated_edges: Sequence[tuple[int, int]],
    *,
    max_fraction: float = 1.0,
) -> tuple[RoutingData, CHRepairStats] | None:
    """Derive a repaired :class:`RoutingData` for ``network`` from ``data``.

    Compiles a fresh CSR and asks the held contraction hierarchy to
    re-contract only the nodes affected by ``mutated_edges`` (see
    :meth:`ContractionHierarchy.repair`; the result is a copy-on-write fork,
    so ``data`` stays valid for the pre-mutation network state).  Hub
    labels, when previously extracted, are re-derived from the repaired
    hierarchy.  The repaired data is installed in the shared cache and
    returned with the repair statistics; ``None`` means the hierarchy could
    not absorb the mutation set (no hierarchy built yet, node set changed,
    or the affected set exceeds ``max_fraction``) and the caller must fall
    back to a full rebuild.
    """
    if not data.has_hierarchy:
        return None
    csr = CSRGraph.from_network(network)
    forked = data.hierarchy.repair(csr, mutated_edges, max_fraction=max_fraction)
    if forked is None:
        return None
    hierarchy, stats = forked
    repaired = RoutingData.__new__(RoutingData)
    repaired.fingerprint = network_fingerprint(network)
    repaired.csr = csr
    repaired.record_repair_support = data.record_repair_support
    repaired._hierarchy = hierarchy
    repaired._labeling = (
        HubLabeling(hierarchy) if data._labeling is not None else None
    )
    _ROUTING_DATA[network] = repaired
    return repaired, stats


# ---------------------------------------------------------------------- #
# graph-search backend (dijkstra / ALT)
# ---------------------------------------------------------------------- #
class _LandmarkTable:
    """Forward/backward landmark distances over dense node indices."""

    __slots__ = ("landmarks", "forward", "backward")

    def __init__(self, csr: CSRGraph, count: int, seed: int) -> None:
        n = csr.num_nodes
        rng = random.Random(seed)
        self.landmarks: list[int] = []
        self.forward: list[list[float]] = []
        self.backward: list[list[float]] = []
        if n == 0 or count <= 0:
            return
        count = min(count, n)
        # Farthest-point selection: start random, then repeatedly pick the
        # node farthest (in forward distance) from the chosen set.
        first = rng.randrange(n)
        self.landmarks.append(first)
        self.forward.append(csr.sssp(first)[0])
        while len(self.landmarks) < count:
            best_node, best_score = -1, -1.0
            for node in range(n):
                score = min(table[node] for table in self.forward)
                if math.isinf(score):
                    continue
                if score > best_score:
                    best_node, best_score = node, score
            if best_node < 0:
                break
            self.landmarks.append(best_node)
            self.forward.append(csr.sssp(best_node)[0])
        self.backward = [csr.sssp(lm, reverse=True)[0] for lm in self.landmarks]

    def lower_bound(self, u: int, v: int) -> float:
        """Triangle-inequality lower bound on ``dist(u, v)``."""
        best = 0.0
        for fwd, bwd in zip(self.forward, self.backward):
            dl_v, dl_u = fwd[v], fwd[u]
            if dl_v < math.inf and dl_u < math.inf and dl_v - dl_u > best:
                best = dl_v - dl_u
            du_l, dv_l = bwd[u], bwd[v]
            if du_l < math.inf and dv_l < math.inf and du_l - dv_l > best:
                best = du_l - dv_l
        return best


class GraphSearchBackend:
    """Dijkstra (optionally ALT-directed) over the CSR arrays.

    Searches return their settled set so the facade can opportunistically
    cache every ``(source, settled_node)`` distance, which amortises repeated
    queries from popular locations (vehicle positions).
    """

    name = "dijkstra"

    def __init__(
        self, data: RoutingData, *, num_landmarks: int = 0, seed: int = 13
    ) -> None:
        self.data = data
        self.csr = data.csr
        self._landmarks: _LandmarkTable | None = None
        if num_landmarks > 0:
            self.name = "alt"
            self._landmarks = _LandmarkTable(data.csr, num_landmarks, seed)

    # ------------------------------------------------------------------ #
    def search(
        self, source: int, target: int, *, want_parents: bool = False
    ) -> tuple[float, dict[int, float], dict[int, int]]:
        """Point-to-point search with early termination at ``target``.

        Returns ``(distance, settled, parents)``; ``settled`` maps dense node
        indices to exact distances from ``source`` and ``parents`` is only
        filled when ``want_parents`` is set.
        """
        csr = self.csr
        indptr, indices, weights = csr.indptr, csr.indices, csr.weights
        landmarks = self._landmarks
        inf = math.inf
        dist: dict[int, float] = {source: 0.0}
        parents: dict[int, int] = {}
        settled: dict[int, float] = {}
        potential = landmarks.lower_bound(source, target) if landmarks else 0.0
        heap: list[tuple[float, int]] = [(potential, source)]
        target_distance = inf
        while heap:
            _, node = heapq.heappop(heap)
            if node in settled:
                continue
            node_dist = dist[node]
            settled[node] = node_dist
            if node == target:
                target_distance = node_dist
                break
            for e in range(indptr[node], indptr[node + 1]):
                succ = indices[e]
                if succ in settled:
                    continue
                candidate = node_dist + weights[e]
                if candidate < dist.get(succ, inf):
                    dist[succ] = candidate
                    if want_parents:
                        parents[succ] = node
                    key = candidate
                    if landmarks is not None:
                        key += landmarks.lower_bound(succ, target)
                    heapq.heappush(heap, (key, succ))
        return target_distance, settled, parents

    def search_multi(
        self, source: int, targets: set[int], *, reverse: bool = False
    ) -> tuple[dict[int, float], dict[int, float]]:
        """Plain Dijkstra from ``source`` until every target is settled.

        Returns ``(target_distances, settled)``; unreached targets map to
        ``math.inf``.  With ``reverse`` the distances run *to* ``source``
        (used when one target is shared by many sources).
        """
        dist_list, settled_indices = self.csr.sssp(
            source, targets=set(targets), reverse=reverse
        )
        settled = {index: dist_list[index] for index in settled_indices}
        return {t: dist_list[t] for t in targets}, settled


# ---------------------------------------------------------------------- #
# preprocessed backends
# ---------------------------------------------------------------------- #
class CHBackend:
    """Bidirectional upward queries over the contraction hierarchy."""

    name = "ch"

    def __init__(self, data: RoutingData) -> None:
        self.data = data
        self.hierarchy = data.hierarchy

    def one_to_one(self, source: int, target: int) -> tuple[float, int]:
        """Return ``(distance, settled_count)`` for one index pair."""
        return self.hierarchy.query(source, target)

    def many_to_many(
        self, pairs: Sequence[tuple[int, int]]
    ) -> tuple[dict[tuple[int, int], float], int]:
        """Answer exactly the requested index pairs, one query each.

        CH has no cross-pair structure to share (unlike the hub-label bucket
        join), so batching is a loop of bidirectional queries -- but over the
        *requested* pairs only, never the dense cross product.
        """
        table: dict[tuple[int, int], float] = {}
        work = 0
        query = self.hierarchy.query
        for s, t in pairs:
            if (s, t) in table:
                continue
            distance, settled = query(s, t)
            table[(s, t)] = distance
            work += settled
        return table, work

    def path(self, source: int, target: int) -> tuple[list[int] | None, float, int]:
        """Shortest path as dense indices via shortcut unpacking."""
        return self.hierarchy.path_query(source, target)

    def estimated_memory_bytes(self) -> int:
        return self.hierarchy.estimated_memory_bytes()


class HubLabelBackend:
    """Sorted-label-merge queries over the extracted hub labels."""

    name = "hub_label"

    def __init__(self, data: RoutingData) -> None:
        self.data = data
        self.labeling = data.labeling

    def one_to_one(self, source: int, target: int) -> tuple[float, int]:
        """Return ``(distance, label_entries_scanned)`` for one index pair."""
        return self.labeling.query(source, target)

    def many_to_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> tuple[dict[tuple[int, int], float], int]:
        """Bucket join over the labels of all sources and targets."""
        return self.labeling.many_to_many(sources, targets)

    def path(self, source: int, target: int) -> tuple[list[int] | None, float, int]:
        """Shortest path via the hierarchy the labels were extracted from.

        Labels alone answer distances; the node sequence comes from the same
        shared :class:`ContractionHierarchy` (already built as the labels'
        substrate) through meeting-node extraction plus shortcut unpacking.
        """
        return self.data.hierarchy.path_query(source, target)

    def estimated_memory_bytes(self) -> int:
        return self.labeling.estimated_memory_bytes()


#: Union of the concrete backend types the facade can hold; the backends
#: share a duck-typed protocol (cost/search/path/estimated_memory_bytes)
#: rather than a base class, so annotations use this alias.
RoutingBackend = GraphSearchBackend | CHBackend | HubLabelBackend


def make_backend(
    name: str,
    data: RoutingData,
    *,
    num_landmarks: int = 0,
    seed: int = 13,
) -> "RoutingBackend":
    """Instantiate the backend ``name`` over shared routing ``data``.

    ``num_landmarks > 0`` upgrades ``dijkstra`` to ``alt`` for backward
    compatibility with the pre-backend oracle constructor.
    """
    key = name.lower()
    if key == "dijkstra" and num_landmarks > 0:
        key = "alt"
    if key == "dijkstra":
        return GraphSearchBackend(data)
    if key == "alt":
        return GraphSearchBackend(
            data, num_landmarks=max(num_landmarks, 4), seed=seed
        )
    if key == "ch":
        return CHBackend(data)
    if key == "hub_label":
        return HubLabelBackend(data)
    raise NetworkError(
        f"unknown routing backend {name!r}; choose from {BACKEND_NAMES}"
    )
