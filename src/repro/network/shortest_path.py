"""Shortest-path (travel-time) oracle with caching and query accounting.

The paper answers ``cost(u, v)`` queries with hub labeling [50] fronted by an
LRU cache [40] and reports the number of shortest-path queries as one of the
ablation metrics (Tables V and VI).  This module reproduces that interface:

* :class:`DistanceOracle` -- ``cost(u, v)`` / ``path(u, v)`` queries answered
  by Dijkstra with early termination, an LRU pair cache, and optional
  landmark (ALT) lower bounds used as A* potentials.
* :class:`QueryStatistics` -- counts logical queries, cache hits and the
  number of full graph searches, so experiments can report the same
  "#Shortest Path Queries" column as the paper.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import OrderedDict
from dataclasses import dataclass, field

from ..exceptions import NetworkError, UnreachableError
from .road_network import RoadNetwork


@dataclass
class QueryStatistics:
    """Counters describing how the oracle has been used."""

    #: Logical ``cost``/``path`` queries issued by callers.
    queries: int = 0
    #: Queries answered directly from the LRU pair cache.
    cache_hits: int = 0
    #: Dijkstra / A* searches actually executed.
    searches: int = 0
    #: Total number of node settlements across all searches (work proxy).
    settled_nodes: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = 0
        self.cache_hits = 0
        self.searches = 0
        self.settled_nodes = 0

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary (for reporting)."""
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "searches": self.searches,
            "settled_nodes": self.settled_nodes,
        }


@dataclass
class _LandmarkTable:
    """Distances from / to a set of landmark nodes, used for ALT lower bounds."""

    landmarks: list[int] = field(default_factory=list)
    #: ``forward[i][v]`` = distance landmark_i -> v.
    forward: list[dict[int, float]] = field(default_factory=list)
    #: ``backward[i][v]`` = distance v -> landmark_i.
    backward: list[dict[int, float]] = field(default_factory=list)

    def lower_bound(self, u: int, v: int) -> float:
        """Triangle-inequality lower bound on ``dist(u, v)``."""
        best = 0.0
        for fwd, bwd in zip(self.forward, self.backward):
            # d(L, v) - d(L, u) <= d(u, v) and d(u, L) - d(v, L) <= d(u, v)
            dl_v = fwd.get(v, math.inf)
            dl_u = fwd.get(u, math.inf)
            if dl_v < math.inf and dl_u < math.inf:
                best = max(best, dl_v - dl_u)
            du_l = bwd.get(u, math.inf)
            dv_l = bwd.get(v, math.inf)
            if du_l < math.inf and dv_l < math.inf:
                best = max(best, du_l - dv_l)
        return best


class DistanceOracle:
    """Cached travel-time oracle over a :class:`RoadNetwork`.

    Parameters
    ----------
    network:
        The road network to query.
    cache_size:
        Maximum number of ``(source, target) -> cost`` entries kept in the
        LRU cache.  When a Dijkstra search terminates, every settled node is
        opportunistically cached for the same source, which amortises the
        cost of repeated queries from popular locations (vehicle positions).
    num_landmarks:
        Number of landmark nodes used for ALT (A*, landmarks, triangle
        inequality) goal-directed search.  ``0`` disables the heuristic and
        plain Dijkstra with early termination is used.
    seed:
        Seed for the landmark selection.
    """

    def __init__(
        self,
        network: RoadNetwork,
        *,
        cache_size: int = 200_000,
        num_landmarks: int = 0,
        seed: int = 13,
    ) -> None:
        if cache_size < 0:
            raise NetworkError("cache_size must be non-negative")
        self._network = network
        self._cache_size = cache_size
        self._cache: OrderedDict[tuple[int, int], float] = OrderedDict()
        self.stats = QueryStatistics()
        self._landmarks: _LandmarkTable | None = None
        if num_landmarks > 0:
            self._landmarks = self._build_landmarks(num_landmarks, seed)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> RoadNetwork:
        """The underlying road network."""
        return self._network

    def cost(self, source: int, target: int) -> float:
        """Minimum travel time from ``source`` to ``target`` in seconds.

        Returns ``math.inf`` when the target is unreachable (the feasibility
        checks interpret an infinite cost as "not shareable / not insertable"
        rather than raising).
        """
        self.stats.queries += 1
        if source == target:
            return 0.0
        key = (source, target)
        cached = self._cache_get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        distance = self._search(source, target)
        return distance

    def path(self, source: int, target: int) -> list[int]:
        """Sequence of nodes of a shortest path from ``source`` to ``target``.

        Raises :class:`UnreachableError` if no path exists.
        """
        self.stats.queries += 1
        if source == target:
            return [source]
        distance, parents = self._search(source, target, want_parents=True)
        if math.isinf(distance):
            raise UnreachableError(f"node {target} is unreachable from {source}")
        path = [target]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    def route_cost(self, nodes: list[int]) -> float:
        """Total travel time of the node sequence ``nodes`` (consecutive legs)."""
        total = 0.0
        for u, v in zip(nodes, nodes[1:]):
            total += self.cost(u, v)
        return total

    def clear_cache(self) -> None:
        """Drop every cached distance."""
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        """Current number of cached ``(source, target)`` pairs."""
        return len(self._cache)

    def estimated_memory_bytes(self) -> int:
        """Rough memory footprint of the cache (for the memory study)."""
        # Each entry: two ints + a float + dict overhead, ~100 bytes is a fair
        # order-of-magnitude figure for CPython.
        return 100 * len(self._cache)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _cache_get(self, key: tuple[int, int]) -> float | None:
        if self._cache_size == 0:
            return None
        value = self._cache.get(key)
        if value is not None:
            self._cache.move_to_end(key)
        return value

    def _cache_put(self, key: tuple[int, int], value: float) -> None:
        if self._cache_size == 0:
            return
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def _heuristic(self, node: int, target: int) -> float:
        if self._landmarks is None:
            return 0.0
        return self._landmarks.lower_bound(node, target)

    def _search(self, source: int, target: int, *, want_parents: bool = False):
        """Dijkstra / A* with early termination at ``target``."""
        network = self._network
        if not network.has_node(source) or not network.has_node(target):
            raise NetworkError(f"unknown endpoint in query ({source}, {target})")
        self.stats.searches += 1
        dist: dict[int, float] = {source: 0.0}
        parents: dict[int, int] = {}
        settled: set[int] = set()
        heap: list[tuple[float, int]] = [(self._heuristic(source, target), source)]
        target_distance = math.inf
        while heap:
            _, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            self.stats.settled_nodes += 1
            node_dist = dist[node]
            self._cache_put((source, node), node_dist)
            if node == target:
                target_distance = node_dist
                break
            for succ, cost in network.neighbors(node):
                if succ in settled:
                    continue
                candidate = node_dist + cost
                if candidate < dist.get(succ, math.inf):
                    dist[succ] = candidate
                    parents[succ] = node
                    heapq.heappush(
                        heap, (candidate + self._heuristic(succ, target), succ)
                    )
        if math.isinf(target_distance):
            self._cache_put((source, target), math.inf)
        if want_parents:
            return target_distance, parents
        return target_distance

    def _single_source(self, source: int, *, reverse: bool = False) -> dict[int, float]:
        """Full Dijkstra from ``source`` (or to it when ``reverse``)."""
        network = self._network
        dist: dict[int, float] = {source: 0.0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        while heap:
            node_dist, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            edges = network.predecessors(node) if reverse else network.neighbors(node)
            for other, cost in edges:
                if other in settled:
                    continue
                candidate = node_dist + cost
                if candidate < dist.get(other, math.inf):
                    dist[other] = candidate
                    heapq.heappush(heap, (candidate, other))
        return dist

    def _build_landmarks(self, count: int, seed: int) -> _LandmarkTable:
        nodes = list(self._network.nodes())
        if not nodes:
            return _LandmarkTable()
        rng = random.Random(seed)
        count = min(count, len(nodes))
        # Farthest-point style selection: start random, then repeatedly pick
        # the node farthest (in forward distance) from the chosen set.
        landmarks = [rng.choice(nodes)]
        forward = [self._single_source(landmarks[0])]
        while len(landmarks) < count:
            best_node, best_score = None, -1.0
            for node in nodes:
                score = min(table.get(node, math.inf) for table in forward)
                if math.isinf(score):
                    continue
                if score > best_score:
                    best_node, best_score = node, score
            if best_node is None:
                break
            landmarks.append(best_node)
            forward.append(self._single_source(best_node))
        backward = [self._single_source(lm, reverse=True) for lm in landmarks]
        return _LandmarkTable(landmarks=landmarks, forward=forward, backward=backward)
